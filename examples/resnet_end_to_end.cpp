// End-to-end ResNet-152 deployment study: sweep the three precisions the
// paper evaluates, print the chosen accelerator design, the per-stage
// latency breakdown, and where LCMM removes DRAM traffic.
#include <iostream>
#include <map>

#include "lcmm.hpp"

int main() {
  using namespace lcmm;
  graph::ComputationGraph net = models::build_resnet(152);

  for (hw::Precision p : hw::kAllPrecisions) {
    core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), p);
    core::AllocationPlan umm = compiler.compile_umm(net);
    core::AllocationPlan plan = compiler.compile(net);
    sim::SimResult usim = sim::simulate(net, umm);
    sim::SimResult lsim = sim::refine_against_stalls(net, plan);

    std::cout << "=== ResNet-152 @ " << hw::to_string(p) << " ===\n"
              << "UMM  " << util::fmt_fixed(usim.total_s * 1e3, 2)
              << " ms (array " << umm.design.array.to_string() << " @ "
              << umm.design.freq_mhz << " MHz)\n"
              << "LCMM " << util::fmt_fixed(lsim.total_s * 1e3, 2)
              << " ms (array " << plan.design.array.to_string() << " @ "
              << plan.design.freq_mhz << " MHz)  speedup "
              << util::fmt_fixed(usim.total_s / lsim.total_s, 2) << "x\n";

    // Coarse stage breakdown (conv1, res2..res5, head).
    std::map<std::string, double> umm_ms, lcmm_ms;
    auto stage_of = [&](graph::LayerId id) {
      const std::string& s = net.layer(id).stage;
      return s.size() >= 4 && s.rfind("res", 0) == 0 ? s.substr(0, 4) : s;
    };
    for (const auto& e : usim.layers) {
      umm_ms[stage_of(e.layer)] += (e.latency_s() + e.stall_s) * 1e3;
    }
    for (const auto& e : lsim.layers) {
      lcmm_ms[stage_of(e.layer)] += (e.latency_s() + e.stall_s) * 1e3;
    }
    util::Table table({"stage", "UMM (ms)", "LCMM (ms)", "speedup"});
    for (const auto& [stage, ms] : umm_ms) {
      table.add_row({stage, util::fmt_fixed(ms, 3),
                     util::fmt_fixed(lcmm_ms[stage], 3),
                     lcmm_ms[stage] > 0
                         ? util::fmt_fixed(ms / lcmm_ms[stage], 2)
                         : "-"});
    }
    std::cout << table << "\n";
  }
  return 0;
}
