// Walk through the paper's running example (Fig. 3 / Fig. 5 / Fig. 6): the
// inception_c1 snippet. Shows the interference graph, the virtual-buffer
// mapping from coloring, the prefetching dependence graph, and the final
// footprint timeline.
#include <iostream>

#include "lcmm.hpp"

int main() {
  using namespace lcmm;
  graph::ComputationGraph net = models::build_inception_c1_snippet();
  std::cout << "=== computation graph (Fig. 3a) ===\n"
            << graph::to_dot(net) << "\n";

  core::LcmmOptions options;
  options.liveness.include_compute_bound = true;
  options.allow_fallback_to_umm = false;
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8,
                              options);
  core::AllocationPlan plan = compiler.compile(net);

  // Fig. 5(a): liveness intervals and interference.
  std::cout << "=== tensor entities and lifespans (Fig. 5a) ===\n";
  for (const core::TensorEntity& e : plan.entities) {
    std::cout << "  " << e.name << "  bytes=" << e.bytes << "  live=["
              << e.def_step << ", " << e.last_use_step << "]\n";
  }

  // Fig. 5(b): virtual buffers from coloring.
  std::cout << "\n=== virtual buffers (Fig. 5b) ===\n";
  for (std::size_t b = 0; b < plan.buffers.size(); ++b) {
    const core::VirtualBuffer& buf = plan.buffers[b];
    std::cout << "  vbuf" << buf.id << " ("
              << util::fmt_mebibytes(static_cast<double>(buf.bytes)) << ", "
              << (plan.buffer_on_chip[b] ? "on-chip" : "spilled") << "):";
    for (std::size_t e : buf.members) {
      std::cout << " " << plan.entities[e].name;
    }
    std::cout << "\n";
  }

  // Fig. 6: prefetch edges.
  std::cout << "\n=== prefetching dependence graph (Fig. 6) ===\n";
  for (const core::PrefetchEdge& e : plan.prefetch.edges()) {
    std::cout << "  prefetch " << net.layer(e.target).name << ".wt from step "
              << e.start_step << " (load "
              << util::fmt_fixed(e.load_seconds * 1e6, 1) << " us, window "
              << util::fmt_fixed(e.window_seconds * 1e6, 1) << " us, "
              << (e.fully_hidden() ? "hidden" : "NOT hidden") << ")\n";
  }

  // Fig. 3(c): the timeline.
  sim::SimResult sim_result = sim::refine_against_stalls(net, plan);
  const sim::MemoryTrace trace = build_memory_trace(net, plan, sim_result);
  std::cout << "\n=== footprint timeline (Fig. 3c; '#'=on-chip) ===\n"
            << trace.ascii_gantt(32, 48);
  std::cout << "\nsnippet latency: "
            << util::fmt_fixed(sim_result.total_s * 1e6, 1) << " us\n";
  return 0;
}
