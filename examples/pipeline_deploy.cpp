// Deployment study for a throughput-oriented service: compose LCMM with
// multi-accelerator pipelining (the paper's noted future-work direction)
// and pick the stage count that maximizes images/second under a latency
// ceiling.
#include <iostream>

#include "core/pipeline.hpp"
#include "lcmm.hpp"

int main() {
  using namespace lcmm;
  const auto net = models::build_googlenet();
  const double latency_ceiling_ms = 10.0;

  core::PipelinePartitioner partitioner(hw::FpgaDevice::vu9p(),
                                        hw::Precision::kInt16);
  std::cout << "GoogLeNet 16-bit on VU9P, latency ceiling "
            << latency_ceiling_ms << " ms\n\n";

  util::Table table({"stages", "II (ms)", "latency (ms)", "img/s",
                     "meets ceiling", "per-stage layers"});
  int best_k = 1;
  double best_throughput = 0.0;
  for (int k = 1; k <= 4; ++k) {
    const core::PipelinePlan plan = partitioner.partition(net, k);
    const bool ok = plan.latency_s * 1e3 <= latency_ceiling_ms;
    std::string sizes;
    for (const auto& s : plan.segments) {
      if (!sizes.empty()) sizes += "+";
      sizes += std::to_string(s.subgraph.num_layers());
    }
    if (ok && plan.throughput_images_per_s() > best_throughput) {
      best_throughput = plan.throughput_images_per_s();
      best_k = k;
    }
    table.add_row({std::to_string(k),
                   util::fmt_fixed(plan.bottleneck_s * 1e3, 3),
                   util::fmt_fixed(plan.latency_s * 1e3, 3),
                   util::fmt_fixed(plan.throughput_images_per_s(), 1),
                   ok ? "yes" : "no", sizes});
  }
  std::cout << table << "\nchosen configuration: " << best_k << " stage"
            << (best_k > 1 ? "s" : "") << " at "
            << util::fmt_fixed(best_throughput, 1) << " img/s\n";

  // Inspect the chosen stages' allocations.
  const core::PipelinePlan chosen = partitioner.partition(net, best_k);
  for (const auto& s : chosen.segments) {
    std::cout << "  stage [" << s.first_step << ".." << s.last_step << "]: "
              << util::fmt_fixed(s.latency_s * 1e3, 3) << " ms, "
              << s.plan.physical.size() << " tensor buffers, URAM "
              << util::fmt_pct(s.plan.uram_utilization()) << "%\n";
  }
  return 0;
}
