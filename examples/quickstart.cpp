// Quickstart: compile GoogLeNet for a VU9P at 16-bit, compare uniform
// memory management against LCMM, and print where the win comes from.
//
//   $ ./quickstart
#include <iostream>

#include "lcmm.hpp"

int main() {
  using namespace lcmm;

  // 1. Build (or bring your own) computation graph.
  graph::ComputationGraph net = models::build_googlenet();
  std::cout << "network: " << net.name() << " — " << net.num_conv_layers()
            << " conv layers, "
            << util::fmt_fixed(2.0 * net.total_macs() / 1e9, 2) << " Gops\n";

  // 2. Create a compiler for the target device and precision.
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);

  // 3. Baseline: uniform memory management (tile buffers only).
  core::AllocationPlan umm = compiler.compile_umm(net);
  sim::SimResult umm_sim = sim::simulate(net, umm);

  // 4. LCMM: feature reuse + weight prefetching + DNNK + splitting.
  core::AllocationPlan plan = compiler.compile(net);
  sim::SimResult lcmm_sim = sim::refine_against_stalls(net, plan);

  std::cout << "accelerator: " << plan.design.array.to_string()
            << " PE array @ " << plan.design.freq_mhz << " MHz, tiles "
            << plan.design.tile.to_string() << "\n";
  std::cout << "UMM : " << util::fmt_fixed(umm_sim.total_s * 1e3, 3)
            << " ms/image\n";
  std::cout << "LCMM: " << util::fmt_fixed(lcmm_sim.total_s * 1e3, 3)
            << " ms/image  (speedup "
            << util::fmt_fixed(umm_sim.total_s / lcmm_sim.total_s, 2) << "x)\n";

  // 5. Inspect the plan.
  std::cout << "\non-chip tensor buffers: " << plan.physical.size() << " ("
            << util::fmt_mebibytes(static_cast<double>(plan.tensor_buffer_bytes))
            << "), URAM " << util::fmt_pct(plan.uram_utilization())
            << "%, BRAM " << util::fmt_pct(plan.bram_utilization()) << "%\n";
  std::cout << "memory-bound conv layers helped: "
            << plan.num_benefiting_conv << " / " << plan.num_memory_bound_conv
            << " (POL " << util::fmt_pct(plan.pol()) << "%)\n";
  std::cout << "persistent (resident) weight tensors: "
            << plan.resident_weights.size() << "\n";
  return 0;
}
