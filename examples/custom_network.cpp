// Bring-your-own-network example: define a small detector-style backbone
// with the graph-builder API, explore devices/precisions, and decide
// whether LCMM pays off for it. Demonstrates everything a downstream user
// needs: graph construction (branches, residuals, concat), DSE, the
// compiler, the simulator and the roofline analysis.
#include <array>
#include <iostream>

#include "lcmm.hpp"

namespace {

lcmm::graph::ComputationGraph build_tiny_detector() {
  using namespace lcmm::graph;
  ComputationGraph g("tiny_detector");
  g.set_stage("backbone");
  ValueId x = g.add_input("image", {3, 256, 256});
  x = g.add_conv("stem", x, {32, 3, 3, 2, 1, 1});                 // 128x128
  x = g.add_conv("down1", x, {64, 3, 3, 2, 1, 1});                // 64x64
  // A residual unit.
  ValueId r = g.add_conv("res_a", x, {64, 3, 3, 1, 1, 1});
  x = g.add_conv("res_b", r, {64, 3, 3, 1, 1, 1}, /*residual=*/x);
  x = g.add_conv("down2", x, {128, 3, 3, 2, 1, 1});               // 32x32
  // An inception-ish multi-branch head.
  g.set_stage("neck");
  const ValueId b1 = g.add_conv("b1_1x1", x, {64, 1, 1, 1, 0, 0});
  ValueId b2 = g.add_conv("b2_reduce", x, {48, 1, 1, 1, 0, 0});
  b2 = g.add_conv("b2_3x3", b2, {64, 3, 3, 1, 1, 1});
  ValueId b3 = g.add_pool("b3_pool", x, {PoolType::kMax, 3, 1, 1});
  b3 = g.add_conv("b3_proj", b3, {64, 1, 1, 1, 0, 0});
  const std::array<ValueId, 3> parts{b1, b2, b3};
  x = g.add_concat("neck_out", parts);
  g.set_stage("head");
  x = g.add_conv("head_3x3", x, {128, 3, 3, 1, 1, 1});
  g.add_conv("boxes", x, {24, 1, 1, 1, 0, 0});
  g.validate();
  return g;
}

}  // namespace

int main() {
  using namespace lcmm;
  graph::ComputationGraph net = build_tiny_detector();
  std::cout << "network: " << net.name() << ", " << net.num_layers()
            << " layers, " << util::fmt_fixed(2.0 * net.total_macs() / 1e9, 2)
            << " Gops\n\n";

  for (const hw::FpgaDevice& device :
       {hw::FpgaDevice::vu9p(), hw::FpgaDevice::zu9eg()}) {
    for (hw::Precision p : {hw::Precision::kInt8, hw::Precision::kInt16}) {
      core::LcmmCompiler compiler(device, p);
      const core::AllocationPlan umm = compiler.compile_umm(net);
      core::AllocationPlan plan = compiler.compile(net);
      const sim::SimResult usim = sim::simulate(net, umm);
      const sim::SimResult lsim = sim::refine_against_stalls(net, plan);

      // How memory-bound is this network on this device at all?
      hw::PerfModel model(net, umm.design);
      const auto roofline = hw::characterize_roofline(model);

      std::cout << device.name << " @ " << hw::to_string(p) << ": "
                << roofline.num_memory_bound << "/" << roofline.points.size()
                << " conv layers memory-bound | UMM "
                << util::fmt_fixed(usim.total_s * 1e3, 3) << " ms -> LCMM "
                << util::fmt_fixed(lsim.total_s * 1e3, 3) << " ms ("
                << util::fmt_fixed(usim.total_s / lsim.total_s, 2)
                << "x, " << plan.physical.size() << " tensor buffers)\n";
    }
  }
  std::cout << "\nTip: graph::to_dot(net) renders the topology for graphviz.\n";
  return 0;
}
