// Reproduces Fig. 2(b): the on-chip allocation design space of Inception-v4.
// The network has 14 inception blocks; for each of the 2^14 = 16384 subsets
// we put the (memory-bound) tensors of the chosen blocks on chip and
// evaluate memory consumption vs attained performance. The paper's point:
// more on-chip memory does NOT necessarily mean higher performance, and
// many points near the 40 MB device limit are far from the optimum.
#include <algorithm>
#include <iostream>
#include <vector>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lcmm;
  bench::Harness harness(argc, argv, "fig2b_design_space");
  const auto graph = models::build_inception_v4();
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8);
  const core::AllocationPlan umm = compiler.compile_umm(graph);
  hw::PerfModel model(graph, umm.design);
  core::LatencyTables tables(model);
  const double total_ops = model.total_nominal_ops();

  // Group the allocation entities per inception block.
  std::vector<std::string> blocks;
  for (const std::string& s : graph.stages()) {
    if (s.rfind("inception_", 0) == 0) blocks.push_back(s);
  }
  const int nblocks = static_cast<int>(blocks.size());
  std::cout << "Fig. 2(b): design space over " << nblocks
            << " inception blocks -> " << (1 << nblocks) << " points\n";

  // The §2.2 sweep chooses where to store each block's data wholesale —
  // before any buffer sharing, so block footprints are raw tensor sums.
  core::LivenessOptions liveness;
  liveness.include_compute_bound = true;
  std::vector<core::TensorEntity> entities =
      core::build_feature_entities(model, liveness);
  {
    const auto prefetch = core::build_prefetch_schedule(model, liveness);
    auto weights = core::build_weight_entities(model, prefetch);
    entities.insert(entities.end(), weights.begin(), weights.end());
  }

  // Per block: the member tensors and the block's raw (unshared) footprint.
  std::vector<std::vector<core::TensorKey>> block_keys(blocks.size());
  std::vector<std::int64_t> block_bytes(blocks.size(), 0);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (const auto& e : entities) {
      if (graph.layer(e.key.layer).stage == blocks[b]) {
        block_keys[b].push_back(e.key);
        block_bytes[b] += e.bytes;
      }
    }
  }

  // Exhaustive sweep.
  struct Point {
    double mem_mb;
    double tops;
  };
  std::vector<Point> points;
  points.reserve(1u << nblocks);
  const double device_mb =
      static_cast<double>(hw::FpgaDevice::vu9p().sram_bytes_total()) / (1 << 20);
  Point best{0, 0};
  unsigned best_mask = 0;
  for (unsigned mask = 0; mask < (1u << nblocks); ++mask) {
    core::OnChipState state(graph.num_layers());
    double mem = 0;
    for (int b = 0; b < nblocks; ++b) {
      if (!(mask >> b & 1u)) continue;
      mem += static_cast<double>(block_bytes[static_cast<std::size_t>(b)]);
      for (const core::TensorKey& k : block_keys[static_cast<std::size_t>(b)]) {
        state.set(k, true);
      }
    }
    const double tops = total_ops / tables.total_latency(state) / 1e12;
    const Point pt{mem / (1 << 20), tops};
    points.push_back(pt);
    if (pt.tops > best.tops) {
      best = pt;
      best_mask = mask;
    }
  }

  // Summarize the scatter: per memory decile, the min/max performance.
  const double max_mem =
      std::max_element(points.begin(), points.end(), [](auto& a, auto& b) {
        return a.mem_mb < b.mem_mb;
      })->mem_mb;
  util::Table deciles({"memory bin (MB)", "points", "min Tops", "max Tops"});
  const int bins = 10;
  for (int i = 0; i < bins; ++i) {
    const double lo = max_mem * i / bins, hi = max_mem * (i + 1) / bins;
    double mn = 1e30, mx = 0;
    int count = 0;
    for (const Point& pt : points) {
      if (pt.mem_mb >= lo && (pt.mem_mb < hi || i == bins - 1)) {
        mn = std::min(mn, pt.tops);
        mx = std::max(mx, pt.tops);
        ++count;
      }
    }
    if (count == 0) continue;
    deciles.add_row({util::fmt_fixed(lo, 1) + " - " + util::fmt_fixed(hi, 1),
                     std::to_string(count), util::fmt_fixed(mn, 3),
                     util::fmt_fixed(mx, 3)});
  }
  std::cout << deciles;

  // The paper's observation, quantified.
  int near_limit_suboptimal = 0, near_limit = 0;
  for (const Point& pt : points) {
    if (pt.mem_mb > 0.8 * device_mb && pt.mem_mb <= device_mb) {
      ++near_limit;
      if (pt.tops < 0.99 * best.tops) ++near_limit_suboptimal;
    }
  }
  std::cout << "\nbest point: " << util::fmt_fixed(best.tops, 3) << " Tops at "
            << util::fmt_fixed(best.mem_mb, 1) << " MB (blocks mask 0x"
            << std::hex << best_mask << std::dec << ")\n"
            << "device limit: " << util::fmt_fixed(device_mb, 1) << " MB\n";
  if (near_limit > 0) {
    std::cout << "points within [80%, 100%] of the device limit that are >1% "
                 "below the best performance: "
              << near_limit_suboptimal << " / " << near_limit
              << "  (\"more on-chip memory does not necessarily mean higher "
                 "performance\")\n";
  }
  // Cheapest point achieving 99% of best: the frontier's knee.
  double knee_mem = max_mem;
  for (const Point& pt : points) {
    if (pt.tops >= 0.99 * best.tops) knee_mem = std::min(knee_mem, pt.mem_mb);
  }
  std::cout << "cheapest point within 1% of best: "
            << util::fmt_fixed(knee_mem, 1) << " MB\n";
  const bench::Dims dims{{"net", "IN"}, {"precision", "int8"}};
  harness.add("design_points", static_cast<double>(points.size()), "count",
              bench::Direction::kHigherIsBetter, dims);
  harness.add("best_tops", best.tops, "Tops",
              bench::Direction::kHigherIsBetter, dims);
  harness.add("best_mem_mb", best.mem_mb, "MB",
              bench::Direction::kLowerIsBetter, dims);
  harness.add("knee_mem_mb", knee_mem, "MB", bench::Direction::kLowerIsBetter,
              dims);
  harness.add("near_limit_suboptimal", near_limit_suboptimal, "count",
              bench::Direction::kHigherIsBetter, dims);
  return harness.finish();
}
