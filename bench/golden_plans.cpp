// Golden-plan snapshots: compiles a fixed set of small graphs (registry
// models plus the checked-in example graph files) and records the plans'
// STRUCTURAL facts — buffer counts, SRAM blocks, residency, the Eq. 1
// latency, and the allocation gain recomputed independently through
// lcmm::check-style re-analysis (LatencyTables over the plan's own granted
// state). Compared against bench/baselines/golden_plans.json with exact
// (or near-exact) tolerances, this catches allocation-quality drift — a
// pass silently granting fewer tensors, a DNNK change that loses gain —
// even when end-to-end latency noise would hide it.
//
// The example-graph targets resolve relative to the working directory
// (run from the repo root, as CI does); override with
// LCMM_GOLDEN_GRAPHS_DIR. A target that cannot be loaded is reported and
// skipped — the diff against the baseline then fails with MISSING rows,
// which is the gate working as intended.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "common.hpp"
#include "io/text_format.hpp"

namespace {

using namespace lcmm;

struct Target {
  std::string name;        ///< Metric dim + table label.
  std::string model;       ///< Registry name, empty for file graphs.
  std::string graph_file;  ///< Relative to the graphs dir.
  hw::Precision precision;
};

const Target kTargets[] = {
    {"squeezenet", "squeezenet", "", hw::Precision::kInt8},
    {"alexnet", "alexnet", "", hw::Precision::kInt16},
    {"mobilenet_v1", "mobilenet_v1", "", hw::Precision::kInt8},
    {"googlenet", "googlenet", "", hw::Precision::kInt16},
    {"tiny_detector", "", "tiny_detector.lcmm", hw::Precision::kInt8},
    {"depthwise_block", "", "depthwise_block.lcmm", hw::Precision::kInt16},
};

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "golden_plans");
  const char* dir_env = std::getenv("LCMM_GOLDEN_GRAPHS_DIR");
  const std::string graphs_dir = dir_env != nullptr ? dir_env : "examples/graphs";

  util::Table table({"graph", "precision", "vbufs", "phys", "resident",
                     "tensor bytes", "BRAM", "URAM", "est (ms)", "gain (ms)",
                     "check"});
  int failures = 0;
  for (const Target& t : kTargets) {
   try {
    const graph::ComputationGraph graph =
        t.model.empty() ? io::load_graph_file(graphs_dir + "/" + t.graph_file)
                        : models::build_by_name(t.model);
    const core::LcmmOptions options;
    core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), t.precision, options);
    const core::AllocationPlan plan = compiler.compile(graph);

    // Independent re-derivation of the allocation quality: latency tables
    // rebuilt from the plan's own design, UMM state vs the granted state.
    const hw::PerfModel model(graph, plan.design);
    const core::LatencyTables tables(model);
    const double gain_ms =
        (tables.total_latency(core::OnChipState(graph.num_layers())) -
         tables.total_latency(plan.state)) *
        1e3;

    const check::CheckReport report =
        check::run_checks(graph, plan, check::CheckOptions::from(options));

    const bench::Dims dims{{"net", t.name},
                           {"precision", hw::to_string(t.precision)}};
    auto count = [&](const char* name, double v, bench::Direction dir) {
      harness.add(name, v, "count", dir, dims);
    };
    count("virtual_buffers", static_cast<double>(plan.buffers.size()),
          bench::Direction::kLowerIsBetter);
    count("physical_buffers", static_cast<double>(plan.physical.size()),
          bench::Direction::kHigherIsBetter);
    count("resident_weights", static_cast<double>(plan.resident_weights.size()),
          bench::Direction::kHigherIsBetter);
    count("bram_blocks", plan.bram_used, bench::Direction::kLowerIsBetter);
    count("uram_blocks", plan.uram_used, bench::Direction::kLowerIsBetter);
    count("check_errors", report.num_errors(), bench::Direction::kLowerIsBetter);
    count("check_warnings", report.num_warnings(),
          bench::Direction::kLowerIsBetter);
    count("degraded", plan.rung == resil::Rung::kFullLcmm ? 0 : 1,
          bench::Direction::kLowerIsBetter);
    harness.add("tensor_buffer_bytes",
                static_cast<double>(plan.tensor_buffer_bytes), "bytes",
                bench::Direction::kHigherIsBetter, dims);
    harness.add("est_latency_ms", plan.est_latency_s * 1e3, "ms",
                bench::Direction::kLowerIsBetter, dims);
    harness.add("recomputed_gain_ms", gain_ms, "ms",
                bench::Direction::kHigherIsBetter, dims);

    table.add_row({t.name, hw::to_string(t.precision),
                   std::to_string(plan.buffers.size()),
                   std::to_string(plan.physical.size()),
                   std::to_string(plan.resident_weights.size()),
                   util::fmt_mebibytes(static_cast<double>(
                       plan.tensor_buffer_bytes)),
                   std::to_string(plan.bram_used),
                   std::to_string(plan.uram_used),
                   util::fmt_fixed(plan.est_latency_s * 1e3, 3),
                   util::fmt_fixed(gain_ms, 3),
                   report.num_errors() == 0 ? "clean"
                                            : std::to_string(
                                                  report.num_errors()) +
                                                  " errors"});
    if (report.num_errors() > 0) ++failures;
   } catch (const std::exception& e) {
    std::cerr << "golden_plans: skipping " << t.name << ": " << e.what()
              << "\n";
    ++failures;
   }
  }
  std::cout << "Golden plans: structural snapshots for the regression gate\n"
            << table
            << "Any drift here means the allocator changed its mind — "
               "re-record bench/baselines/golden_plans.json only when the "
               "change is intentional (docs/benchmarking.md).\n";
  const int harness_rc = harness.finish();
  return failures > 0 ? 1 : harness_rc;
}
