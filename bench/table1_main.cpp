// Reproduces Table 1: UMM vs LCMM for ResNet-152 / GoogLeNet / Inception-v4
// at 8/16/32-bit — latency, throughput, clock, resource utilization, and
// the per-pair speedup. The paper reports a 1.36x average speedup.
#include <cmath>
#include <iostream>

#include "common.hpp"

int main() {
  using namespace lcmm;
  util::Table table({"Benchmark", "Design", "Latency (ms)", "Tops",
                     "Freq (MHz)", "DSP %", "CLB %", "SRAM %", "Speedup"});
  double log_sum = 0.0;
  int pairs = 0;
  for (const auto& [label, model_name] : bench::kSuite) {
    for (hw::Precision p : hw::kAllPrecisions) {
      const auto graph = models::build_by_name(model_name);
      const bench::PairResult r = bench::run_pair(graph, p);
      const std::string bm = std::string(label) + " " + hw::to_string(p);
      table.add_separator();
      for (const sim::DesignReport* d : {&r.umm, &r.lcmm}) {
        table.add_row({bm, d->is_umm ? "UMM" : "LCMM",
                       util::fmt_fixed(d->latency_ms, 3),
                       util::fmt_fixed(d->tops, 3),
                       util::fmt_fixed(d->freq_mhz, 0), util::fmt_pct(d->dsp_util),
                       util::fmt_pct(d->clb_util), util::fmt_pct(d->sram_util),
                       d->is_umm ? "" : util::fmt_fixed(r.speedup(), 2)});
      }
      log_sum += std::log(r.speedup());
      ++pairs;
    }
  }
  std::cout << "Table 1: Detailed results (UMM vs LCMM on Xilinx VU9P)\n"
            << table
            << "Average (geomean) speedup: "
            << util::fmt_fixed(std::exp(log_sum / pairs), 2)
            << "x   (paper reports 1.36x)\n";
  return 0;
}
