// Reproduces Table 1: UMM vs LCMM for ResNet-152 / GoogLeNet / Inception-v4
// at 8/16/32-bit — latency, throughput, clock, resource utilization, and
// the per-pair speedup. The paper reports a 1.36x average speedup.
//
// The nine (network, precision) pairs compile concurrently through
// driver::compile_many; rows print in suite order and are identical for
// every worker count (LCMM_JOBS=1 to force serial).
#include <cmath>
#include <iostream>
#include <vector>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lcmm;
  bench::Harness harness(argc, argv, "table1_main");

  std::vector<driver::BatchJob> jobs;
  std::vector<std::string> labels;
  std::vector<bench::Dims> dims;
  for (const auto& [label, model_name] : bench::kSuite) {
    for (hw::Precision p : hw::kAllPrecisions) {
      jobs.push_back({models::build_by_name(model_name),
                      hw::FpgaDevice::vu9p(), p, core::LcmmOptions{}});
      labels.push_back(std::string(label) + " " + hw::to_string(p));
      dims.push_back({{"net", label}, {"precision", hw::to_string(p)}});
    }
  }
  const std::vector<driver::BatchOutcome> outcomes = driver::compile_many(
      jobs, par::jobs_from_env_or(par::hardware_jobs()));

  util::Table table({"Benchmark", "Design", "Latency (ms)", "Tops",
                     "Freq (MHz)", "DSP %", "CLB %", "SRAM %", "Speedup"});
  double log_sum = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const driver::BatchOutcome& r = outcomes[i];
    if (!r.ok()) {
      std::cerr << "bench job failed (" << labels[i] << "): " << r.error
                << "\n";
      return 1;
    }
    table.add_separator();
    for (const sim::DesignReport* d : {&r.umm_report, &r.lcmm_report}) {
      table.add_row({labels[i], d->is_umm ? "UMM" : "LCMM",
                     util::fmt_fixed(d->latency_ms, 3),
                     util::fmt_fixed(d->tops, 3),
                     util::fmt_fixed(d->freq_mhz, 0), util::fmt_pct(d->dsp_util),
                     util::fmt_pct(d->clb_util), util::fmt_pct(d->sram_util),
                     d->is_umm ? "" : util::fmt_fixed(r.speedup(), 2)});
    }
    bench::add_pair_metrics(harness.run(), dims[i], r.umm_report,
                            r.lcmm_report);
    log_sum += std::log(r.speedup());
    ++pairs;
  }
  const double geomean = std::exp(log_sum / pairs);
  harness.add("geomean_speedup", geomean, "x",
              bench::Direction::kHigherIsBetter);
  std::cout << "Table 1: Detailed results (UMM vs LCMM on Xilinx VU9P)\n"
            << table
            << "Average (geomean) speedup: " << util::fmt_fixed(geomean, 2)
            << "x   (paper reports 1.36x)\n";
  return harness.finish();
}
