// Shared harness glue for the paper-reproduction benches: compiles the UMM
// baseline and the LCMM plan for a (network, precision) pair, simulates
// both, and returns the report rows the tables print. Every bench also
// links lcmm::bench (src/bench/bench.hpp): construct a Harness from argv,
// register the table's numbers as metrics, and `return harness.finish()`
// so `--json=<path>` emits the machine-readable run the CI bench gate
// diffs against bench/baselines/ (docs/benchmarking.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench.hpp"
#include "lcmm.hpp"

namespace lcmm::bench {

struct PairResult {
  core::AllocationPlan umm_plan;
  core::AllocationPlan lcmm_plan;
  sim::SimResult umm_sim;
  sim::SimResult lcmm_sim;
  sim::DesignReport umm;
  sim::DesignReport lcmm;

  double speedup() const { return umm.latency_ms / lcmm.latency_ms; }
};

inline PairResult run_pair(const graph::ComputationGraph& graph,
                           hw::Precision precision,
                           const core::LcmmOptions& options = {}) {
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), precision, options);
  PairResult r;
  r.umm_plan = compiler.compile_umm(graph);
  r.umm_sim = sim::simulate(graph, r.umm_plan);
  r.umm = sim::make_report(graph, r.umm_plan, r.umm_sim);
  r.lcmm_plan = compiler.compile(graph);
  r.lcmm_sim = sim::refine_against_stalls(graph, r.lcmm_plan);
  r.lcmm = sim::make_report(graph, r.lcmm_plan, r.lcmm_sim);
  return r;
}

/// run_pair with compiler telemetry: collects pass spans and counters for
/// the whole pair compile (obs/obs.hpp) and copies them into `stats_out`,
/// so benches can assert the passes did the work they claim to measure.
inline PairResult run_pair_with_stats(const graph::ComputationGraph& graph,
                                      hw::Precision precision,
                                      obs::CompileStats& stats_out,
                                      const core::LcmmOptions& options = {}) {
  obs::StatsSession session;
  PairResult r = run_pair(graph, precision, options);
  stats_out = session.stats();
  return r;
}

/// Hard bench assertion on a compiler counter ("dnnk.dp_cells" or a bare
/// counter name, see CompileStats::counter). Exits non-zero on failure so
/// CI treats a silently-degenerate bench run as an error.
inline void expect_counter_at_least(const obs::CompileStats& stats,
                                    const std::string& name,
                                    std::int64_t min_value) {
  const std::int64_t value = stats.counter(name);
  if (value < min_value) {
    std::fprintf(stderr,
                 "bench counter check failed: %s = %lld, expected >= %lld\n",
                 name.c_str(), static_cast<long long>(value),
                 static_cast<long long>(min_value));
    std::exit(1);
  }
}

/// The paper's benchmark suite: (table label, model registry name).
inline const std::pair<const char*, const char*> kSuite[] = {
    {"RN", "resnet152"}, {"GN", "googlenet"}, {"IN", "inception_v4"}};

inline std::string precision_label(hw::Precision p) { return hw::to_string(p); }

/// Registers the standard UMM-vs-LCMM metric set for one (net, precision)
/// pair under `dims` — latency for both designs, the speedup, and the
/// LCMM buffer footprint. All model-kind, so the CI gate compares them.
inline void add_pair_metrics(BenchRun& run, const Dims& dims,
                             const sim::DesignReport& umm,
                             const sim::DesignReport& lcmm) {
  auto with_design = [&dims](const char* design) {
    Dims d = dims;
    d["design"] = design;
    return d;
  };
  run.add("latency_ms", umm.latency_ms, "ms", Direction::kLowerIsBetter,
          with_design("umm"));
  run.add("latency_ms", lcmm.latency_ms, "ms", Direction::kLowerIsBetter,
          with_design("lcmm"));
  run.add("speedup",
          lcmm.latency_ms > 0 ? umm.latency_ms / lcmm.latency_ms : 0.0, "x",
          Direction::kHigherIsBetter, dims);
  run.add("tops", lcmm.tops, "Tops", Direction::kHigherIsBetter, dims);
  run.add("tensor_buffers", lcmm.num_on_chip_buffers, "count",
          Direction::kHigherIsBetter, dims);
  run.add("tensor_buffer_bytes", static_cast<double>(lcmm.tensor_buffer_bytes),
          "bytes", Direction::kHigherIsBetter, dims);
}

inline void add_pair_metrics(BenchRun& run, const Dims& dims,
                             const PairResult& r) {
  add_pair_metrics(run, dims, r.umm, r.lcmm);
}

}  // namespace lcmm::bench
