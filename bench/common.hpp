// Shared harness glue for the paper-reproduction benches: compiles the UMM
// baseline and the LCMM plan for a (network, precision) pair, simulates
// both, and returns the report rows the tables print.
#pragma once

#include <cstdio>
#include <string>

#include "lcmm.hpp"

namespace lcmm::bench {

struct PairResult {
  core::AllocationPlan umm_plan;
  core::AllocationPlan lcmm_plan;
  sim::SimResult umm_sim;
  sim::SimResult lcmm_sim;
  sim::DesignReport umm;
  sim::DesignReport lcmm;

  double speedup() const { return umm.latency_ms / lcmm.latency_ms; }
};

inline PairResult run_pair(const graph::ComputationGraph& graph,
                           hw::Precision precision,
                           const core::LcmmOptions& options = {}) {
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), precision, options);
  PairResult r;
  r.umm_plan = compiler.compile_umm(graph);
  r.umm_sim = sim::simulate(graph, r.umm_plan);
  r.umm = sim::make_report(graph, r.umm_plan, r.umm_sim);
  r.lcmm_plan = compiler.compile(graph);
  r.lcmm_sim = sim::refine_against_stalls(graph, r.lcmm_plan);
  r.lcmm = sim::make_report(graph, r.lcmm_plan, r.lcmm_sim);
  return r;
}

/// The paper's benchmark suite: (table label, model registry name).
inline const std::pair<const char*, const char*> kSuite[] = {
    {"RN", "resnet152"}, {"GN", "googlenet"}, {"IN", "inception_v4"}};

inline std::string precision_label(hw::Precision p) { return hw::to_string(p); }

}  // namespace lcmm::bench
