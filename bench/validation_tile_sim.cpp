// Model validation: the fast analytical Eq. 1 model (used inside DNNK and
// the DSE) against the tile-level event-driven simulator, per network and
// precision, under both UMM and the LCMM allocation. Small deltas justify
// optimizing with the closed form.
#include <iostream>

#include "common.hpp"
#include "sim/tile_sim.hpp"

int main(int argc, char** argv) {
  using namespace lcmm;
  bench::Harness harness(argc, argv, "validation_tile_sim");
  // Collect compiler/simulator telemetry so the run can assert below that
  // the event-driven numbers actually came from per-tile simulation.
  obs::StatsSession stats;
  util::Table table({"net", "precision", "state", "analytical (ms)",
                     "event-driven (ms)", "delta"});
  for (const auto& [label, model_name] : bench::kSuite) {
    const auto graph = models::build_by_name(model_name);
    for (hw::Precision p : {hw::Precision::kInt8, hw::Precision::kInt16}) {
      core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), p);
      auto plan = compiler.compile(graph);
      hw::PerfModel model(graph, plan.design);
      core::LatencyTables tables(model);

      const core::OnChipState umm_state(graph.num_layers());
      const double a_umm = tables.total_latency(umm_state);
      const double e_umm = sim::tile_sim_total_latency(model, umm_state);
      const double a_lcmm = tables.total_latency(plan.state);
      const double e_lcmm = sim::tile_sim_total_latency(model, plan.state);

      const auto row = [&](const char* state, double a, double e) {
        table.add_row({label, hw::to_string(p), state,
                       util::fmt_fixed(a * 1e3, 3), util::fmt_fixed(e * 1e3, 3),
                       (e >= a ? "+" : "") +
                           util::fmt_fixed((e / a - 1.0) * 100.0, 1) + "%"});
        harness.add("model_delta_pct", (e / a - 1.0) * 100.0, "%",
                    bench::Direction::kLowerIsBetter,
                    {{"net", label},
                     {"precision", hw::to_string(p)},
                     {"design", state}});
      };
      row("UMM", a_umm, e_umm);
      row("LCMM", a_lcmm, e_lcmm);
    }
    table.add_separator();
  }
  std::cout << "Model validation: analytical Eq. 1 vs tile-level event "
               "simulation\n"
            << table
            << "Positive deltas are pipeline fill/coupling effects the "
               "closed form ignores.\n";
  // 3 networks x 2 precisions x 2 states, each all layers and many tiles.
  bench::expect_counter_at_least(stats.stats(), "tile_sim.layers", 12 * 50);
  bench::expect_counter_at_least(stats.stats(), "tile_sim.tiles", 12 * 1000);
  return harness.finish();
}
