// Reproduces Table 2: on-chip memory utilization — BRAM %, URAM % and POL
// (the percentage of memory-bound layers that benefit from LCMM) for every
// (network, precision) pair, plus the tensor-buffer census the paper
// describes for ResNet-152 ("14 buffers ... 9 of them consuming 32 URAM
// blocks").
#include <algorithm>
#include <iostream>
#include <map>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lcmm;
  bench::Harness harness(argc, argv, "table2_memory");
  util::Table table({"Design", "Net", "BRAM %", "URAM %", "POL %",
                     "Tensor buffers", "Tensor bytes"});
  std::map<std::string, bench::PairResult> kept;
  for (hw::Precision p : hw::kAllPrecisions) {
    for (const auto& [label, model_name] : bench::kSuite) {
      const auto graph = models::build_by_name(model_name);
      bench::PairResult r = bench::run_pair(graph, p);
      const bench::Dims dims{{"net", label}, {"precision", hw::to_string(p)}};
      harness.add("bram_util", r.lcmm.bram_util, "frac",
                  bench::Direction::kLowerIsBetter, dims);
      harness.add("uram_util", r.lcmm.uram_util, "frac",
                  bench::Direction::kLowerIsBetter, dims);
      harness.add("pol", r.lcmm.pol, "frac",
                  bench::Direction::kHigherIsBetter, dims);
      harness.add("tensor_buffers", r.lcmm.num_on_chip_buffers, "count",
                  bench::Direction::kHigherIsBetter, dims);
      harness.add("tensor_buffer_bytes",
                  static_cast<double>(r.lcmm.tensor_buffer_bytes), "bytes",
                  bench::Direction::kHigherIsBetter, dims);
      table.add_row({std::string("UMM ") + hw::to_string(p), label,
                     util::fmt_pct(r.umm.bram_util), util::fmt_pct(r.umm.uram_util),
                     "-", "0", "0"});
      table.add_row({std::string("LCMM ") + hw::to_string(p), label,
                     util::fmt_pct(r.lcmm.bram_util),
                     util::fmt_pct(r.lcmm.uram_util), util::fmt_pct(r.lcmm.pol),
                     std::to_string(r.lcmm.num_on_chip_buffers),
                     util::fmt_mebibytes(static_cast<double>(
                         r.lcmm.tensor_buffer_bytes))});
      if (label == std::string("RN") && p == hw::Precision::kInt8) {
        kept.emplace("RN8", std::move(r));
      }
    }
    table.add_separator();
  }
  std::cout << "Table 2: On-chip memory utilization\n" << table;

  // Buffer census for ResNet-152 8-bit, mirroring the paper's prose.
  const auto it = kept.find("RN8");
  if (it != kept.end()) {
    std::map<int, int> by_blocks;
    int uram_buffers = 0;
    for (const core::PhysicalBuffer& b : it->second.lcmm_plan.physical) {
      if (b.sram.pool == mem::SramPool::kUram) {
        ++by_blocks[b.sram.blocks];
        ++uram_buffers;
      }
    }
    harness.add("uram_census_buffers", uram_buffers, "count",
                bench::Direction::kHigherIsBetter,
                {{"net", "RN"}, {"precision", "int8"}});
    std::cout << "\nResNet-152 8-bit URAM tensor-buffer census "
                 "(blocks-per-buffer: count):\n";
    for (const auto& [blocks, count] : by_blocks) {
      std::cout << "  " << blocks << " URAM blocks: " << count << " buffer"
                << (count > 1 ? "s" : "") << "\n";
    }
  }
  return harness.finish();
}
