// Ablation A: allocation quality of DNNK (Alg. 1) versus a value-density
// greedy and, where tractable, the exhaustive optimum — over the three
// networks and a sweep of on-chip capacities. This isolates the knapsack
// from the rest of the pipeline: same entities, same virtual buffers.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lcmm;
  bench::Harness harness(argc, argv, "ablation_allocators");
  util::Table table({"net", "capacity (MB)", "buffers", "greedy gain (ms)",
                     "DNNK gain (ms)", "DNNK / greedy", "exact gain (ms)"});
  for (const auto& [label, model_name] : bench::kSuite) {
    const auto graph = models::build_by_name(model_name);
    core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
    const auto umm = compiler.compile_umm(graph);
    hw::PerfModel model(graph, umm.design);
    core::LatencyTables tables(model);

    core::LivenessOptions liveness;
    std::vector<core::TensorEntity> entities =
        core::build_feature_entities(model, liveness);
    const auto prefetch = core::build_prefetch_schedule(model, liveness);
    auto weights = core::build_weight_entities(model, prefetch);
    entities.insert(entities.end(), weights.begin(), weights.end());
    core::InterferenceGraph ig(std::move(entities));
    const auto buffers =
        core::build_virtual_buffers(ig, core::color_min_total_size(ig));

    for (double cap_mb : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
      const std::int64_t cap = static_cast<std::int64_t>(cap_mb * (1 << 20));
      const auto greedy = core::greedy_allocate(ig, buffers, tables, cap);
      const auto dnnk = core::dnnk_allocate(ig, buffers, tables, cap);
      std::string exact = "-";
      if (buffers.size() <= 16) {
        exact = util::fmt_fixed(
            core::exact_allocate(ig, buffers, tables, cap).gain_s * 1e3, 3);
      }
      const bench::Dims dims{{"net", label},
                             {"capacity_mb", util::fmt_fixed(cap_mb, 2)}};
      harness.add("greedy_gain_ms", greedy.gain_s * 1e3, "ms",
                  bench::Direction::kHigherIsBetter, dims);
      harness.add("dnnk_gain_ms", dnnk.gain_s * 1e3, "ms",
                  bench::Direction::kHigherIsBetter, dims);
      if (greedy.gain_s > 0) {
        harness.add("dnnk_over_greedy", dnnk.gain_s / greedy.gain_s, "ratio",
                    bench::Direction::kHigherIsBetter, dims);
      }
      table.add_row(
          {label, util::fmt_fixed(cap_mb, 0), std::to_string(buffers.size()),
           util::fmt_fixed(greedy.gain_s * 1e3, 3),
           util::fmt_fixed(dnnk.gain_s * 1e3, 3),
           greedy.gain_s > 0
               ? util::fmt_fixed(dnnk.gain_s / greedy.gain_s, 2)
               : "-",
           exact});
    }
    table.add_separator();
  }
  std::cout << "Ablation A: allocator quality (latency-reduction, 16-bit)\n"
            << table
            << "DNNK's pivot compensation accounts for same-node tensor "
               "interactions the greedy misses.\n";
  return harness.finish();
}
