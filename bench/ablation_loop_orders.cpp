// Loop-order ablation: is LCMM just compensating for a rigid loop nest?
// We strengthen the UNIFORM baseline by letting every layer pick the
// fastest feasible loop order (output-/weight-/input-stationary) given an
// extra resident buffer, and re-measure LCMM on top. The answer the paper
// implies: smarter tiling shrinks the bottleneck but cannot remove it —
// tensor-granular on-chip allocation still wins on top of any loop order.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lcmm;
  bench::Harness harness(argc, argv, "ablation_loop_orders");
  util::Table table({"net", "stationary buffer", "UMM (ms)", "orders used",
                     "LCMM (ms)", "speedup"});
  for (const auto& [label, model_name] : bench::kSuite) {
    const auto graph = models::build_by_name(model_name);
    for (std::int64_t budget : {std::int64_t{0}, std::int64_t{1} << 20,
                                std::int64_t{4} << 20}) {
      core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
      core::AllocationPlan umm = compiler.compile_umm(graph);
      umm.design.stationary_buffer_bytes = budget;
      core::AllocationPlan plan = compiler.compile_with_design(graph, umm.design);
      const auto usim = sim::simulate(graph, umm);
      const auto lsim = sim::refine_against_stalls(graph, plan);

      hw::PerfModel model(graph, umm.design);
      int os = 0, ws = 0, is = 0;
      for (const auto& l : graph.layers()) {
        if (!l.is_conv()) continue;
        switch (model.timing(l.id).order) {
          case hw::LoopOrder::kOutputStationary: ++os; break;
          case hw::LoopOrder::kWeightStationary: ++ws; break;
          case hw::LoopOrder::kInputStationary: ++is; break;
        }
      }
      table.add_row(
          {label,
           budget == 0 ? "none (paper baseline)"
                       : util::fmt_mebibytes(static_cast<double>(budget), 0),
           util::fmt_fixed(usim.total_s * 1e3, 3),
           "OS " + std::to_string(os) + " / WS " + std::to_string(ws) +
               " / IS " + std::to_string(is),
           util::fmt_fixed(lsim.total_s * 1e3, 3),
           util::fmt_fixed(usim.total_s / lsim.total_s, 2) + "x"});
      const bench::Dims dims{
          {"net", label},
          {"precision", "int16"},
          {"stationary_mb", std::to_string(budget >> 20)}};
      harness.add("umm_ms", usim.total_s * 1e3, "ms",
                  bench::Direction::kLowerIsBetter, dims);
      harness.add("lcmm_ms", lsim.total_s * 1e3, "ms",
                  bench::Direction::kLowerIsBetter, dims);
      harness.add("speedup", usim.total_s / lsim.total_s, "x",
                  bench::Direction::kHigherIsBetter, dims);
    }
    table.add_separator();
  }
  std::cout << "Loop-order ablation (16-bit): per-layer stationary variants "
               "vs LCMM\n"
            << table;
  return harness.finish();
}
