// Reproduces Fig. 2(a): roofline characterization of Inception-v4 (8-bit)
// on the VU9P under uniform memory management — the per-layer (operation
// intensity, attainable performance) scatter, the memory-bound layer census
// (the paper finds 82 layers, 58% of the total), and the required-bandwidth
// tail ("over 60% of them even need 70 GB/s").
#include <algorithm>
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lcmm;
  bench::Harness harness(argc, argv, "fig2a_roofline");
  const auto graph = models::build_inception_v4();
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8);
  const core::AllocationPlan umm = compiler.compile_umm(graph);
  hw::PerfModel model(graph, umm.design);
  const hw::RooflineSummary summary = characterize_roofline(model);

  std::cout << "Fig. 2(a): Roofline of Inception-v4 (8-bit) on VU9P, UMM\n"
            << "peak " << util::fmt_fixed(summary.peak_ops_per_sec / 1e12, 2)
            << " Tops, per-stream bandwidth "
            << util::fmt_fixed(summary.stream_bw_peak / 1e9, 1)
            << " GB/s theoretical (" << model.ddr().options().max_efficiency
            << " max efficiency)\n\n";

  // The scatter, as a CSV series (one point per conv layer).
  util::Table scatter({"layer", "ops/byte", "attainable Gops",
                       "needed GB/s (worst stream)", "needed GB/s (total)",
                       "bound"});
  for (const hw::RooflinePoint& pt : summary.points) {
    scatter.add_row({pt.name, util::fmt_fixed(pt.intensity_ops_per_byte, 1),
                     util::fmt_fixed(pt.attainable_ops_per_sec / 1e9, 1),
                     util::fmt_fixed(pt.required_stream_bw / 1e9, 1),
                     util::fmt_fixed(pt.required_total_bw / 1e9, 1),
                     pt.memory_bound ? "memory" : "compute"});
  }
  std::cout << scatter.to_csv();

  const int total = static_cast<int>(summary.points.size());
  std::cout << "\nmemory-bound layers: " << summary.num_memory_bound << " / "
            << total << " (" << util::fmt_pct(summary.memory_bound_fraction())
            << "%)   [paper: 82 / ~141 = 58%]\n";
  std::cout << "memory-bound layers needing > 70 GB/s on one stream: "
            << summary.num_above_threshold << " ("
            << util::fmt_pct(summary.num_memory_bound
                                 ? static_cast<double>(summary.num_above_threshold) /
                                       summary.num_memory_bound
                                 : 0.0)
            << "% of memory-bound)   [paper: over 60%]\n";

  // Distribution of the required aggregate bandwidth over memory-bound
  // layers.
  std::vector<double> needs;
  for (const auto& pt : summary.points) {
    if (pt.memory_bound) needs.push_back(pt.required_total_bw / 1e9);
  }
  std::sort(needs.begin(), needs.end());
  if (!needs.empty()) {
    auto q = [&](double f) {
      return needs[static_cast<std::size_t>(f * (needs.size() - 1))];
    };
    std::cout << "required-bandwidth quartiles over memory-bound layers: "
              << util::fmt_fixed(q(0.25), 1) << " / "
              << util::fmt_fixed(q(0.5), 1) << " / "
              << util::fmt_fixed(q(0.75), 1) << " GB/s (max "
              << util::fmt_fixed(needs.back(), 1) << ")\n";
    harness.add("median_required_gbps", q(0.5), "GB/s",
                bench::Direction::kLowerIsBetter);
  }
  const bench::Dims dims{{"net", "IN"}, {"precision", "int8"}};
  harness.add("memory_bound_layers", summary.num_memory_bound, "count",
              bench::Direction::kLowerIsBetter, dims);
  harness.add("conv_layers", total, "count",
              bench::Direction::kHigherIsBetter, dims);
  harness.add("layers_above_70gbps", summary.num_above_threshold, "count",
              bench::Direction::kLowerIsBetter, dims);
  harness.add("peak_tops", summary.peak_ops_per_sec / 1e12, "Tops",
              bench::Direction::kHigherIsBetter, dims);
  return harness.finish();
}
