// Reproduces Fig. 8: per-inception-block analysis of 16-bit GoogLeNet —
// (a) feature buffer reuse only, (b) weight buffer prefetching only,
// (c) the full LCMM integration, each against the UMM baseline. The paper's
// observation: feature reuse helps the early blocks (large feature maps),
// prefetching helps the late blocks (weight-dominated), and only the
// combination wins across the whole network.
#include <iostream>
#include <map>

#include "common.hpp"

namespace {

/// Per-stage attained Tops for a simulated plan.
std::map<std::string, double> per_stage_tops(
    const lcmm::graph::ComputationGraph& graph, const lcmm::sim::SimResult& sim) {
  std::map<std::string, double> seconds, macs;
  for (const auto& exec : sim.layers) {
    const auto& layer = graph.layer(exec.layer);
    seconds[layer.stage] += exec.latency_s() + exec.stall_s;
    macs[layer.stage] += static_cast<double>(graph.layer_macs(exec.layer));
  }
  std::map<std::string, double> tops;
  for (const auto& [stage, s] : seconds) {
    tops[stage] = s > 0 ? 2.0 * macs[stage] / s / 1e12 : 0.0;
  }
  return tops;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lcmm;
  bench::Harness harness(argc, argv, "fig8_googlenet_breakdown");
  const auto graph = models::build_googlenet();

  core::LcmmOptions feature_only;
  feature_only.weight_prefetch = false;
  feature_only.allow_fallback_to_umm = false;
  core::LcmmOptions prefetch_only;
  prefetch_only.feature_reuse = false;
  prefetch_only.allow_fallback_to_umm = false;
  core::LcmmOptions full;
  full.allow_fallback_to_umm = false;

  const auto base = bench::run_pair(graph, hw::Precision::kInt16, full);
  const auto fr = bench::run_pair(graph, hw::Precision::kInt16, feature_only);
  const auto wp = bench::run_pair(graph, hw::Precision::kInt16, prefetch_only);

  const auto umm_tops = per_stage_tops(graph, base.umm_sim);
  const auto fr_tops = per_stage_tops(graph, fr.lcmm_sim);
  const auto wp_tops = per_stage_tops(graph, wp.lcmm_sim);
  const auto full_tops = per_stage_tops(graph, base.lcmm_sim);

  util::Table table({"block", "UMM Tops", "(a) feature reuse",
                     "(b) weight prefetch", "(c) full LCMM"});
  for (const std::string& stage : graph.stages()) {
    if (stage.rfind("inception_", 0) != 0) continue;
    table.add_row({stage, util::fmt_fixed(umm_tops.at(stage), 3),
                   util::fmt_fixed(fr_tops.at(stage), 3),
                   util::fmt_fixed(wp_tops.at(stage), 3),
                   util::fmt_fixed(full_tops.at(stage), 3)});
  }
  std::cout << "Fig. 8: GoogLeNet 16-bit, per-inception-block performance\n"
            << table;

  std::cout << "end-to-end: UMM "
            << util::fmt_fixed(base.umm.latency_ms, 3) << " ms | feature-only "
            << util::fmt_fixed(fr.lcmm.latency_ms, 3) << " ms | prefetch-only "
            << util::fmt_fixed(wp.lcmm.latency_ms, 3) << " ms | full "
            << util::fmt_fixed(base.lcmm.latency_ms, 3) << " ms ("
            << util::fmt_fixed(base.speedup(), 2) << "x)\n";
  auto add_variant = [&](const char* variant, double latency_ms) {
    harness.add("latency_ms", latency_ms, "ms",
                bench::Direction::kLowerIsBetter,
                {{"net", "GN"}, {"precision", "int16"}, {"variant", variant}});
  };
  add_variant("umm", base.umm.latency_ms);
  add_variant("feature-only", fr.lcmm.latency_ms);
  add_variant("prefetch-only", wp.lcmm.latency_ms);
  add_variant("full", base.lcmm.latency_ms);
  harness.add("speedup", base.speedup(), "x",
              bench::Direction::kHigherIsBetter,
              {{"net", "GN"}, {"precision", "int16"}});
  return harness.finish();
}
