// Reproduces Table 3: comparison with the state-of-the-art end-to-end
// designs — Cloud-DNN [3] on ResNet-50 and TGPA [17] on ResNet-152, both
// 16-bit on the VU9P. The published numbers are embedded as reference rows
// (the paper compares against publications, not reruns); our rows come from
// the simulator.
#include <iostream>

#include "common.hpp"

namespace {

struct Published {
  const char* design;
  const char* model;
  double freq_mhz;
  int dsp;
  double bram_mb;
  double uram_mb;
  double logic_k;
  double tops;
  double latency_ms;
};

// Rows as printed in the paper's Table 3.
constexpr Published kPublished[] = {
    {"Cloud-DNN [3] (published)", "resnet50", 214, 5489, 7.20, 27.68, 728, 1.235, 8.12},
    {"TGPA [17] (published)", "resnet152", 200, 4096, 6.45, 19.56, 506, 1.463, 17.34},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lcmm;
  bench::Harness harness(argc, argv, "table3_sota");
  util::Table table({"Design", "DNN model", "Freq (MHz)", "DSP", "BRAM (MB)",
                     "URAM (MB)", "Logic (K)", "Tops", "Latency/Image (ms)",
                     "Perf. density (ops/DSP/cycle)"});
  for (const Published& p : kPublished) {
    const double density =
        p.tops * 1e12 / (p.dsp * p.freq_mhz * 1e6);
    table.add_row({p.design, p.model, util::fmt_fixed(p.freq_mhz, 0),
                   std::to_string(p.dsp), util::fmt_fixed(p.bram_mb, 2),
                   util::fmt_fixed(p.uram_mb, 2), util::fmt_fixed(p.logic_k, 0),
                   util::fmt_fixed(p.tops, 3), util::fmt_fixed(p.latency_ms, 2),
                   util::fmt_fixed(density, 2)});
    const auto graph = models::build_by_name(p.model);
    const bench::PairResult r = bench::run_pair(graph, hw::Precision::kInt16);
    const auto& ours = r.lcmm;
    const auto& plan = r.lcmm_plan;
    const int dsp = plan.design.array.dsp_cost(plan.design.precision);
    const double bram_mb = static_cast<double>(plan.bram_used) *
                           mem::SramPools::kBram36Bytes / (1024.0 * 1024.0);
    const double uram_mb = static_cast<double>(plan.uram_used) *
                           mem::SramPools::kUramBytes / (1024.0 * 1024.0);
    const double our_density = ours.tops * 1e12 / (dsp * ours.freq_mhz * 1e6);
    table.add_row({"LCMM (ours, simulated)", p.model,
                   util::fmt_fixed(ours.freq_mhz, 0), std::to_string(dsp),
                   util::fmt_fixed(bram_mb, 2), util::fmt_fixed(uram_mb, 2),
                   util::fmt_fixed(sim::estimate_luts(plan) / 1000.0, 0),
                   util::fmt_fixed(ours.tops, 3),
                   util::fmt_fixed(ours.latency_ms, 2),
                   util::fmt_fixed(our_density, 2)});
    table.add_separator();
    const bench::Dims dims{{"net", p.model}, {"precision", "int16"}};
    harness.add("latency_ms", ours.latency_ms, "ms",
                bench::Direction::kLowerIsBetter, dims);
    harness.add("tops", ours.tops, "Tops", bench::Direction::kHigherIsBetter,
                dims);
    harness.add("perf_density", our_density, "ops/DSP/cycle",
                bench::Direction::kHigherIsBetter, dims);
    harness.add("bram_mb", bram_mb, "MB", bench::Direction::kLowerIsBetter,
                dims);
    harness.add("uram_mb", uram_mb, "MB", bench::Direction::kLowerIsBetter,
                dims);
  }
  std::cout << "Table 3: Comparison with state-of-the-art designs "
               "(16-bit fixed point, Xilinx VU9P)\n"
            << table
            << "Note: published rows are the papers' reported numbers; ours "
               "come from the analytical simulator, so compare shapes, not "
               "absolutes.\n";
  return harness.finish();
}
