// Algorithm-runtime microbenchmarks (google-benchmark): the compile-time
// cost of each LCMM pass on the real networks. The paper's framework runs
// inside a DSE loop, so pass runtime matters.
//
// Unlike the table/figure benches this binary measures host wall-clock
// only, so its lcmm::bench document carries wall-kind metrics exclusively
// — recorded for trend plots, never gated by lcmm_bench_diff. The custom
// main below strips the harness's --json=<path> before handing the rest
// of argv to google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/bench.hpp"
#include "lcmm.hpp"

namespace {

using namespace lcmm;

const graph::ComputationGraph& cached_model(const std::string& name) {
  static std::map<std::string, graph::ComputationGraph> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, models::build_by_name(name)).first;
  }
  return it->second;
}

hw::AcceleratorDesign design_for(const graph::ComputationGraph& g) {
  const hw::Dse dse(hw::FpgaDevice::vu9p(), hw::Precision::kInt16, {});
  return dse.explore(g).design;
}

void BM_ModelBuild(benchmark::State& state, const char* name) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::build_by_name(name).num_layers());
  }
}
BENCHMARK_CAPTURE(BM_ModelBuild, resnet152, "resnet152");
BENCHMARK_CAPTURE(BM_ModelBuild, inception_v4, "inception_v4");

void BM_PerfModel(benchmark::State& state, const char* name) {
  const auto& g = cached_model(name);
  const auto design = design_for(g);
  for (auto _ : state) {
    hw::PerfModel model(g, design);
    benchmark::DoNotOptimize(model.umm_total_latency());
  }
}
BENCHMARK_CAPTURE(BM_PerfModel, resnet152, "resnet152");
BENCHMARK_CAPTURE(BM_PerfModel, inception_v4, "inception_v4");

void BM_LivenessAndColoring(benchmark::State& state, const char* name) {
  const auto& g = cached_model(name);
  const auto design = design_for(g);
  hw::PerfModel model(g, design);
  core::LivenessOptions opt;
  opt.include_compute_bound = true;
  for (auto _ : state) {
    core::InterferenceGraph ig(core::build_feature_entities(model, opt));
    benchmark::DoNotOptimize(core::color_min_total_size(ig).total_bytes);
  }
}
BENCHMARK_CAPTURE(BM_LivenessAndColoring, resnet152, "resnet152");
BENCHMARK_CAPTURE(BM_LivenessAndColoring, inception_v4, "inception_v4");

void BM_DnnkAllocation(benchmark::State& state, const char* name) {
  const auto& g = cached_model(name);
  const auto design = design_for(g);
  hw::PerfModel model(g, design);
  core::LatencyTables tables(model);
  core::LivenessOptions opt;
  opt.include_compute_bound = true;
  core::InterferenceGraph ig(core::build_feature_entities(model, opt));
  const auto buffers =
      core::build_virtual_buffers(ig, core::color_min_total_size(ig));
  const std::int64_t cap = std::int64_t{16} << 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::dnnk_allocate(ig, buffers, tables, cap).gain_s);
  }
  state.counters["buffers"] = static_cast<double>(buffers.size());
}
BENCHMARK_CAPTURE(BM_DnnkAllocation, resnet152, "resnet152");
BENCHMARK_CAPTURE(BM_DnnkAllocation, inception_v4, "inception_v4");

// DSE candidate evaluation with 1 worker vs all cores: the ISSUE's
// headline parallel win. Same argmin for every thread count.
void BM_DseExplore(benchmark::State& state, const char* name) {
  const auto& g = cached_model(name);
  hw::DseOptions opt;
  opt.jobs = static_cast<int>(state.range(0));
  const hw::Dse dse(hw::FpgaDevice::vu9p(), hw::Precision::kInt16, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dse.explore(g).objective_latency_s);
  }
  state.counters["jobs"] = static_cast<double>(opt.jobs);
}
BENCHMARK_CAPTURE(BM_DseExplore, resnet152, "resnet152")
    ->Arg(1)
    ->Arg(static_cast<std::int64_t>(lcmm::par::hardware_jobs()));
BENCHMARK_CAPTURE(BM_DseExplore, inception_v4, "inception_v4")
    ->Arg(1)
    ->Arg(static_cast<std::int64_t>(lcmm::par::hardware_jobs()));

// The full models x precisions sweep through the batch driver, serial vs
// all cores — what bench/table1_main.cpp runs.
void BM_CompileMany(benchmark::State& state) {
  std::vector<driver::BatchJob> jobs;
  for (const char* name : {"resnet152", "googlenet", "inception_v4"}) {
    for (hw::Precision p :
         {hw::Precision::kInt8, hw::Precision::kInt16, hw::Precision::kFp32}) {
      jobs.push_back({cached_model(name), hw::FpgaDevice::vu9p(), p,
                      core::LcmmOptions{}});
    }
  }
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(driver::compile_many(jobs, workers).size());
  }
  state.counters["jobs"] = static_cast<double>(workers);
}
BENCHMARK(BM_CompileMany)
    ->Arg(1)
    ->Arg(static_cast<std::int64_t>(lcmm::par::hardware_jobs()))
    ->Unit(benchmark::kMillisecond);

void BM_FullCompile(benchmark::State& state, const char* name) {
  const auto& g = cached_model(name);
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.compile(g).est_latency_s);
  }
}
BENCHMARK_CAPTURE(BM_FullCompile, resnet152, "resnet152");
BENCHMARK_CAPTURE(BM_FullCompile, googlenet, "googlenet");
BENCHMARK_CAPTURE(BM_FullCompile, inception_v4, "inception_v4");

void BM_Simulate(benchmark::State& state, const char* name) {
  const auto& g = cached_model(name);
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  const auto plan = compiler.compile(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(g, plan).total_s);
  }
}
BENCHMARK_CAPTURE(BM_Simulate, resnet152, "resnet152");
BENCHMARK_CAPTURE(BM_Simulate, inception_v4, "inception_v4");

/// Forwards each finished benchmark's wall time into the harness run.
class HarnessReporter : public benchmark::ConsoleReporter {
 public:
  explicit HarnessReporter(lcmm::bench::BenchRun& run) : run_(&run) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      if (r.error_occurred || r.run_type != Run::RT_Iteration) continue;
      // On a 1-core host Arg(1)->Arg(hardware_jobs()) registers the same
      // name twice; keep the first measurement instead of tripping the
      // harness's duplicate-key guard.
      if (!seen_.insert(r.benchmark_name()).second) continue;
      const double iters = r.iterations > 0 ? static_cast<double>(r.iterations)
                                            : 1.0;
      run_->add_wall("real_time_s", r.real_accumulated_time / iters,
                     {{"benchmark", r.benchmark_name()}});
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  lcmm::bench::BenchRun* run_;
  std::set<std::string> seen_;
};

}  // namespace

int main(int argc, char** argv) {
  // Split argv: the harness owns --json=<path>; google-benchmark owns the
  // --benchmark_* flags and must not see ours.
  std::vector<char*> gbench_args{argv[0]};
  std::vector<char*> harness_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      harness_args.push_back(argv[i]);
    } else {
      gbench_args.push_back(argv[i]);
    }
  }
  int harness_argc = static_cast<int>(harness_args.size());
  lcmm::bench::Harness harness(harness_argc, harness_args.data(),
                               "perf_algorithms");

  int gbench_argc = static_cast<int>(gbench_args.size());
  benchmark::Initialize(&gbench_argc, gbench_args.data());
  if (benchmark::ReportUnrecognizedArguments(gbench_argc,
                                             gbench_args.data())) {
    return 2;
  }
  HarnessReporter reporter(harness.run());
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return harness.finish();
}
