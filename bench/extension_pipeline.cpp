// Future-work extension (paper §4.2): LCMM composed with TGPA-style
// multi-accelerator pipelining. The device is sliced into K stages, the
// network is cut by a bottleneck-minimizing DP, and every stage is compiled
// by LCMM on its slice. Throughput scales with the pipeline; single-image
// latency stays roughly flat — the TGPA trade the paper describes.
#include <iostream>

#include "common.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace lcmm;
  bench::Harness harness(argc, argv, "extension_pipeline");
  util::Table table({"net", "stages", "II (ms)", "latency (ms)", "img/s",
                     "throughput vs K=1", "stage latencies (ms)"});
  for (const auto& [label, model_name] : bench::kSuite) {
    const auto graph = models::build_by_name(model_name);
    core::PipelinePartitioner part(hw::FpgaDevice::vu9p(),
                                   hw::Precision::kInt16);
    double base_throughput = 0.0;
    for (int k = 1; k <= 4; ++k) {
      const core::PipelinePlan plan = part.partition(graph, k);
      if (k == 1) base_throughput = plan.throughput_images_per_s();
      std::string stages;
      for (const auto& s : plan.segments) {
        if (!stages.empty()) stages += " / ";
        stages += util::fmt_fixed(s.latency_s * 1e3, 2);
      }
      table.add_row({label, std::to_string(k),
                     util::fmt_fixed(plan.bottleneck_s * 1e3, 3),
                     util::fmt_fixed(plan.latency_s * 1e3, 3),
                     util::fmt_fixed(plan.throughput_images_per_s(), 1),
                     util::fmt_fixed(plan.throughput_images_per_s() /
                                         base_throughput, 2) + "x",
                     stages});
      const bench::Dims dims{
          {"net", label}, {"precision", "int16"}, {"stages", std::to_string(k)}};
      harness.add("latency_ms", plan.latency_s * 1e3, "ms",
                  bench::Direction::kLowerIsBetter, dims);
      harness.add("images_per_s", plan.throughput_images_per_s(), "img/s",
                  bench::Direction::kHigherIsBetter, dims);
      harness.add("throughput_scale",
                  plan.throughput_images_per_s() / base_throughput, "x",
                  bench::Direction::kHigherIsBetter, dims);
    }
    table.add_separator();
  }
  std::cout << "Pipeline extension: LCMM x multi-accelerator stages (16-bit)\n"
            << table;
  return harness.finish();
}
