// Energy extension: UMM vs LCMM per-image energy across the suite at
// 16-bit. LCMM's DRAM-traffic elimination is also an energy optimization —
// DRAM bytes cost ~100x SRAM bytes. (Not part of the paper's evaluation;
// constants documented in sim/energy.hpp.)
#include <iostream>

#include "common.hpp"
#include "sim/energy.hpp"

int main(int argc, char** argv) {
  using namespace lcmm;
  bench::Harness harness(argc, argv, "ablation_energy");
  util::Table table({"net", "design", "DRAM (MB/img)", "DRAM (mJ)",
                     "SRAM (mJ)", "compute (mJ)", "static (mJ)", "total (mJ)",
                     "Gops/J", "energy saving"});
  for (const auto& [label, model_name] : bench::kSuite) {
    const auto graph = models::build_by_name(model_name);
    const bench::PairResult r = bench::run_pair(graph, hw::Precision::kInt16);
    const double ops = 2.0 * static_cast<double>(graph.total_macs());
    const sim::EnergyReport umm =
        estimate_energy(graph, r.umm_plan, r.umm_sim);
    const sim::EnergyReport lcmm =
        estimate_energy(graph, r.lcmm_plan, r.lcmm_sim);
    for (const auto& [name, e] :
         {std::pair{"UMM", &umm}, std::pair{"LCMM", &lcmm}}) {
      const bench::Dims dims{{"net", label},
                             {"precision", "int16"},
                             {"design", e == &umm ? "umm" : "lcmm"}};
      harness.add("dram_bytes", e->dram_bytes, "bytes",
                  bench::Direction::kLowerIsBetter, dims);
      harness.add("total_mj", e->total_mj(), "mJ",
                  bench::Direction::kLowerIsBetter, dims);
      harness.add("gops_per_joule", e->gops_per_joule(ops), "Gops/J",
                  bench::Direction::kHigherIsBetter, dims);
      table.add_row(
          {label, name, util::fmt_fixed(e->dram_bytes / (1 << 20), 1),
           util::fmt_fixed(e->dram_mj, 2), util::fmt_fixed(e->sram_mj, 2),
           util::fmt_fixed(e->compute_mj, 2), util::fmt_fixed(e->static_mj, 2),
           util::fmt_fixed(e->total_mj(), 2),
           util::fmt_fixed(e->gops_per_joule(ops), 1),
           e == &lcmm
               ? util::fmt_pct(1.0 - lcmm.total_mj() / umm.total_mj()) + "%"
               : ""});
    }
    harness.add("energy_saving", 1.0 - lcmm.total_mj() / umm.total_mj(),
                "frac", bench::Direction::kHigherIsBetter,
                {{"net", label}, {"precision", "int16"}});
    table.add_separator();
  }
  std::cout << "Energy extension: per-image energy (16-bit)\n" << table;
  return harness.finish();
}
