// Generalization stress: LCMM on 60 random DAGs (chains, branches,
// concats, strided downsampling) across precisions — does the win
// generalize beyond the three hand-built benchmark networks, and does the
// "never worse than uniform" guarantee hold at scale?
//
// All 60 (graph, precision) jobs compile concurrently through
// driver::compile_many; the stats below aggregate in seed order so the
// output is identical for every worker count.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lcmm;
  bench::Harness harness(argc, argv, "stress_random_graphs");
  constexpr int kGraphs = 30;
  constexpr hw::Precision kPrecisions[] = {hw::Precision::kInt8,
                                           hw::Precision::kInt16};

  std::vector<driver::BatchJob> jobs;
  for (hw::Precision p : kPrecisions) {
    for (int seed = 1; seed <= kGraphs; ++seed) {
      jobs.push_back({models::random_graph(static_cast<std::uint64_t>(seed)),
                      hw::FpgaDevice::vu9p(), p, core::LcmmOptions{}});
    }
  }
  const std::vector<driver::BatchOutcome> outcomes = driver::compile_many(
      jobs, par::jobs_from_env_or(par::hardware_jobs()));

  util::Table table({"precision", "graphs", "geomean speedup", "min", "max",
                     "wins (>1.01x)", "fallbacks (=1.00x)"});
  std::size_t next = 0;
  for (hw::Precision p : kPrecisions) {
    std::vector<double> speedups;
    int fallbacks = 0;
    for (int seed = 1; seed <= kGraphs; ++seed, ++next) {
      const driver::BatchOutcome& r = outcomes[next];
      if (!r.ok()) {
        std::cerr << "stress job failed (seed " << seed << ", "
                  << hw::to_string(p) << "): " << r.error << "\n";
        return 1;
      }
      const double s = r.umm_sim.total_s / r.lcmm_sim.total_s;
      speedups.push_back(s);
      fallbacks += s < 1.005;
    }
    double log_sum = 0.0;
    int wins = 0;
    for (double s : speedups) {
      log_sum += std::log(s);
      wins += s > 1.01;
    }
    table.add_row({hw::to_string(p), std::to_string(kGraphs),
                   util::fmt_fixed(std::exp(log_sum / kGraphs), 2) + "x",
                   util::fmt_fixed(*std::min_element(speedups.begin(),
                                                     speedups.end()), 2),
                   util::fmt_fixed(*std::max_element(speedups.begin(),
                                                     speedups.end()), 2),
                   std::to_string(wins), std::to_string(fallbacks)});
    const bench::Dims dims{{"precision", hw::to_string(p)}};
    harness.add("geomean_speedup", std::exp(log_sum / kGraphs), "x",
                bench::Direction::kHigherIsBetter, dims);
    harness.add("min_speedup",
                *std::min_element(speedups.begin(), speedups.end()), "x",
                bench::Direction::kHigherIsBetter, dims);
    harness.add("wins", wins, "count", bench::Direction::kHigherIsBetter,
                dims);
    harness.add("fallbacks", fallbacks, "count",
                bench::Direction::kLowerIsBetter, dims);
  }
  std::cout << "Random-graph stress: LCMM vs UMM on generated DAGs\n"
            << table
            << "The no-benefit fallback guarantees min >= ~1.00x; wins track "
               "how often generated graphs have exploitable bottlenecks.\n";
  return harness.finish();
}
