// Ablation B: contribution of each LCMM pass — feature reuse, weight
// prefetching, buffer splitting, residency promotion and the second DSE
// pass — measured end-to-end on all three networks at 16-bit.
#include <iostream>

#include "common.hpp"

namespace {

lcmm::core::LcmmOptions variant(const char* which) {
  lcmm::core::LcmmOptions opt;
  opt.allow_fallback_to_umm = false;
  const std::string v = which;
  if (v == "feature-only") opt.weight_prefetch = false;
  if (v == "prefetch-only") opt.feature_reuse = false;
  if (v == "no-splitting") opt.buffer_splitting = false;
  if (v == "no-promotion") opt.residency_promotion = false;
  if (v == "single-dse") opt.dse_passes = 1;
  // Tight-capacity variants: restrict R_sram to ~10% of the SRAM so shared
  // buffers actually spill — the regime where splitting (§3.4) matters.
  if (v == "tight") opt.sram_capacity_fraction = 0.10;
  if (v == "tight-no-split") {
    opt.sram_capacity_fraction = 0.10;
    opt.buffer_splitting = false;
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lcmm;
  bench::Harness harness(argc, argv, "ablation_passes");
  static const char* kVariants[] = {"full",          "feature-only",
                                    "prefetch-only", "no-splitting",
                                    "no-promotion",  "single-dse",
                                    "tight",         "tight-no-split"};
  util::Table table({"net", "variant", "latency (ms)", "Tops",
                     "speedup vs UMM", "URAM %", "stall (ms)"});
  for (const auto& [label, model_name] : bench::kSuite) {
    const auto graph = models::build_by_name(model_name);
    double umm_ms = 0.0;
    for (const char* v : kVariants) {
      const bench::PairResult r =
          bench::run_pair(graph, hw::Precision::kInt16, variant(v));
      umm_ms = r.umm.latency_ms;
      table.add_row({label, v, util::fmt_fixed(r.lcmm.latency_ms, 3),
                     util::fmt_fixed(r.lcmm.tops, 3),
                     util::fmt_fixed(umm_ms / r.lcmm.latency_ms, 2),
                     util::fmt_pct(r.lcmm.uram_util),
                     util::fmt_fixed(r.lcmm.total_stall_ms, 3)});
      const bench::Dims dims{
          {"net", label}, {"precision", "int16"}, {"variant", v}};
      harness.add("latency_ms", r.lcmm.latency_ms, "ms",
                  bench::Direction::kLowerIsBetter, dims);
      harness.add("speedup", umm_ms / r.lcmm.latency_ms, "x",
                  bench::Direction::kHigherIsBetter, dims);
      harness.add("stall_ms", r.lcmm.total_stall_ms, "ms",
                  bench::Direction::kLowerIsBetter, dims);
    }
    table.add_row({label, "UMM baseline", util::fmt_fixed(umm_ms, 3), "", "1.00",
                   "0", "0"});
    table.add_separator();
  }
  std::cout << "Ablation B: per-pass contribution (16-bit)\n" << table;
  return harness.finish();
}
