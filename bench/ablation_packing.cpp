// DSP-packing ablation (8-bit): the paper's baseline [18] runs one MAC per
// DSP (its quoted 2.7 Tops VU9P peak). Packing two int8 MACs into each
// DSP48E2 doubles the peak — and doubles the bandwidth pressure, pushing
// more layers into the memory-bound regime where LCMM's gains grow. This
// bench quantifies that interaction, plus the steady-state streaming
// throughput where prefetch warm-up disappears.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lcmm;
  bench::Harness harness(argc, argv, "ablation_packing");
  util::Table table({"net", "packing", "UMM Tops", "LCMM Tops", "speedup",
                     "mem-bound layers", "steady img/s (LCMM)"});
  for (const auto& [label, model_name] : bench::kSuite) {
    const auto graph = models::build_by_name(model_name);
    for (bool packing : {false, true}) {
      core::LcmmOptions options;
      options.dse.allow_int8_packing = packing;
      const bench::PairResult r =
          bench::run_pair(graph, hw::Precision::kInt8, options);
      hw::PerfModel model(graph, r.umm_plan.design);
      const auto roofline = characterize_roofline(model);
      const auto stream = sim::simulate_stream(graph, r.lcmm_plan, 4);
      table.add_row({label, packing ? "2 MAC/DSP" : "1 MAC/DSP",
                     util::fmt_fixed(r.umm.tops, 3),
                     util::fmt_fixed(r.lcmm.tops, 3),
                     util::fmt_fixed(r.speedup(), 2),
                     std::to_string(roofline.num_memory_bound) + "/" +
                         std::to_string(roofline.points.size()),
                     util::fmt_fixed(1.0 / stream.steady_image_s, 1)});
      const bench::Dims dims{{"net", label},
                             {"precision", "int8"},
                             {"packing", packing ? "2" : "1"}};
      harness.add("lcmm_tops", r.lcmm.tops, "Tops",
                  bench::Direction::kHigherIsBetter, dims);
      harness.add("speedup", r.speedup(), "x",
                  bench::Direction::kHigherIsBetter, dims);
      harness.add("memory_bound_layers", roofline.num_memory_bound, "count",
                  bench::Direction::kLowerIsBetter, dims);
      harness.add("steady_images_per_s", 1.0 / stream.steady_image_s, "img/s",
                  bench::Direction::kHigherIsBetter, dims);
    }
    table.add_separator();
  }
  std::cout << "DSP packing ablation (8-bit)\n"
            << table
            << "Packing doubles peak compute but not bandwidth: more layers "
               "go memory-bound and LCMM's advantage widens.\n";
  return harness.finish();
}
