// Batch-size extension: the paper optimizes batch-1 latency. Batching
// amortizes weight tiles across images but scales activations linearly, so
// the interesting question is where LCMM's on-chip activation buffers stop
// fitting — quantified here at 16-bit, batch 1..8.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lcmm;
  bench::Harness harness(argc, argv, "extension_batch");
  util::Table table({"net", "batch", "UMM ms/img", "UMM Tops", "LCMM ms/img",
                     "LCMM Tops", "speedup"});
  for (const auto& [label, model_name] : bench::kSuite) {
    const auto graph = models::build_by_name(model_name);
    for (int batch : {1, 2, 4, 8}) {
      core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
      core::AllocationPlan umm = compiler.compile_umm(graph);
      umm.design.batch = batch;
      core::AllocationPlan plan = compiler.compile_with_design(graph, umm.design);
      const auto usim = sim::simulate(graph, umm);
      const auto lsim = sim::refine_against_stalls(graph, plan);
      const double ops = 2.0 * static_cast<double>(graph.total_macs()) * batch;
      table.add_row({label, std::to_string(batch),
                     util::fmt_fixed(usim.total_s / batch * 1e3, 3),
                     util::fmt_fixed(ops / usim.total_s / 1e12, 3),
                     util::fmt_fixed(lsim.total_s / batch * 1e3, 3),
                     util::fmt_fixed(ops / lsim.total_s / 1e12, 3),
                     util::fmt_fixed(usim.total_s / lsim.total_s, 2) + "x"});
      const bench::Dims dims{
          {"net", label}, {"precision", "int16"}, {"batch", std::to_string(batch)}};
      harness.add("lcmm_ms_per_img", lsim.total_s / batch * 1e3, "ms",
                  bench::Direction::kLowerIsBetter, dims);
      harness.add("speedup", usim.total_s / lsim.total_s, "x",
                  bench::Direction::kHigherIsBetter, dims);
    }
    table.add_separator();
  }
  std::cout << "Batch-size extension (16-bit): per-image latency vs batch\n"
            << table
            << "Activation-bound layers stay bound under batching (activations "
               "scale with the batch), so the uniform baseline barely moves; "
               "LCMM keeps winning until batched activations outgrow the "
               "on-chip capacity, where its edge collapses back toward the "
               "baseline.\n";
  return harness.finish();
}
