// Reproduces Fig. 3: memory footprints of uniform vs layer-conscious
// memory management on the six-convolution inception_c1 snippet — which
// tensors live in off-chip buffers vs persistent on-chip tensor buffers,
// over the execution timeline.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lcmm;
  bench::Harness harness(argc, argv, "fig3_footprint");
  const auto graph = models::build_inception_c1_snippet();
  core::LcmmOptions options;
  options.liveness.include_compute_bound = true;  // the snippet is small
  options.allow_fallback_to_umm = false;
  // 16-bit: the snippet's 8x8 convolutions are decisively memory bound.
  const bench::PairResult r =
      bench::run_pair(graph, hw::Precision::kInt16, options);

  std::cout << "Fig. 3: memory footprint on the inception_c1 snippet "
               "(6 convolutions)\n\n";
  std::cout << "(b) Uniform memory management — every tensor off-chip:\n";
  // Same tensors, all resident in DRAM: reuse the LCMM entity view with an
  // all-off on-chip state.
  core::AllocationPlan umm_view = r.lcmm_plan;
  umm_view.is_umm = true;
  umm_view.state = core::OnChipState(graph.num_layers());
  umm_view.buffer_on_chip.assign(umm_view.buffer_on_chip.size(), false);
  umm_view.resident_weights.clear();
  const sim::MemoryTrace umm_trace =
      build_memory_trace(graph, umm_view, sim::simulate(graph, umm_view));
  std::cout << umm_trace.ascii_gantt(40, 48) << "\n";

  std::cout << "(c) Layer conscious memory management ('#' = on-chip tensor "
               "buffer, '.' = off-chip):\n";
  const sim::MemoryTrace lcmm_trace =
      build_memory_trace(graph, r.lcmm_plan, r.lcmm_sim);
  std::cout << lcmm_trace.ascii_gantt(40, 48) << "\n";

  int on = 0;
  for (const auto& rec : lcmm_trace.records) on += rec.on_chip;
  std::cout << "tensors moved on-chip: " << on << " / "
            << lcmm_trace.records.size() << "\n"
            << "virtual buffers: " << r.lcmm_plan.buffers.size()
            << " (over " << r.lcmm_plan.entities.size() << " tensors)\n"
            << "snippet latency: " << util::fmt_fixed(r.umm.latency_ms, 3)
            << " ms (UMM) -> " << util::fmt_fixed(r.lcmm.latency_ms, 3)
            << " ms (LCMM), speedup " << util::fmt_fixed(r.speedup(), 2)
            << "x\n";
  const bench::Dims dims{{"net", "inception_c1"}, {"precision", "int16"}};
  bench::add_pair_metrics(harness.run(), dims, r);
  harness.add("tensors_on_chip", on, "count",
              bench::Direction::kHigherIsBetter, dims);
  harness.add("virtual_buffers", static_cast<double>(r.lcmm_plan.buffers.size()),
              "count", bench::Direction::kLowerIsBetter, dims);
  return harness.finish();
}
