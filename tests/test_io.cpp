#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "io/text_format.hpp"
#include "models/models.hpp"
#include "resil/resil.hpp"
#include "test_graphs.hpp"

namespace lcmm::io {
namespace {

constexpr const char* kTiny = R"(# a tiny test network
graph tiny
input image 3x32x32
stage body
conv c1 image out=16 kernel=3x3 stride=2 pad=1x1
pool p1 c1 type=max kernel=2 stride=2
conv left p1 out=8 kernel=1x1
conv right p1 out=8 kernel=3x3 pad=1x1
concat merged left right
conv tail merged out=16 kernel=1x1
stage head
gpool gap tail type=avg
fc cls gap out=10
)";

TEST(Parse, TinyNetwork) {
  auto g = parse_graph(kTiny);
  EXPECT_EQ(g.name(), "tiny");
  EXPECT_EQ(g.num_conv_layers(), 5);  // c1, left, right, tail, cls
  EXPECT_EQ(g.num_layers(), 7u);
  // Shapes flow: 3x32x32 -> c1 16x16x16 -> pool 16x8x8 -> concat 16x8x8.
  const auto& tail = g.layers()[4];
  EXPECT_EQ(tail.name, "tail");
  EXPECT_EQ(g.input_shape(tail.id), (graph::FeatureShape{16, 8, 8}));
  EXPECT_EQ(tail.stage, "body");
  EXPECT_EQ(g.layers()[6].stage, "head");
}

TEST(Parse, ResidualReference) {
  auto g = parse_graph(
      "graph r\n"
      "input in 16x8x8\n"
      "conv a in out=16 kernel=1x1\n"
      "conv b a out=16 kernel=3x3 pad=1 residual=in\n");
  EXPECT_TRUE(g.layers()[1].has_residual());
}

TEST(Parse, GroupedConv) {
  auto g = parse_graph(
      "graph g\n"
      "input in 32x8x8\n"
      "conv dw in out=32 kernel=3x3 pad=1 groups=32\n");
  EXPECT_EQ(g.layers()[0].conv.groups, 32);
  EXPECT_EQ(g.layer_weight_elems(0), 32 * 9);
}

TEST(Parse, ErrorsCarryLineNumbers) {
  try {
    parse_graph("graph g\ninput in 3x8x8\nconv c in kernel=3x3\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("out="), std::string::npos);
  }
}

TEST(Parse, RejectsUnknownValue) {
  EXPECT_THROW(parse_graph("graph g\nconv c nowhere out=8 kernel=1\n"),
               ParseError);
}

TEST(Parse, RejectsDuplicateNames) {
  EXPECT_THROW(parse_graph("graph g\ninput a 3x8x8\ninput a 3x8x8\n"),
               ParseError);
}

TEST(Parse, RejectsMissingGraphHeader) {
  EXPECT_THROW(parse_graph("input a 3x8x8\n"), ParseError);
  EXPECT_THROW(parse_graph("# only comments\n"), ParseError);
}

TEST(Parse, RejectsRetiredConcatPart) {
  EXPECT_THROW(parse_graph(
                   "graph g\n"
                   "input in 8x8x8\n"
                   "conv a in out=8 kernel=1\n"
                   "conv b in out=8 kernel=1\n"
                   "concat m a b\n"
                   "conv c a out=8 kernel=1\n"),  // 'a' was retired
               ParseError);
}

TEST(Parse, BadShapeAndIntegers) {
  EXPECT_THROW(parse_graph("graph g\ninput a 3x8\n"), ParseError);
  EXPECT_THROW(parse_graph("graph g\ninput a 3x8xqq\n"), ParseError);
  EXPECT_THROW(
      parse_graph("graph g\ninput a 3x8x8\nconv c a out=ten kernel=1\n"),
      ParseError);
}

TEST(RoundTrip, TinyPreservesStructure) {
  auto original = parse_graph(kTiny);
  auto reparsed = parse_graph(serialize_graph(original));
  EXPECT_EQ(reparsed.name(), original.name());
  ASSERT_EQ(reparsed.num_layers(), original.num_layers());
  EXPECT_EQ(reparsed.total_macs(), original.total_macs());
  EXPECT_EQ(reparsed.total_weight_elems(), original.total_weight_elems());
  for (const auto& l : original.layers()) {
    const auto& r = reparsed.layer(l.id);
    EXPECT_EQ(r.name, l.name);
    EXPECT_EQ(r.kind, l.kind);
    EXPECT_EQ(r.stage, l.stage);
    EXPECT_EQ(reparsed.own_output_shape(l.id), original.own_output_shape(l.id));
  }
}

class RoundTripModels : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripModels, SerializeParseSerializeIsStable) {
  auto original = models::build_by_name(GetParam());
  const std::string once = serialize_graph(original);
  auto reparsed = parse_graph(once);
  const std::string twice = serialize_graph(reparsed);
  EXPECT_EQ(once, twice);
  EXPECT_EQ(reparsed.num_layers(), original.num_layers());
  EXPECT_EQ(reparsed.total_macs(), original.total_macs());
  EXPECT_EQ(reparsed.total_weight_elems(), original.total_weight_elems());
  EXPECT_EQ(reparsed.num_conv_layers(), original.num_conv_layers());
  // Liveness-relevant structure: identical consumer counts per value.
  auto census = [](const graph::ComputationGraph& g) {
    std::vector<std::size_t> counts;
    for (graph::ValueId v : g.live_values()) {
      counts.push_back(g.value(v).consumers.size());
    }
    return counts;
  };
  EXPECT_EQ(census(reparsed), census(original));
}

INSTANTIATE_TEST_SUITE_P(AllModels, RoundTripModels,
                         ::testing::Values("resnet50", "resnet152", "googlenet",
                                           "inception_v4", "alexnet", "vgg16",
                                           "mobilenet_v1", "squeezenet"),
                         [](const auto& info) { return std::string(info.param); });

TEST(Golden, AlexNetSerializationIsStable) {
  // Format regression pin: changing the emitter must be a conscious act.
  constexpr const char* kExpected = R"(graph alexnet
input image 3x227x227
stage features
conv conv1 image out=96 kernel=11 stride=4
pool pool1 conv1 type=max kernel=3 stride=2
conv conv2 pool1 out=256 kernel=5 pad=2
pool pool2 conv2 type=max kernel=3 stride=2
conv conv3 pool2 out=384 kernel=3 pad=1
conv conv4 conv3 out=384 kernel=3 pad=1
conv conv5 conv4 out=256 kernel=3 pad=1
pool pool5 conv5 type=max kernel=3 stride=2
stage classifier
conv fc6 pool5 out=4096 kernel=6
conv fc7 fc6 out=4096 kernel=1
conv fc8 fc7 out=1000 kernel=1
)";
  EXPECT_EQ(serialize_graph(models::build_alexnet()), kExpected);
}

TEST(RoundTrip, RandomGraphsSurviveSerializeParse) {
  // Property test over the random-graph generator: any graph the library
  // can build must survive a text round trip structurally unchanged.
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto original = models::random_graph(seed);
    const std::string once = serialize_graph(original);
    const auto reparsed = parse_graph(once);
    EXPECT_EQ(serialize_graph(reparsed), once);
    EXPECT_EQ(reparsed.name(), original.name());
    ASSERT_EQ(reparsed.num_layers(), original.num_layers());
    EXPECT_EQ(reparsed.total_macs(), original.total_macs());
    EXPECT_EQ(reparsed.total_weight_elems(), original.total_weight_elems());
    for (const auto& l : original.layers()) {
      EXPECT_EQ(reparsed.layer(l.id).name, l.name);
      EXPECT_EQ(reparsed.own_output_shape(l.id), original.own_output_shape(l.id));
    }
  }
}

TEST(Malformed, CorpusAlwaysRaisesParseErrorNeverCrashes) {
  // Adversarial inputs must surface as typed ParseErrors — never a crash,
  // never a foreign exception type, and overflowing dimension products must
  // not wrap into a plausible-looking graph (resil::checked_mul).
  const std::vector<std::pair<const char*, const char*>> corpus = {
      {"empty input", ""},
      {"comments only", "# nothing\n# here\n"},
      {"header only twice", "graph a\ngraph b\n"},
      {"missing header", "input a 3x8x8\n"},
      {"truncated shape", "graph g\ninput a 3x\n"},
      {"non-numeric dim", "graph g\ninput a 3x8xqq\n"},
      {"int32-overflow dim", "graph g\ninput a 99999999999999999999x1x1\n"},
      {"int64-overflow product",
       "graph g\ninput a 2000000000x2000000000x2000000000\n"
       "conv c a out=8 kernel=1\n"},
      {"unknown op", "graph g\ninput a 3x8x8\nwarp w a out=8\n"},
      {"unknown value ref", "graph g\nconv c nowhere out=8 kernel=1\n"},
      {"duplicate layer name", "graph g\ninput a 3x8x8\ninput a 3x8x8\n"},
      {"missing conv attrs", "graph g\ninput a 3x8x8\nconv c a\n"},
      {"binary junk", "\x01\x02\xff\xfe graph \x00"},
  };
  for (const auto& [label, text] : corpus) {
    SCOPED_TRACE(label);
    EXPECT_THROW(parse_graph(text), ParseError);
  }
}

TEST(Malformed, OverflowingDimsCarryTheTypedCode) {
  try {
    parse_graph(
        "graph g\ninput a 2000000000x2000000000x2000000000\n"
        "conv c a out=8 kernel=1\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), resil::Code::kSizeOverflow);
  }
}

TEST(Faults, ParserFaultSiteYieldsTypedParseError) {
  // LCMM_FAULT=io.parse must surface as a ParseError like any other input
  // failure — callers need exactly one exception type to handle.
  const resil::fault::ArmedGuard guard({.site = "io.parse"});
  try {
    parse_graph(kTiny);
    FAIL() << "expected the injected fault";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), resil::Code::kFaultInjected);
  }
}

TEST(Faults, DisarmedParserIsUnaffected) {
  {
    const resil::fault::ArmedGuard guard({.site = "io.parse"});
  }  // guard disarms on scope exit
  EXPECT_NO_THROW(parse_graph(kTiny));
}

TEST(Files, SaveAndLoad) {
  const auto path =
      (std::filesystem::temp_directory_path() / "lcmm_io_test.lcmm").string();
  auto g = lcmm::testing::diamond();
  save_graph_file(g, path);
  auto loaded = load_graph_file(path);
  EXPECT_EQ(loaded.num_layers(), g.num_layers());
  std::remove(path.c_str());
  EXPECT_THROW(load_graph_file("/nonexistent/x.lcmm"), std::runtime_error);
}

}  // namespace
}  // namespace lcmm::io
