#include <gtest/gtest.h>

#include "mem/ddr.hpp"
#include "mem/sram.hpp"

namespace lcmm::mem {
namespace {

hw::FpgaDevice vu9p() { return hw::FpgaDevice::vu9p(); }

TEST(Ddr, EfficiencyMonotoneInBurst) {
  DdrModel ddr(vu9p());
  double prev = 0.0;
  for (double burst : {16.0, 64.0, 256.0, 1024.0, 4096.0, 65536.0}) {
    const double eff = ddr.efficiency(burst);
    EXPECT_GE(eff, prev);
    EXPECT_LE(eff, ddr.options().max_efficiency + 1e-12);
    prev = eff;
  }
  EXPECT_DOUBLE_EQ(ddr.efficiency(0.0), 0.0);
}

TEST(Ddr, SaturatesAtCap) {
  DdrModel ddr(vu9p());
  EXPECT_NEAR(ddr.efficiency(1e9), ddr.options().max_efficiency, 1e-9);
}

TEST(Ddr, StreamSplitMatchesPaper) {
  // §2.2: 4 banks x 19.2 GB/s split over 3 streams = 25.6 GB/s each.
  DdrModel ddr(vu9p());
  EXPECT_NEAR(ddr.stream_peak_bytes_per_sec(), 25.6e9, 1e6);
}

TEST(Ddr, TransferSecondsScalesLinearly) {
  DdrModel ddr(vu9p());
  const double t1 = ddr.transfer_seconds(1e6, 1024.0);
  const double t2 = ddr.transfer_seconds(2e6, 1024.0);
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(ddr.transfer_seconds(0.0, 1024.0), 0.0);
}

TEST(Ddr, ShorterBurstsAreSlower) {
  DdrModel ddr(vu9p());
  EXPECT_GT(ddr.transfer_seconds(1e6, 64.0), ddr.transfer_seconds(1e6, 4096.0));
}

TEST(Ddr, BadOptionsThrow) {
  DdrModelOptions opt;
  opt.streams = 0;
  EXPECT_THROW(DdrModel(vu9p(), opt), std::invalid_argument);
  opt = DdrModelOptions{};
  opt.max_efficiency = 1.5;
  EXPECT_THROW(DdrModel(vu9p(), opt), std::invalid_argument);
}

TEST(Sram, BlockArithmetic) {
  EXPECT_EQ(SramPools::block_bytes(SramPool::kBram), 4608);
  EXPECT_EQ(SramPools::block_bytes(SramPool::kUram), 36864);
  EXPECT_EQ(SramPools::blocks_needed(1, SramPool::kUram), 1);
  EXPECT_EQ(SramPools::blocks_needed(36864, SramPool::kUram), 1);
  EXPECT_EQ(SramPools::blocks_needed(36865, SramPool::kUram), 2);
  EXPECT_THROW(SramPools::blocks_needed(0, SramPool::kUram), std::invalid_argument);
}

TEST(Sram, AllocatePreferredPool) {
  SramPools pools(100, 100);
  const auto a = pools.allocate(40000, SramPool::kUram);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->pool, SramPool::kUram);
  EXPECT_EQ(a->blocks, 2);
  EXPECT_EQ(pools.uram_used(), 2);
  EXPECT_EQ(pools.bram_used(), 0);
}

TEST(Sram, FallbackWhenPreferredExhausted) {
  SramPools pools(100, 1);
  const auto a = pools.allocate(40000, SramPool::kUram);  // needs 2 URAM
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->pool, SramPool::kBram);
  EXPECT_EQ(a->blocks, 9);  // ceil(40000/4608)
}

TEST(Sram, ExhaustionReturnsNullopt) {
  SramPools pools(1, 1);
  EXPECT_FALSE(pools.allocate(1 << 20, SramPool::kUram).has_value());
}

TEST(Sram, ReleaseReturnsBlocks) {
  SramPools pools(10, 10);
  const auto a = pools.allocate(100000, SramPool::kUram);
  ASSERT_TRUE(a.has_value());
  const int used = pools.uram_used();
  pools.release(*a);
  EXPECT_EQ(pools.uram_used(), used - a->blocks);
  EXPECT_THROW(pools.release(*a), std::logic_error);  // double release
}

TEST(Sram, UtilizationAndFreeBytes) {
  SramPools pools(10, 10);
  EXPECT_DOUBLE_EQ(pools.bram_utilization(), 0.0);
  const std::int64_t total_free = pools.free_bytes();
  (void)pools.allocate(4608 * 5, SramPool::kBram);
  EXPECT_DOUBLE_EQ(pools.bram_utilization(), 0.5);
  EXPECT_EQ(pools.free_bytes(), total_free - 5 * 4608);
}

TEST(Sram, ZeroUramPoolReportsZeroUtilization) {
  SramPools pools(10, 0);  // e.g. ZU9EG has no URAM
  EXPECT_DOUBLE_EQ(pools.uram_utilization(), 0.0);
  const auto a = pools.allocate(1000, SramPool::kUram);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->pool, SramPool::kBram);
}

TEST(Sram, NegativeBlocksThrow) {
  EXPECT_THROW(SramPools(-1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace lcmm::mem
