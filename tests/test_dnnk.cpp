#include <gtest/gtest.h>

#include "core/dnnk.hpp"
#include "core/liveness.hpp"
#include "test_graphs.hpp"

namespace lcmm::core {
namespace {

using lcmm::testing::small_design;

/// A chain of 1x1 convs on fat feature maps: every layer memory bound.
graph::ComputationGraph fat_chain(int n) {
  graph::ComputationGraph g("fat_chain");
  auto x = g.add_input("in", {256, 28, 28});
  for (int i = 0; i < n; ++i) {
    x = g.add_conv("c" + std::to_string(i), x, {256, 1, 1, 1, 0, 0});
  }
  g.validate();
  return g;
}

/// An instance with singleton virtual buffers over input-feature entities
/// only — one tensor per layer, so knapsack values are independent and the
/// exact search is a true optimum oracle. Heap members keep the internal
/// cross-references (tables -> model -> graph) stable.
struct Instance {
  std::unique_ptr<graph::ComputationGraph> graph_ptr;
  std::unique_ptr<hw::PerfModel> model_ptr;
  std::unique_ptr<LatencyTables> tables_ptr;
  std::unique_ptr<InterferenceGraph> ig_ptr;
  std::vector<VirtualBuffer> buffers;

  const graph::ComputationGraph& graph = *graph_ptr;
  LatencyTables& tables = *tables_ptr;
  InterferenceGraph& ig = *ig_ptr;
};

Instance singleton_instance(int n) {
  auto g = std::make_unique<graph::ComputationGraph>(fat_chain(n));
  // Wide SIMD makes every 1x1 layer decisively input-transfer bound.
  hw::AcceleratorDesign design = small_design();
  design.array = {16, 8, 16};
  auto model = std::make_unique<hw::PerfModel>(*g, design);
  auto tables = std::make_unique<LatencyTables>(*model);
  LivenessOptions opt;
  opt.include_compute_bound = true;
  std::vector<TensorEntity> entities;
  for (const TensorEntity& e : build_feature_entities(*model, opt)) {
    if (e.key.source == TensorSource::kInput) entities.push_back(e);
  }
  auto ig = std::make_unique<InterferenceGraph>(std::move(entities));
  std::vector<VirtualBuffer> buffers;
  for (std::size_t i = 0; i < ig->size(); ++i) {
    VirtualBuffer b;
    b.id = static_cast<int>(i);
    b.bytes = ig->entities()[i].bytes;
    b.members = {i};
    buffers.push_back(b);
  }
  return Instance{std::move(g), std::move(model), std::move(tables),
                  std::move(ig), std::move(buffers)};
}

TEST(Dnnk, ZeroCapacityAllocatesNothing) {
  auto inst = singleton_instance(4);
  const auto r = dnnk_allocate(inst.ig, inst.buffers, inst.tables, 0);
  EXPECT_EQ(r.bytes_used, 0);
  EXPECT_DOUBLE_EQ(r.gain_s, 0.0);
  for (bool on : r.buffer_on_chip) EXPECT_FALSE(on);
}

TEST(Dnnk, UnlimitedCapacityTakesEveryUsefulBuffer) {
  auto inst = singleton_instance(4);
  const auto r = dnnk_allocate(inst.ig, inst.buffers, inst.tables,
                               std::int64_t{1} << 40);
  for (std::size_t b = 0; b < inst.buffers.size(); ++b) {
    EXPECT_TRUE(r.buffer_on_chip[b]);
  }
  EXPECT_GT(r.gain_s, 0.0);
}

TEST(Dnnk, CapacityRespectedAcrossSweep) {
  auto inst = singleton_instance(6);
  const AllocatorOptions opt;
  for (std::int64_t cap = 0; cap < std::int64_t{4} << 20;
       cap += std::int64_t{1} << 18) {
    const auto r = dnnk_allocate(inst.ig, inst.buffers, inst.tables, cap, opt);
    EXPECT_LE(r.bytes_used, (cap / opt.granularity_bytes) * opt.granularity_bytes +
                                0);  // quantized capacity
    EXPECT_GE(r.gain_s, 0.0);
  }
}

TEST(Dnnk, MatchesExactOnIndependentItems) {
  auto inst = singleton_instance(6);
  // Sweep capacities; with independent singleton items DNNK reduces to the
  // classic 0/1 knapsack DP, which is optimal at block granularity.
  for (std::int64_t cap :
       {std::int64_t{1} << 19, std::int64_t{1} << 20, std::int64_t{3} << 20}) {
    const auto dp = dnnk_allocate(inst.ig, inst.buffers, inst.tables, cap);
    const auto best = exact_allocate(inst.ig, inst.buffers, inst.tables, cap);
    EXPECT_NEAR(dp.gain_s, best.gain_s, best.gain_s * 1e-9 + 1e-15)
        << "capacity " << cap;
  }
}

TEST(Dnnk, AtLeastAsGoodAsGreedyOnChain) {
  auto inst = singleton_instance(8);
  for (std::int64_t cap : {std::int64_t{1} << 20, std::int64_t{2} << 20}) {
    const auto dp = dnnk_allocate(inst.ig, inst.buffers, inst.tables, cap);
    const auto greedy = greedy_allocate(inst.ig, inst.buffers, inst.tables, cap);
    EXPECT_GE(dp.gain_s, greedy.gain_s - 1e-15);
  }
}

TEST(Dnnk, GainIsTrueLatencyDelta) {
  auto inst = singleton_instance(5);
  const auto r = dnnk_allocate(inst.ig, inst.buffers, inst.tables,
                               std::int64_t{2} << 20);
  const OnChipState umm(inst.graph.num_layers());
  const double delta = inst.tables.total_latency(umm) -
                       inst.tables.total_latency(r.state);
  EXPECT_NEAR(r.gain_s, delta, 1e-15);
}

TEST(Dnnk, PivotCompensationWithinOneLayer) {
  // One layer, two entities (if and of) in separate buffers. The realized
  // total gain must equal the Eq. 1 node delta, not the sum of standalone
  // gains (which would double count below the pivot).
  graph::ComputationGraph g = fat_chain(1);
  hw::PerfModel model(g, small_design());
  LatencyTables tables(model);
  LivenessOptions opt;
  opt.include_compute_bound = true;
  InterferenceGraph ig(build_feature_entities(model, opt));
  std::vector<VirtualBuffer> buffers;
  for (std::size_t i = 0; i < ig.size(); ++i) {
    buffers.push_back(VirtualBuffer{static_cast<int>(i), ig.entities()[i].bytes,
                                    {i}, 0, 0});
  }
  const auto r =
      dnnk_allocate(ig, buffers, tables, std::int64_t{1} << 40);
  const std::uint8_t full_mask = r.state.layer_mask(0);
  const double node_delta =
      tables.node_latency_umm(0) - tables.node_latency(0, full_mask);
  EXPECT_NEAR(r.gain_s, node_delta, 1e-15);
}

TEST(Dnnk, PrefersHigherValuePerByte) {
  // Two singleton buffers, capacity for one: DNNK must take the one whose
  // true gain is larger when sizes are equal.
  auto inst = singleton_instance(2);
  ASSERT_EQ(inst.buffers.size(), 2u);
  const std::int64_t cap = std::max(inst.buffers[0].bytes, inst.buffers[1].bytes);
  const auto r = dnnk_allocate(inst.ig, inst.buffers, inst.tables, cap);
  const auto best = exact_allocate(inst.ig, inst.buffers, inst.tables, cap);
  EXPECT_NEAR(r.gain_s, best.gain_s, 1e-12);
}

TEST(Dnnk, QuantizationRoundsUp) {
  AllocatorOptions opt;
  opt.granularity_bytes = 100;
  EXPECT_EQ(quantized_units(1, opt), 1);
  EXPECT_EQ(quantized_units(100, opt), 1);
  EXPECT_EQ(quantized_units(101, opt), 2);
  opt.granularity_bytes = 0;
  EXPECT_THROW(quantized_units(1, opt), std::invalid_argument);
}

TEST(Exact, RejectsOversizedInstances) {
  auto inst = singleton_instance(3);
  std::vector<VirtualBuffer> many;
  for (int i = 0; i < 30; ++i) {
    VirtualBuffer b = inst.buffers[0];
    b.id = i;
    many.push_back(b);
  }
  EXPECT_THROW(exact_allocate(inst.ig, many, inst.tables, 1 << 20),
               std::invalid_argument);
  EXPECT_THROW(
      exact_allocate(inst.ig, inst.buffers, inst.tables, 1 << 20, {}, 30),
      std::invalid_argument);
}

TEST(EvaluateSelection, SelectionSizeMismatchThrows) {
  auto inst = singleton_instance(2);
  EXPECT_THROW(evaluate_selection(inst.ig, inst.buffers, inst.tables,
                                  {true}, AllocatorOptions{}),
               std::invalid_argument);
}

TEST(Greedy, RespectsCapacity) {
  auto inst = singleton_instance(6);
  const AllocatorOptions opt;
  const std::int64_t cap = std::int64_t{1} << 20;
  const auto r = greedy_allocate(inst.ig, inst.buffers, inst.tables, cap, opt);
  EXPECT_LE(r.bytes_used, cap);
  EXPECT_GE(r.gain_s, 0.0);
}

TEST(LatencyTablesApi, MarginalGainNonNegativeAndConsistent) {
  auto g = lcmm::testing::residual_block();
  hw::PerfModel model(g, small_design());
  LatencyTables tables(model);
  for (const auto& layer : g.layers()) {
    for (int s = 0; s < kNumSources; ++s) {
      for (std::uint8_t mask = 0; mask < 16; ++mask) {
        const double gain =
            tables.marginal_gain(layer.id, static_cast<TensorSource>(s), mask);
        EXPECT_GE(gain, 0.0);
      }
    }
    // Fully on-chip latency equals the compute floor.
    EXPECT_NEAR(tables.node_latency(layer.id, 0x0F),
                model.timing(layer.id).compute_s, 1e-15);
    EXPECT_DOUBLE_EQ(tables.node_latency_umm(layer.id),
                     model.timing(layer.id).umm_latency());
  }
}

TEST(LatencyTablesApi, PivotIsLargestOffChipTerm) {
  auto g = fat_chain(1);
  hw::PerfModel model(g, small_design());
  LatencyTables tables(model);
  TensorSource pivot;
  ASSERT_TRUE(tables.pivot(0, 0, pivot));
  const auto& t = model.timing(0);
  const double lat = pivot == TensorSource::kInput  ? t.if_s
                     : pivot == TensorSource::kWeight ? t.wt_s
                                                      : t.of_s;
  EXPECT_GE(lat, t.if_s);
  EXPECT_GE(lat, t.wt_s);
  EXPECT_GE(lat, t.of_s);
  // With everything on-chip there is no pivot.
  EXPECT_FALSE(tables.pivot(0, 0x0F, pivot));
}

}  // namespace
}  // namespace lcmm::core
