// lcmm::par: worker-count policy, the thread pool, parallel_for/map, and
// the determinism contract — results, telemetry and errors must be
// indistinguishable between serial and parallel runs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "driver/batch.hpp"
#include "hw/dse.hpp"
#include "models/models.hpp"
#include "obs/obs.hpp"
#include "par/par.hpp"

namespace lcmm {
namespace {

/// Restores the process default worker count on scope exit so tests that
/// raise it cannot leak into later tests.
class DefaultJobsGuard {
 public:
  DefaultJobsGuard() : saved_(par::default_jobs()) {}
  ~DefaultJobsGuard() { par::set_default_jobs(saved_); }

 private:
  int saved_;
};

TEST(ParJobs, HardwareJobsAtLeastOne) {
  EXPECT_GE(par::hardware_jobs(), 1);
}

TEST(ParJobs, DefaultJobsRoundTrip) {
  DefaultJobsGuard guard;
  par::set_default_jobs(3);
  EXPECT_EQ(par::default_jobs(), 3);
  EXPECT_EQ(par::effective_jobs(0), 3);
  EXPECT_EQ(par::effective_jobs(7), 7);
  // Non-positive requests clamp to serial rather than exploding.
  par::set_default_jobs(0);
  EXPECT_EQ(par::default_jobs(), 1);
  EXPECT_EQ(par::effective_jobs(-2), 1);
}

TEST(ParThreadPool, RunsSubmittedTasks) {
  par::ThreadPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2);
  std::atomic<int> done{0};
  std::mutex m;
  std::condition_variable cv;
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
      if (done.fetch_add(1) + 1 == 16) {
        std::lock_guard<std::mutex> lock(m);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(m);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return done.load() == 16; }));
}

TEST(ParThreadPool, EnsureThreadsGrowsButNeverShrinks) {
  par::ThreadPool pool(1);
  pool.ensure_threads(3);
  EXPECT_EQ(pool.num_threads(), 3);
  pool.ensure_threads(2);
  EXPECT_EQ(pool.num_threads(), 3);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (int jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(100);
    par::parallel_for(hits.size(), jobs,
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(ParallelFor, SerialPathStaysOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  par::parallel_for(8, 1, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelFor, ZeroIterationsIsANoOp) {
  par::parallel_for(0, 8, [](std::size_t) { FAIL() << "body ran"; });
}

TEST(ParallelFor, RethrowsLowestFailingIndex) {
  for (int jobs : {1, 4}) {
    try {
      par::parallel_for(64, jobs, [](std::size_t i) {
        if (i % 2 == 1) throw std::runtime_error("fail@" + std::to_string(i));
      });
      FAIL() << "expected a throw (jobs " << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail@1") << "jobs " << jobs;
    }
  }
}

TEST(ParallelFor, NestedLoopsDoNotDeadlock) {
  std::atomic<int> total{0};
  par::parallel_for(4, 4, [&](std::size_t) {
    par::parallel_for(4, 4, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ParallelMap, ResultsLandInIndexOrder) {
  const auto squares = par::parallel_map(
      50, 8, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(squares.size(), 50u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], static_cast<int>(i * i));
  }
}

/// Scheduling-independent rendering of a registry: everything except the
/// wall-clock fields (start_s/dur_s vary run to run even serially).
std::string structural_fingerprint(const obs::CompileStats& stats) {
  std::ostringstream os;
  for (const obs::Span& s : stats.spans()) {
    os << "span " << s.name << " parent=" << s.parent << " depth=" << s.depth
       << " open=" << s.open;
    for (const auto& [k, v] : s.counters) os << " " << k << "=" << v;
    for (const auto& [k, v] : s.gauges) os << " " << k << "=" << v;
    os << "\n";
  }
  for (const auto& [k, v] : stats.root_counters()) {
    os << "root " << k << "=" << v << "\n";
  }
  for (const obs::Decision& d : stats.decisions()) {
    os << "decision " << d.pass << " " << d.subject << " " << d.bytes << " "
       << d.accepted << " " << d.reason << "\n";
  }
  return os.str();
}

std::string instrumented_sweep_fingerprint(int jobs) {
  obs::StatsSession session;
  {
    obs::ScopedSpan sweep("sweep");
    par::parallel_for(6, jobs, [](std::size_t i) {
      obs::ScopedSpan item("item");
      if (obs::CompileStats* sink = obs::current()) {
        sink->count("work", static_cast<std::int64_t>(i));
        sink->gauge("size", static_cast<double>(i) * 2.0);
        sink->decide("t" + std::to_string(i), 64, i % 2 == 0, "parity");
      }
    });
  }
  return structural_fingerprint(session.stats());
}

TEST(ParallelFor, TelemetryMergesInSpawnOrder) {
  const std::string serial = instrumented_sweep_fingerprint(1);
  EXPECT_NE(serial.find("span sweep"), std::string::npos);
  EXPECT_NE(serial.find("decision item t5"), std::string::npos);
  for (int jobs : {2, 8}) {
    EXPECT_EQ(instrumented_sweep_fingerprint(jobs), serial)
        << "jobs " << jobs;
  }
}

TEST(Dse, ExploreIsWorkerCountIndependent) {
  for (const std::string& name : models::model_names()) {
    const auto graph = models::build_by_name(name);
    hw::DseOptions serial_opt;
    serial_opt.jobs = 1;
    hw::DseOptions parallel_opt;
    parallel_opt.jobs = 8;
    const hw::Dse serial(hw::FpgaDevice::vu9p(), hw::Precision::kInt16,
                         serial_opt);
    const hw::Dse parallel(hw::FpgaDevice::vu9p(), hw::Precision::kInt16,
                           parallel_opt);
    const hw::DseResult a = serial.explore(graph);
    const hw::DseResult b = parallel.explore(graph);
    EXPECT_EQ(a.design.array.rows, b.design.array.rows) << name;
    EXPECT_EQ(a.design.array.cols, b.design.array.cols) << name;
    EXPECT_EQ(a.design.array.simd, b.design.array.simd) << name;
    EXPECT_EQ(a.design.array.pixel_pack, b.design.array.pixel_pack) << name;
    EXPECT_EQ(a.design.tile, b.design.tile) << name;
    EXPECT_EQ(a.objective_latency_s, b.objective_latency_s) << name;
  }
}

TEST(Batch, CompileManyMatchesSerialCompilation) {
  std::vector<driver::BatchJob> jobs;
  for (const char* name : {"alexnet", "squeezenet"}) {
    for (hw::Precision p : {hw::Precision::kInt8, hw::Precision::kInt16}) {
      jobs.push_back({models::build_by_name(name), hw::FpgaDevice::vu9p(), p,
                      core::LcmmOptions{}});
    }
  }
  const auto serial = driver::compile_many(jobs, 1);
  const auto parallel = driver::compile_many(jobs, 8);
  ASSERT_EQ(serial.size(), jobs.size());
  ASSERT_EQ(parallel.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok()) << parallel[i].error;
    EXPECT_EQ(serial[i].umm_sim.total_s, parallel[i].umm_sim.total_s) << i;
    EXPECT_EQ(serial[i].lcmm_sim.total_s, parallel[i].lcmm_sim.total_s) << i;
    EXPECT_EQ(serial[i].umm_report.latency_ms, parallel[i].umm_report.latency_ms)
        << i;
    EXPECT_EQ(serial[i].lcmm_report.latency_ms,
              parallel[i].lcmm_report.latency_ms)
        << i;
    EXPECT_EQ(serial[i].lcmm_plan.buffers.size(),
              parallel[i].lcmm_plan.buffers.size())
        << i;
  }
}

TEST(Batch, CompileStatsAreWorkerCountIndependent) {
  // The --stats-json contract: a full instrumented compile collects a
  // structurally identical registry whatever the worker count (wall-clock
  // fields aside — those differ between two serial runs too).
  const auto fingerprint = [](int workers) {
    std::vector<driver::BatchJob> jobs;
    jobs.push_back({models::build_by_name("googlenet"), hw::FpgaDevice::vu9p(),
                    hw::Precision::kInt16, core::LcmmOptions{}});
    jobs.push_back({models::build_by_name("alexnet"), hw::FpgaDevice::vu9p(),
                    hw::Precision::kInt8, core::LcmmOptions{}});
    obs::StatsSession session;
    const auto outcomes = driver::compile_many(jobs, workers);
    for (const auto& o : outcomes) EXPECT_TRUE(o.ok()) << o.error;
    return structural_fingerprint(session.stats());
  };
  const std::string serial = fingerprint(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(fingerprint(8), serial);
}

TEST(Batch, FailedJobReportsErrorWithoutKillingTheSweep) {
  std::vector<driver::BatchJob> jobs;
  jobs.push_back({models::build_by_name("alexnet"), hw::FpgaDevice::vu9p(),
                  hw::Precision::kInt16, core::LcmmOptions{}});
  // A device with no DSPs has no feasible design; its job must fail in
  // isolation (Dse::explore throws inside the worker).
  hw::FpgaDevice no_dsps = hw::FpgaDevice::vu9p();
  no_dsps.dsp_total = 0;
  jobs.push_back({models::build_by_name("alexnet"), no_dsps,
                  hw::Precision::kInt16, core::LcmmOptions{}});
  const auto outcomes = driver::compile_many(jobs, 2);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok()) << outcomes[0].error;
  EXPECT_FALSE(outcomes[1].ok());
  EXPECT_FALSE(outcomes[1].error.empty());
}

}  // namespace
}  // namespace lcmm
