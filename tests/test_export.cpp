#include <gtest/gtest.h>

#include "core/export.hpp"
#include "core/liveness.hpp"
#include "models/models.hpp"
#include "test_graphs.hpp"

namespace lcmm::core {
namespace {

using lcmm::testing::small_design;

InterferenceGraph snippet_interference() {
  static auto g = models::build_inception_c1_snippet();
  hw::PerfModel model(g, small_design());
  LivenessOptions opt;
  opt.include_compute_bound = true;
  return InterferenceGraph(build_feature_entities(model, opt));
}

TEST(Export, InterferenceDotMentionsEveryEntity) {
  const InterferenceGraph ig = snippet_interference();
  const std::string dot = interference_to_dot(ig);
  EXPECT_NE(dot.find("graph interference"), std::string::npos);
  for (const TensorEntity& e : ig.entities()) {
    EXPECT_NE(dot.find(e.name), std::string::npos) << e.name;
  }
  // Undirected edges.
  EXPECT_NE(dot.find(" -- "), std::string::npos);
}

TEST(Export, FalseEdgesRenderDashed) {
  InterferenceGraph ig = snippet_interference();
  // Find a non-interfering pair to split.
  bool added = false;
  for (std::size_t a = 0; a < ig.size() && !added; ++a) {
    for (std::size_t b = a + 1; b < ig.size() && !added; ++b) {
      if (!ig.interferes(a, b)) {
        ig.add_false_edge(a, b);
        added = true;
      }
    }
  }
  ASSERT_TRUE(added);
  const std::string dot = interference_to_dot(ig);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("split"), std::string::npos);
}

TEST(Export, PdgShowsHiddenAndUnhiddenEdges) {
  auto g = models::build_googlenet();
  hw::PerfModel model(g, small_design());
  LivenessOptions opt;
  opt.include_compute_bound = true;
  const PrefetchResult prefetch = build_prefetch_schedule(model, opt);
  const std::string dot = pdg_to_dot(g, prefetch);
  EXPECT_NE(dot.find("digraph pdg"), std::string::npos);
  EXPECT_NE(dot.find("prefetch"), std::string::npos);
  EXPECT_NE(dot.find("color=blue"), std::string::npos);  // hidden
  EXPECT_NE(dot.find("color=red"), std::string::npos);   // first layers
}

TEST(Export, PlanDotColorsBuffersByStatus) {
  auto g = models::build_squeezenet();
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  const AllocationPlan plan = compiler.compile(g);
  const std::string dot = plan_to_dot(plan);
  EXPECT_NE(dot.find("vbuf"), std::string::npos);
  EXPECT_NE(dot.find("lightblue"), std::string::npos);  // on-chip buffers
}

TEST(Export, EscapingHandlesQuotes) {
  graph::ComputationGraph g("q");
  auto in = g.add_input("in\"put", {8, 4, 4});
  g.add_conv("c", in, {8, 1, 1, 1, 0, 0});
  hw::PerfModel model(g, small_design());
  LivenessOptions opt;
  opt.include_compute_bound = true;
  InterferenceGraph ig(build_feature_entities(model, opt));
  const std::string dot = interference_to_dot(ig);
  EXPECT_NE(dot.find("\\\""), std::string::npos);
}

}  // namespace
}  // namespace lcmm::core
