// Cross-validation of the analytical Eq. 1 model against the tile-level
// event simulator — the evidence that the closed form used inside DNNK and
// the DSE is trustworthy.
#include <gtest/gtest.h>

#include "core/lcmm.hpp"
#include "models/models.hpp"
#include "sim/tile_sim.hpp"
#include "test_graphs.hpp"

namespace lcmm::sim {
namespace {

using lcmm::testing::small_design;

TEST(TileSim, LowerBoundsHold) {
  auto g = models::build_googlenet();
  hw::PerfModel model(g, small_design(hw::Precision::kInt16));
  for (const auto& l : g.layers()) {
    const TileSimResult r = simulate_layer_tiles(model, l.id);
    const hw::LayerTiming& t = model.timing(l.id);
    // The event simulation can never beat any single resource's busy time.
    EXPECT_GE(r.latency_s * (1 + 1e-12), r.compute_busy_s) << l.name;
    EXPECT_GE(r.latency_s * (1 + 1e-12), r.if_busy_s) << l.name;
    EXPECT_GE(r.latency_s * (1 + 1e-12), r.wt_busy_s) << l.name;
    // And the busy times agree with the analytical stream totals.
    EXPECT_NEAR(r.if_busy_s, t.if_s, t.if_s * 0.02 + 1e-9) << l.name;
    EXPECT_NEAR(r.wt_busy_s, t.wt_s, t.wt_s * 0.02 + 1e-9) << l.name;
    EXPECT_NEAR(r.compute_busy_s, t.compute_s, t.compute_s * 0.05 + 1e-9)
        << l.name;
  }
}

class TileSimAgreement : public ::testing::TestWithParam<const char*> {};

TEST_P(TileSimAgreement, MatchesAnalyticalWithinTolerance) {
  auto g = models::build_by_name(GetParam());
  hw::PerfModel model(g, small_design(hw::Precision::kInt16));
  double analytical = 0.0, event = 0.0;
  for (const auto& l : g.layers()) {
    analytical += model.timing(l.id).umm_latency();
    event += simulate_layer_tiles(model, l.id).latency_s;
  }
  // Event-driven >= analytical (fill/coupling), but within 20% end to end.
  EXPECT_GE(event, analytical * 0.99);
  EXPECT_LE(event, analytical * 1.20)
      << "pipeline effects should stay second-order";
}

INSTANTIATE_TEST_SUITE_P(Models, TileSimAgreement,
                         ::testing::Values("googlenet", "resnet50",
                                           "squeezenet", "mobilenet_v1"),
                         [](const auto& info) { return std::string(info.param); });

TEST(TileSim, OnChipMaskRemovesStreams) {
  auto g = lcmm::testing::chain3();
  hw::PerfModel model(g, small_design());
  const TileSimResult off = simulate_layer_tiles(model, 1, 0);
  const std::uint8_t all_on = 0x0F;
  const TileSimResult on = simulate_layer_tiles(model, 1, all_on);
  EXPECT_DOUBLE_EQ(on.if_busy_s, 0.0);
  EXPECT_DOUBLE_EQ(on.wt_busy_s, 0.0);
  EXPECT_DOUBLE_EQ(on.of_busy_s, 0.0);
  EXPECT_LE(on.latency_s, off.latency_s);
  // Fully on-chip: latency is pure compute.
  EXPECT_NEAR(on.latency_s, on.compute_busy_s, on.compute_busy_s * 1e-9);
}

TEST(TileSim, TileCountMatchesGeometry) {
  auto g = lcmm::testing::chain3();
  hw::PerfModel model(g, small_design());
  const auto geom = layer_tile_geometry(g, 1, model.design().array,
                                        model.design().tile);
  const TileSimResult r = simulate_layer_tiles(model, 1);
  EXPECT_EQ(r.num_tiles, geom.total_tiles());
}

TEST(TileSim, MemoryBoundLayerIsStreamLimited) {
  // A fat 1x1 conv on a wide-SIMD array: the if stream dominates, so the
  // event simulation should sit near the if busy time, far above compute.
  graph::ComputationGraph g("t");
  auto in = g.add_input("in", {512, 28, 28});
  g.add_conv("c", in, {64, 1, 1, 1, 0, 0});
  hw::AcceleratorDesign d = small_design();
  d.array = {16, 8, 16};
  hw::PerfModel model(g, d);
  ASSERT_TRUE(model.timing(0).memory_bound());
  const TileSimResult r = simulate_layer_tiles(model, 0);
  EXPECT_GT(r.if_busy_s, r.compute_busy_s);
  EXPECT_LE(r.latency_s, r.if_busy_s * 1.15);
}

TEST(TileSim, TotalRespectsAllocationState) {
  auto g = models::build_googlenet();
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  auto plan = compiler.compile(g);
  hw::PerfModel model(g, plan.design);
  const core::OnChipState umm(g.num_layers());
  const double base = tile_sim_total_latency(model, umm);
  const double allocated = tile_sim_total_latency(model, plan.state);
  EXPECT_LT(allocated, base);
}

TEST(TileSim, ResidualChargedOnWriteOut) {
  auto g = lcmm::testing::residual_block();
  hw::PerfModel model(g, small_design());
  const auto& expand = g.layers()[2];
  const TileSimResult with_res = simulate_layer_tiles(model, expand.id, 0);
  std::uint8_t res_on = 0;
  res_on |= 1u << static_cast<int>(core::TensorSource::kResidual);
  const TileSimResult without = simulate_layer_tiles(model, expand.id, res_on);
  // The residual is read on the input-feature interface during write-out.
  EXPECT_GT(with_res.if_busy_s, without.if_busy_s);
  EXPECT_DOUBLE_EQ(with_res.of_busy_s, without.of_busy_s);
}

}  // namespace
}  // namespace lcmm::sim
