#include <gtest/gtest.h>

#include "hw/device.hpp"
#include "hw/dse.hpp"
#include "hw/systolic.hpp"
#include "hw/tiling.hpp"
#include "test_graphs.hpp"

namespace lcmm::hw {
namespace {

TEST(Precision, BytesPerElem) {
  EXPECT_EQ(bytes_per_elem(Precision::kInt8), 1);
  EXPECT_EQ(bytes_per_elem(Precision::kInt16), 2);
  EXPECT_EQ(bytes_per_elem(Precision::kFp32), 4);
}

TEST(Precision, DspCostMatchesPaper) {
  // §4.1: fixed-point MAC = 1 DSP, fp32 MAC = 5 DSPs.
  EXPECT_EQ(dsps_per_mac(Precision::kInt8), 1);
  EXPECT_EQ(dsps_per_mac(Precision::kInt16), 1);
  EXPECT_EQ(dsps_per_mac(Precision::kFp32), 5);
}

TEST(Device, Vu9pResources) {
  const FpgaDevice d = FpgaDevice::vu9p();
  EXPECT_EQ(d.dsp_total, 6840);
  EXPECT_EQ(d.uram_total, 960);
  EXPECT_EQ(d.bram36_total, 2160);
  // ~44 MB of SRAM total — the "around the device limit (40 MB)" of
  // Fig. 2(b).
  EXPECT_NEAR(d.sram_bytes_total() / (1024.0 * 1024.0), 43.3, 1.5);
  // 4 banks x 19.2 GB/s.
  EXPECT_DOUBLE_EQ(d.ddr_peak_gbps_total(), 76.8);
}

TEST(Device, ClockModel) {
  const FpgaDevice d = FpgaDevice::vu9p();
  EXPECT_GT(d.clock_mhz(Precision::kInt8, false),
            d.clock_mhz(Precision::kInt8, true));
  EXPECT_GT(d.clock_mhz(Precision::kInt16, false),
            d.clock_mhz(Precision::kFp32, false));
}

TEST(Systolic, MacsAndDspCost) {
  const SystolicArrayConfig a{32, 11, 16};
  EXPECT_EQ(a.macs_per_cycle(), 5632);
  EXPECT_EQ(a.dsp_cost(Precision::kInt8), 5632);
  EXPECT_EQ(a.dsp_cost(Precision::kFp32), 28160);
  EXPECT_DOUBLE_EQ(a.peak_ops_per_sec(200.0), 2.0 * 5632 * 200e6);
  EXPECT_EQ(a.to_string(), "32x11x16");
}

TEST(Tiling, GeometryCountsTiles) {
  auto g = lcmm::testing::chain3();  // 28x28 maps
  const SystolicArrayConfig array{16, 8, 8};
  const TileConfig tile{16, 14, 14};
  // Layer B: 64 -> 64 channels, 28x28.
  const LayerTileGeometry geom = layer_tile_geometry(g, 1, array, tile);
  EXPECT_EQ(geom.n_m, 4);   // 64 / 16 rows
  EXPECT_EQ(geom.n_c, 4);   // 64 / 16 tc
  EXPECT_EQ(geom.n_h, 2);
  EXPECT_EQ(geom.n_w, 2);
  EXPECT_EQ(geom.total_tiles(), 4 * 4 * 4);
}

TEST(Tiling, HaloCountsOverlapClipped) {
  auto g = lcmm::testing::chain3();
  const SystolicArrayConfig array{16, 8, 8};
  const TileConfig tile{16, 14, 14};
  // 3x3 stride-1 pad-1 conv on 28 rows: tile 0 reads input rows 0..14
  // (row -1 is padding, generated on chip), tile 1 reads rows 13..27 —
  // 15 rows each, i.e. one halo row is re-fetched at the seam.
  const LayerTileGeometry geom = layer_tile_geometry(g, 1, array, tile);
  EXPECT_EQ(geom.fetched_rows, 15 + 15);
  EXPECT_EQ(geom.fetched_cols, 15 + 15);
}

TEST(Tiling, SingleTileHasNoHalo) {
  auto g = lcmm::testing::chain3();
  const SystolicArrayConfig array{16, 8, 8};
  const TileConfig tile{64, 28, 28};
  const LayerTileGeometry geom = layer_tile_geometry(g, 1, array, tile);
  EXPECT_EQ(geom.n_h * geom.n_w, 1);
  EXPECT_EQ(geom.fetched_rows, 28);
  EXPECT_EQ(geom.fetched_cols, 28);
}

TEST(Tiling, TileBufferBytesDoubleBuffered) {
  auto g = lcmm::testing::chain3();
  const SystolicArrayConfig array{16, 8, 8};
  const TileConfig tile{32, 14, 14};
  const TileBufferBytes bytes = tile_buffer_bytes(g, array, tile, Precision::kInt8);
  // Input tile: 32ch x 16x16 halo extents x 2 (double buffer).
  EXPECT_EQ(bytes.input, 2 * 32 * 16 * 16);
  // Weight tile: rows x tc x 3x3 kernel x 2.
  EXPECT_EQ(bytes.weight, 2 * 16 * 32 * 9);
  // Output tile: rows x th x tw x 4B accumulators x 2.
  EXPECT_EQ(bytes.output, 2 * 16 * 14 * 14 * 4);
  EXPECT_EQ(bytes.total(), bytes.input + bytes.weight + bytes.output);
}

TEST(Tiling, InvalidConfigThrows) {
  auto g = lcmm::testing::chain3();
  EXPECT_THROW(layer_tile_geometry(g, 0, {0, 0, 0}, {16, 14, 14}),
               std::invalid_argument);
  EXPECT_THROW(layer_tile_geometry(g, 0, {16, 8, 8}, {0, 14, 14}),
               std::invalid_argument);
}

TEST(Dse, CandidatesRespectDspBudget) {
  const Dse dse(FpgaDevice::vu9p(), Precision::kInt8, {});
  const auto arrays = dse.array_candidates();
  ASSERT_FALSE(arrays.empty());
  for (const auto& a : arrays) {
    EXPECT_LE(a.dsp_cost(Precision::kInt8), dse.dsp_budget());
  }
}

TEST(Dse, Fp32ArraysAreSmaller) {
  const Dse dse8(FpgaDevice::vu9p(), Precision::kInt8, {});
  const Dse dse32(FpgaDevice::vu9p(), Precision::kFp32, {});
  std::int64_t best8 = 0, best32 = 0;
  for (const auto& a : dse8.array_candidates()) {
    best8 = std::max(best8, a.macs_per_cycle());
  }
  for (const auto& a : dse32.array_candidates()) {
    best32 = std::max(best32, a.macs_per_cycle());
  }
  EXPECT_GT(best8, 3 * best32);  // fp32 pays ~5x DSPs per MAC
}

TEST(Dse, TileCandidatesFitBramBudget) {
  const FpgaDevice dev = FpgaDevice::vu9p();
  DseOptions opt;
  opt.tile_bram_fraction = 0.15;
  const Dse dse(dev, Precision::kInt8, opt);
  auto g = lcmm::testing::chain3();
  const auto arrays = dse.array_candidates();
  ASSERT_FALSE(arrays.empty());
  const auto tiles = dse.tile_candidates(g, arrays.front());
  ASSERT_FALSE(tiles.empty());
  for (const auto& t : tiles) {
    EXPECT_LE(tile_buffer_bytes(g, arrays.front(), t, Precision::kInt8).total(),
              static_cast<std::int64_t>(0.15 * dev.bram_bytes_total()));
    EXPECT_GE(t.tc, arrays.front().simd);
  }
}

TEST(Dse, ExploreFindsFeasibleDesign) {
  const Dse dse(FpgaDevice::vu9p(), Precision::kInt8, {});
  auto g = lcmm::testing::chain3();
  const DseResult r = dse.explore(g);
  EXPECT_TRUE(r.design.array.valid());
  EXPECT_TRUE(r.design.tile.valid());
  EXPECT_GT(r.objective_latency_s, 0.0);
  EXPECT_GT(r.design.freq_mhz, 0.0);
}

TEST(Dse, ObjectiveOverridesDefault) {
  const Dse dse(FpgaDevice::vu9p(), Precision::kInt8, {});
  auto g = lcmm::testing::chain3();
  // A constant objective makes every candidate equal; explore must still
  // return a valid design.
  const DseResult r =
      dse.explore(g, [](const AcceleratorDesign&) { return 1.0; });
  EXPECT_TRUE(r.design.array.valid());
  EXPECT_DOUBLE_EQ(r.objective_latency_s, 1.0);
}

TEST(Dse, BadOptionsThrow) {
  DseOptions opt;
  opt.dsp_budget_fraction = 0.0;
  EXPECT_THROW(Dse(FpgaDevice::vu9p(), Precision::kInt8, opt),
               std::invalid_argument);
  DseOptions bad_jobs;
  bad_jobs.jobs = -1;
  EXPECT_THROW(Dse(FpgaDevice::vu9p(), Precision::kInt8, bad_jobs),
               std::invalid_argument);
}

TEST(Dse, FallbackMenuKeepsInt8Packing) {
  // Regression: when the DSP budget dwarfs every config (> 2x the largest
  // cost), the dominance prune empties the primary menu and the DSE falls
  // back to "accept anything that fits". The fallback used to re-enumerate
  // without the pack dimension, silently dropping int8 pack=2 candidates.
  FpgaDevice huge = FpgaDevice::vu9p();
  huge.dsp_total = 100000;  // budget 83000 > 2 * 32768 (the costliest config)
  DseOptions opt;
  opt.allow_int8_packing = true;
  const Dse dse(huge, Precision::kInt8, opt);
  const auto arrays = dse.array_candidates();
  ASSERT_FALSE(arrays.empty());
  // Every config fits below half budget, so this menu is the fallback one.
  for (const auto& a : arrays) {
    EXPECT_LE(2 * a.dsp_cost(Precision::kInt8), dse.dsp_budget());
  }
  bool has_packed = false;
  for (const auto& a : arrays) has_packed |= a.pixel_pack == 2;
  EXPECT_TRUE(has_packed) << "fallback menu lost the pack=2 candidates";
}

TEST(Dse, LatencyTiesBreakOnDspCostNotMenuOrder) {
  // Regression: a constant objective makes every candidate tie; the winner
  // must be the cheapest array (then the lowest menu index), not whichever
  // candidate a worker happened to report first.
  auto g = lcmm::testing::chain3();
  int expected_min_cost = 0;
  {
    const Dse probe(FpgaDevice::vu9p(), Precision::kInt8, {});
    bool first = true;
    for (const auto& a : probe.array_candidates()) {
      if (probe.tile_candidates(g, a).empty()) continue;
      const int cost = a.dsp_cost(Precision::kInt8);
      if (first || cost < expected_min_cost) expected_min_cost = cost;
      first = false;
    }
    ASSERT_FALSE(first) << "no feasible candidate";
  }
  const auto constant = [](const AcceleratorDesign&) { return 1.0; };
  SystolicArrayConfig winners[2];
  const int worker_counts[2] = {1, 8};
  for (int w = 0; w < 2; ++w) {
    DseOptions opt;
    opt.jobs = worker_counts[w];
    const Dse dse(FpgaDevice::vu9p(), Precision::kInt8, opt);
    const DseResult r = dse.explore(g, constant);
    EXPECT_EQ(r.design.array.dsp_cost(Precision::kInt8), expected_min_cost)
        << "jobs " << worker_counts[w];
    winners[w] = r.design.array;
  }
  EXPECT_EQ(winners[0].rows, winners[1].rows);
  EXPECT_EQ(winners[0].cols, winners[1].cols);
  EXPECT_EQ(winners[0].simd, winners[1].simd);
  EXPECT_EQ(winners[0].pixel_pack, winners[1].pixel_pack);
}

}  // namespace
}  // namespace lcmm::hw
