#include <gtest/gtest.h>

#include <set>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace lcmm::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| long-name"), std::string::npos);
  // Every line has the same width.
  std::size_t width = s.find('\n');
  for (std::size_t pos = 0; pos < s.size();) {
    const std::size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name", "note"});
  t.add_row({"x,y", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, SeparatorOnlyAffectsTextOutput) {
  Table t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
  // CSV has exactly header + 2 rows.
  int lines = 0;
  for (char c : t.to_csv()) lines += c == '\n';
  EXPECT_EQ(lines, 3);
}

TEST(Formatting, FixedAndPercent) {
  EXPECT_EQ(fmt_fixed(1.3579, 2), "1.36");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
  EXPECT_EQ(fmt_pct(0.856), "86");
  EXPECT_EQ(fmt_pct(0.0), "0");
  EXPECT_EQ(fmt_mebibytes(3.5 * 1024 * 1024, 1), "3.5 MB");
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW(rng.next_int(3, 2), std::invalid_argument);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 4000; ++i) heads += rng.next_bool(0.5);
  EXPECT_NEAR(heads / 4000.0, 0.5, 0.05);
}

TEST(Logging, ThresholdFilters) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Just exercises the path; output goes to stderr.
  LCMM_DEBUG() << "hidden";
  LCMM_ERROR() << "shown";
  set_log_level(old);
}

}  // namespace
}  // namespace lcmm::util
