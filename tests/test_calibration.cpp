// Calibration regression pins: the headline reproduction numbers, asserted
// as ranges. A model or DSE change that silently drifts the evaluation away
// from the paper's shape fails here first. (EXPERIMENTS.md documents the
// targets; update BOTH deliberately when recalibrating.)
#include <gtest/gtest.h>

#include <cmath>

#include "core/lcmm.hpp"
#include "hw/roofline.hpp"
#include "models/models.hpp"
#include "sim/timeline.hpp"

namespace lcmm {
namespace {

struct Pair {
  double umm_s;
  double lcmm_s;
  double speedup() const { return umm_s / lcmm_s; }
};

Pair run_pair(const char* model, hw::Precision p) {
  auto g = models::build_by_name(model);
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), p);
  const auto umm = compiler.compile_umm(g);
  auto plan = compiler.compile(g);
  const auto usim = sim::simulate(g, umm);
  const auto lsim = sim::refine_against_stalls(g, plan);
  return Pair{usim.total_s, lsim.total_s};
}

TEST(Calibration, GeomeanSpeedupNearPaper) {
  // Paper: 1.36x average across the 9 (model, precision) pairs.
  double log_sum = 0.0;
  int n = 0;
  for (const char* m : {"resnet152", "googlenet", "inception_v4"}) {
    for (hw::Precision p : hw::kAllPrecisions) {
      log_sum += std::log(run_pair(m, p).speedup());
      ++n;
    }
  }
  const double geomean = std::exp(log_sum / n);
  EXPECT_GE(geomean, 1.20);
  EXPECT_LE(geomean, 1.50);
}

TEST(Calibration, EveryPairWinsOrTies) {
  for (const char* m : {"resnet152", "googlenet", "inception_v4"}) {
    for (hw::Precision p : hw::kAllPrecisions) {
      EXPECT_GE(run_pair(m, p).speedup(), 0.999)
          << m << " " << hw::to_string(p);
    }
  }
}

TEST(Calibration, ResNetGainsMostAtInt8) {
  // Paper Tab. 1 ordering at 8-bit: RN (1.42) > GN (1.23), RN > IN (1.17).
  const double rn = run_pair("resnet152", hw::Precision::kInt8).speedup();
  const double gn = run_pair("googlenet", hw::Precision::kInt8).speedup();
  const double in = run_pair("inception_v4", hw::Precision::kInt8).speedup();
  EXPECT_GT(rn, gn);
  EXPECT_GT(rn, in);
  EXPECT_GT(rn, 1.3);
}

TEST(Calibration, UmmThroughputMagnitudes) {
  // UMM absolute throughput lands near the paper's Tab. 1 (same order of
  // magnitude and within ~35% for the well-pinned GoogLeNet row).
  auto g = models::build_googlenet();
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8);
  const auto umm = compiler.compile_umm(g);
  const auto sim = sim::simulate(g, umm);
  const double tops = 2.0 * g.total_macs() / sim.total_s / 1e12;
  EXPECT_NEAR(tops, 0.936, 0.936 * 0.35);  // paper row: 0.936 Tops
}

TEST(Calibration, InceptionMemoryBoundFraction) {
  // Paper §2.2: 58% of Inception-v4's conv layers are memory bound under
  // the uniform design. Our model lands lower (44%); pin the band so the
  // phenomenon itself cannot silently vanish.
  auto g = models::build_inception_v4();
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8);
  const auto umm = compiler.compile_umm(g);
  hw::PerfModel model(g, umm.design);
  const auto roofline = characterize_roofline(model);
  EXPECT_GE(roofline.memory_bound_fraction(), 0.30);
  EXPECT_LE(roofline.memory_bound_fraction(), 0.65);
}

TEST(Calibration, SpeedupRisesFrom8To16Bit) {
  // Paper Tab. 1: every network gains more at 16-bit than at 8-bit.
  for (const char* m : {"resnet152", "googlenet", "inception_v4"}) {
    EXPECT_GT(run_pair(m, hw::Precision::kInt16).speedup(),
              run_pair(m, hw::Precision::kInt8).speedup())
        << m;
  }
}

TEST(Calibration, LcmmUramUtilizationHigh) {
  // Paper Tab. 2: LCMM designs fill 80-88% of URAM on the weight-heavy
  // networks (residency promotion).
  auto g = models::build_resnet(152);
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  const auto plan = compiler.compile(g);
  EXPECT_GE(plan.uram_utilization(), 0.60);
  EXPECT_GE(plan.pol(), 0.78);  // paper's lowest POL row
}

TEST(Calibration, LcmmClocksLowerThanUmm) {
  // Tab. 1: LCMM closes ~10 MHz below UMM (URAM routing pressure).
  auto g = models::build_googlenet();
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  const auto umm = compiler.compile_umm(g);
  const auto plan = compiler.compile(g);
  EXPECT_GT(umm.design.freq_mhz, plan.design.freq_mhz);
}

}  // namespace
}  // namespace lcmm
