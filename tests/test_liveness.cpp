#include <gtest/gtest.h>

#include <map>

#include "core/liveness.hpp"
#include "models/models.hpp"
#include "test_graphs.hpp"

namespace lcmm::core {
namespace {

using lcmm::testing::small_design;

LivenessOptions all_layers() {
  LivenessOptions opt;
  opt.include_compute_bound = true;
  return opt;
}

std::map<TensorKey, TensorEntity> by_key(const std::vector<TensorEntity>& v) {
  std::map<TensorKey, TensorEntity> m;
  for (const auto& e : v) m.emplace(e.key, e);
  return m;
}

TEST(Liveness, ValueDefAndLastUse) {
  auto g = lcmm::testing::chain3();
  const auto& layer_b = g.layers()[1];
  // B's output is defined at step 1 and last used by C at step 2.
  EXPECT_EQ(value_def_step(g, layer_b.output), 1);
  EXPECT_EQ(value_last_use_step(g, layer_b.output), 2);
  // The graph input is live before execution.
  EXPECT_EQ(value_def_step(g, g.layers()[0].input), kBeforeExecution);
}

TEST(Liveness, ConcatValueDefIsLastProducer) {
  auto g = lcmm::testing::diamond();
  const auto cat = g.layers()[2].input;  // tail's input is the concat value
  // Producers are left (step 0) and right (step 1).
  EXPECT_EQ(value_def_step(g, cat), 1);
  EXPECT_EQ(value_last_use_step(g, cat), 2);
}

TEST(Liveness, ChainEntityIntervals) {
  auto g = lcmm::testing::chain3();
  hw::PerfModel model(g, small_design());
  const auto entities = by_key(build_feature_entities(model, all_layers()));

  // t_if(B): produced by A (step 0), consumed by B (step 1).
  const auto& if_b = entities.at({1, TensorSource::kInput});
  EXPECT_EQ(if_b.def_step, 0);
  EXPECT_EQ(if_b.last_use_step, 1);

  // t_of(A): defined at step 0, last read by B at step 1.
  const auto& of_a = entities.at({0, TensorSource::kOutput});
  EXPECT_EQ(of_a.def_step, 0);
  EXPECT_EQ(of_a.last_use_step, 1);

  // t_of(C): never read downstream; interval collapses to step 2.
  const auto& of_c = entities.at({2, TensorSource::kOutput});
  EXPECT_EQ(of_c.def_step, 2);
  EXPECT_EQ(of_c.last_use_step, 2);

  // t_if(A) reads the graph input.
  const auto& if_a = entities.at({0, TensorSource::kInput});
  EXPECT_EQ(if_a.def_step, kBeforeExecution);
}

TEST(Liveness, SameValueMultipleConsumersGetSeparateEntities) {
  auto g = lcmm::testing::diamond();
  hw::PerfModel model(g, small_design());
  const auto entities = by_key(build_feature_entities(model, all_layers()));
  // The input value feeds both "left" (0) and "right" (1): two entities,
  // the paper's f1/f2/f4 situation.
  const auto& if_left = entities.at({0, TensorSource::kInput});
  const auto& if_right = entities.at({1, TensorSource::kInput});
  EXPECT_EQ(if_left.value, if_right.value);
  EXPECT_EQ(if_left.bytes, if_right.bytes);
  EXPECT_EQ(if_left.last_use_step, 0);
  EXPECT_EQ(if_right.last_use_step, 1);
}

TEST(Liveness, ResidualEntityCreated) {
  auto g = lcmm::testing::residual_block();
  hw::PerfModel model(g, small_design());
  const auto entities = by_key(build_feature_entities(model, all_layers()));
  const auto& res = entities.at({2, TensorSource::kResidual});
  EXPECT_EQ(res.def_step, kBeforeExecution);  // shortcut is the graph input
  EXPECT_EQ(res.last_use_step, 2);
  EXPECT_GT(res.bytes, 0);
}

TEST(Liveness, BytesScaleWithPrecision) {
  auto g = lcmm::testing::chain3();
  hw::PerfModel m8(g, small_design(hw::Precision::kInt8));
  hw::PerfModel m32(g, small_design(hw::Precision::kFp32));
  const auto e8 = by_key(build_feature_entities(m8, all_layers()));
  const auto e32 = by_key(build_feature_entities(m32, all_layers()));
  for (const auto& [key, entity] : e8) {
    EXPECT_EQ(e32.at(key).bytes, entity.bytes * 4);
  }
}

TEST(Liveness, MemoryBoundFilterShrinksSet) {
  auto g = models::build_inception_v4();
  hw::PerfModel model(g, small_design());
  const auto all = build_feature_entities(model, all_layers());
  const auto bound_only = build_feature_entities(model, LivenessOptions{});
  EXPECT_LT(bound_only.size(), all.size());
  for (const auto& e : bound_only) {
    EXPECT_TRUE(model.timing(e.key.layer).memory_bound());
  }
}

TEST(Liveness, PoolExclusionFilter) {
  auto g = models::build_googlenet();
  hw::PerfModel model(g, small_design());
  LivenessOptions opt = all_layers();
  opt.include_pools = false;
  for (const auto& e : build_feature_entities(model, opt)) {
    EXPECT_TRUE(g.layer(e.key.layer).is_conv());
  }
}

TEST(Liveness, StreamLatenciesComeFromTimingTables) {
  auto g = lcmm::testing::chain3();
  hw::PerfModel model(g, small_design());
  for (const auto& e : build_feature_entities(model, all_layers())) {
    const hw::LayerTiming& t = model.timing(e.key.layer);
    switch (e.key.source) {
      case TensorSource::kInput: EXPECT_DOUBLE_EQ(e.stream_latency_s, t.if_s); break;
      case TensorSource::kResidual: EXPECT_DOUBLE_EQ(e.stream_latency_s, t.res_s); break;
      case TensorSource::kWeight: EXPECT_DOUBLE_EQ(e.stream_latency_s, t.wt_s); break;
      case TensorSource::kOutput: EXPECT_DOUBLE_EQ(e.stream_latency_s, t.of_s); break;
    }
  }
}

TEST(OnChipState, SetAndCount) {
  OnChipState s(4);
  EXPECT_EQ(s.count(), 0);
  s.set({2, TensorSource::kWeight}, true);
  s.set({2, TensorSource::kInput}, true);
  EXPECT_TRUE(s.is_on({2, TensorSource::kWeight}));
  EXPECT_FALSE(s.is_on({1, TensorSource::kWeight}));
  EXPECT_EQ(s.count(), 2);
  s.set({2, TensorSource::kWeight}, false);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.layer_mask(2), 1u << static_cast<int>(TensorSource::kInput));
}

TEST(Entity, OverlapSemantics) {
  TensorEntity a, b;
  a.def_step = 0; a.last_use_step = 2;
  b.def_step = 2; b.last_use_step = 5;
  EXPECT_TRUE(a.overlaps(b));  // closed intervals share step 2
  b.def_step = 3;
  EXPECT_FALSE(a.overlaps(b));
}

}  // namespace
}  // namespace lcmm::core
