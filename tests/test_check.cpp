// Negative tests for the lcmm::check plan verifier: each test corrupts a
// compiled plan in exactly one way and asserts the responsible analysis
// pass reports its stable diagnostic code (and nothing else errors).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/emit.hpp"
#include "models/models.hpp"
#include "sim/timeline.hpp"
#include "test_graphs.hpp"

namespace lcmm::check {
namespace {

using core::AllocationPlan;
using core::TensorSource;

AllocationPlan compiled_plan(const graph::ComputationGraph& g,
                             hw::Precision p = hw::Precision::kInt16) {
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), p);
  return compiler.compile(g);
}

/// Asserts every error-severity diagnostic came from one pass.
void expect_errors_only_from(const CheckReport& report, const char* pass) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.severity != Severity::kError) continue;
    EXPECT_EQ(d.pass, pass) << code_id(d.code) << ": " << d.message;
  }
}

const Diagnostic* find(const CheckReport& report, Code code) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Diagnostic plumbing.
// ---------------------------------------------------------------------------

TEST(Diagnostics, StableIds) {
  EXPECT_EQ(code_id(Code::kPlanShapeMismatch), "LCMM-E001");
  EXPECT_EQ(code_id(Code::kLifespanOverlap), "LCMM-E102");
  EXPECT_EQ(code_id(Code::kPrefetchDeadlineMissed), "LCMM-W204");
  EXPECT_EQ(code_id(Code::kDmaComputeRace), "LCMM-E301");
  EXPECT_EQ(code_id(Code::kStepCapacityExceeded), "LCMM-E406");
  EXPECT_EQ(code_id(Code::kZeroGainGrant), "LCMM-N503");
}

TEST(Diagnostics, CodeTableIsSortedAndComplete) {
  const std::vector<Code>& codes = all_codes();
  ASSERT_FALSE(codes.empty());
  for (std::size_t i = 1; i < codes.size(); ++i) {
    EXPECT_LT(static_cast<int>(codes[i - 1]), static_cast<int>(codes[i]));
  }
  for (Code c : codes) {
    EXPECT_STRNE(code_name(c), "");
    EXPECT_STRNE(code_summary(c), "");
  }
  EXPECT_EQ(default_severity(Code::kPrefetchDeadlineMissed),
            Severity::kWarning);
  EXPECT_EQ(default_severity(Code::kZeroGainGrant), Severity::kNote);
  EXPECT_EQ(default_severity(Code::kDmaComputeRace), Severity::kError);
}

TEST(Diagnostics, FailGating) {
  CheckReport report;
  EXPECT_FALSE(report.fails(false));
  report.set_pass("prefetch");
  report.add(Code::kPrefetchDeadlineMissed, "stalls");
  EXPECT_FALSE(report.fails(false));  // warnings pass the default gate
  EXPECT_TRUE(report.fails(true));    // but not the strict one
  report.add(Code::kLifespanOverlap, "boom");
  EXPECT_TRUE(report.fails(false));
}

TEST(Diagnostics, PassRegistryShape) {
  ASSERT_EQ(check_passes().size(), 6u);
  EXPECT_STREQ(check_passes().front().name, "structure");
}

// ---------------------------------------------------------------------------
// Structure pass.
// ---------------------------------------------------------------------------

TEST(CheckStructure, PlanGraphShapeMismatch) {
  auto g1 = lcmm::testing::chain3();
  auto g2 = models::build_googlenet();
  const CheckReport report = run_checks(g1, compiled_plan(g2));
  ASSERT_TRUE(report.has(Code::kPlanShapeMismatch));
  EXPECT_TRUE(report.fails(false));
  expect_errors_only_from(report, "structure");
}

TEST(CheckStructure, ResidentWeightOnBadLayer) {
  auto g = models::build_googlenet();
  AllocationPlan plan = compiled_plan(g);
  plan.resident_weights.push_back(9999);
  const CheckReport report = run_checks(g, plan);
  ASSERT_TRUE(report.has(Code::kResidentBadLayer));
  expect_errors_only_from(report, "structure");
}

// ---------------------------------------------------------------------------
// Liveness pass (§3.1).
// ---------------------------------------------------------------------------

TEST(CheckLiveness, MergingInterferingTensorsIsCaught) {
  // vgg16 at int16 leaves buffers spilled, giving the corruption an
  // off-chip destination (race/capacity passes stay out of the picture).
  auto g = models::build_by_name("vgg16");
  AllocationPlan plan = compiled_plan(g);

  // Owner of every entity, so the corruption keeps single ownership.
  std::vector<int> owner(plan.entities.size(), -1);
  for (std::size_t b = 0; b < plan.buffers.size(); ++b) {
    for (std::size_t e : plan.buffers[b].members) {
      owner[e] = static_cast<int>(b);
    }
  }
  // Move a feature entity into a *spilled* buffer holding an entity whose
  // lifespan it overlaps. Spilled keeps the race/capacity passes out of the
  // picture; the overlap must be caught by liveness re-derivation alone.
  std::size_t dest = 0, moved = 0;
  bool found = false;
  for (std::size_t b = 0; b < plan.buffers.size() && !found; ++b) {
    if (plan.buffer_on_chip[b] || plan.buffers[b].members.empty()) continue;
    for (std::size_t a : plan.buffers[b].members) {
      for (std::size_t c = 0; c < plan.entities.size() && !found; ++c) {
        if (owner[c] == static_cast<int>(b) || owner[c] < 0) continue;
        if (plan.entities[c].key.source == TensorSource::kWeight) continue;
        if (!plan.entities[a].overlaps(plan.entities[c])) continue;
        dest = b;
        moved = c;
        found = true;
      }
      if (found) break;
    }
  }
  ASSERT_TRUE(found) << "no interfering pair to corrupt";

  core::VirtualBuffer& src = plan.buffers[static_cast<std::size_t>(owner[moved])];
  src.members.erase(std::find(src.members.begin(), src.members.end(), moved));
  plan.buffers[dest].members.push_back(moved);
  plan.buffers[dest].bytes =
      std::max(plan.buffers[dest].bytes, plan.entities[moved].bytes);

  const CheckReport report = run_checks(g, plan);
  const Diagnostic* d = find(report, Code::kLifespanOverlap);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->pass, "liveness");
  EXPECT_EQ(d->location.buffer_id, plan.buffers[dest].id);
  expect_errors_only_from(report, "liveness");
}

TEST(CheckLiveness, RecordedIntervalLieIsCaught) {
  auto g = models::build_googlenet();
  AllocationPlan plan = compiled_plan(g);
  // Shrink a feature entity's recorded lifespan below what the graph
  // derives from its def/use chain.
  bool found = false;
  for (core::TensorEntity& e : plan.entities) {
    if (e.key.source == TensorSource::kWeight) continue;
    if (e.last_use_step <= e.def_step) continue;
    e.last_use_step = e.def_step;
    found = true;
    break;
  }
  ASSERT_TRUE(found);
  const CheckReport report = run_checks(g, plan);
  const Diagnostic* d = find(report, Code::kLivenessIntervalMismatch);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->pass, "liveness");
}

// ---------------------------------------------------------------------------
// Prefetch pass (§3.2).
// ---------------------------------------------------------------------------

TEST(CheckPrefetch, ForwardEdgeIsACycle) {
  auto g = models::build_googlenet();
  AllocationPlan plan = compiled_plan(g);
  std::vector<core::PrefetchEdge> edges = plan.prefetch.edges();
  ASSERT_FALSE(edges.empty());
  // An edge starting at (or after) its target cannot be scheduled: the
  // prefetching dependence graph is no longer a DAG over execution steps.
  core::PrefetchEdge& bad = edges.front();
  bad.start_step = g.step_of(bad.target);
  plan.prefetch = core::PrefetchResult(std::move(edges));

  const CheckReport report = run_checks(g, plan);
  const Diagnostic* d = find(report, Code::kPdgCycle);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->pass, "prefetch");
  EXPECT_EQ(d->location.layer, plan.prefetch.edges().front().target);
}

TEST(CheckPrefetch, MissedDeadlineIsAWarningNotAnError) {
  // resnet50 at int16 streams dozens of weights with fully hidden loads;
  // googlenet holds every weight resident, leaving nothing to corrupt.
  auto g = models::build_by_name("resnet50");
  AllocationPlan plan = compiled_plan(g);
  // Inflate the load time of a streamed on-chip weight past its window:
  // the load can no longer be hidden, so the remainder must stall.
  std::vector<core::PrefetchEdge> edges = plan.prefetch.edges();
  bool found = false;
  for (core::PrefetchEdge& e : edges) {
    if (!plan.state.is_on({e.target, TensorSource::kWeight})) continue;
    if (plan.weight_is_resident(e.target)) continue;
    if (!e.fully_hidden()) continue;
    e.load_seconds = e.window_seconds * 2.0 + 1e-6;
    found = true;
    break;
  }
  ASSERT_TRUE(found) << "no fully hidden streamed weight to corrupt";
  plan.prefetch = core::PrefetchResult(std::move(edges));

  const CheckReport report = run_checks(g, plan);
  const Diagnostic* d = find(report, Code::kPrefetchDeadlineMissed);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->pass, "prefetch");
  EXPECT_EQ(report.num_errors(), 0);
  EXPECT_FALSE(report.fails(false));  // warnings pass the default gate
  EXPECT_TRUE(report.fails(true));
}

// ---------------------------------------------------------------------------
// Race pass. The corrupted plan is coherent to every step-based check —
// intervals, windows, capacity all agree — and only replaying the DMA
// against the simulated clock exposes the overlap.
// ---------------------------------------------------------------------------

TEST(CheckRace, EarlyPrefetchIntoSharedBufferRaces) {
  // resnet50's weight buffers time-multiplex several streamed tensors.
  auto g = models::build_by_name("resnet50");
  AllocationPlan plan = compiled_plan(g);
  const hw::PerfModel model(g, plan.design);
  const std::vector<graph::LayerId>& order = g.topo_order();

  // Find an on-chip buffer time-multiplexing two streamed weights, and
  // start the later load inside the earlier weight's occupancy. The
  // recorded window is updated to match the schedule, so the prefetch
  // pass stays green — only the wall-clock replay can catch this.
  bool found = false;
  for (std::size_t b = 0; b < plan.buffers.size() && !found; ++b) {
    if (!plan.buffer_on_chip[b]) continue;
    std::vector<std::size_t> weights;
    for (std::size_t e : plan.buffers[b].members) {
      const core::TensorEntity& ent = plan.entities[e];
      if (ent.key.source != TensorSource::kWeight) continue;
      if (!plan.state.is_on(ent.key)) continue;
      if (plan.weight_is_resident(ent.key.layer)) continue;
      if (plan.prefetch.edge_for(ent.key.layer) == nullptr) continue;
      weights.push_back(e);
    }
    if (weights.size() < 2) continue;
    std::sort(weights.begin(), weights.end(), [&](std::size_t x, std::size_t y) {
      return g.step_of(plan.entities[x].key.layer) <
             g.step_of(plan.entities[y].key.layer);
    });
    const graph::LayerId first_target = plan.entities[weights.front()].key.layer;
    const graph::LayerId later_target = plan.entities[weights.back()].key.layer;

    std::vector<core::PrefetchEdge> edges = plan.prefetch.edges();
    for (core::PrefetchEdge& e : edges) {
      if (e.target != later_target) continue;
      const int new_start = std::max(0, g.step_of(first_target) - 1);
      if (new_start >= e.start_step && e.start_step != core::kBeforeExecution) {
        break;  // already starts that early; try another buffer
      }
      e.start_step = new_start;
      double window = 0.0;
      for (int s = new_start; s < g.step_of(later_target); ++s) {
        window += model.timing(order[static_cast<std::size_t>(s)]).umm_latency();
      }
      e.window_seconds = window;
      found = true;
      break;
    }
    if (found) plan.prefetch = core::PrefetchResult(std::move(edges));
  }
  ASSERT_TRUE(found) << "no shared streamed-weight buffer to corrupt";

  const CheckReport report = run_checks(g, plan);
  const Diagnostic* d = find(report, Code::kDmaComputeRace);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->pass, "race");
  EXPECT_GE(d->location.buffer_id, 0);
  EXPECT_FALSE(report.has(Code::kPrefetchWindowMismatch));
  EXPECT_FALSE(report.has(Code::kLifespanOverlap));
  expect_errors_only_from(report, "race");
}

// ---------------------------------------------------------------------------
// Capacity pass (§3.3).
// ---------------------------------------------------------------------------

TEST(CheckCapacity, BramOversubscription) {
  auto g = models::build_googlenet();
  AllocationPlan plan = compiled_plan(g);
  plan.bram_used = plan.design.device.bram36_total + 1;
  const CheckReport report = run_checks(g, plan);
  ASSERT_TRUE(report.has(Code::kBramOversubscribed));
  expect_errors_only_from(report, "capacity");
}

TEST(CheckCapacity, InflatedBufferBlowsTheBudget) {
  auto g = models::build_googlenet();
  AllocationPlan plan = compiled_plan(g);
  bool found = false;
  for (std::size_t b = 0; b < plan.buffers.size(); ++b) {
    if (!plan.buffer_on_chip[b] || plan.buffers[b].members.empty()) continue;
    plan.buffers[b].bytes += std::int64_t{512} << 20;  // +512 MiB
    found = true;
    break;
  }
  ASSERT_TRUE(found);
  const CheckReport report = run_checks(g, plan);
  const Diagnostic* d = find(report, Code::kDnnkCapacityExceeded);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->pass, "capacity");
  // The same corruption oversubscribes some execution step too.
  const Diagnostic* step = find(report, Code::kStepCapacityExceeded);
  ASSERT_NE(step, nullptr);
  EXPECT_GE(step->location.step, 0);
  expect_errors_only_from(report, "capacity");
}

// ---------------------------------------------------------------------------
// DNNK pass (§3.3).
// ---------------------------------------------------------------------------

TEST(CheckDnnk, BaselineLatencyLieIsCaught) {
  auto g = models::build_googlenet();
  AllocationPlan plan = compiled_plan(g);
  plan.umm_latency_s *= 2.0;
  const CheckReport report = run_checks(g, plan);
  const Diagnostic* d = find(report, Code::kBaselineLatencyMismatch);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->pass, "dnnk");
  expect_errors_only_from(report, "dnnk");
}

TEST(CheckDnnk, LatencyBelowEq1BoundIsCaught) {
  auto g = models::build_googlenet();
  AllocationPlan plan = compiled_plan(g);
  plan.est_latency_s = 0.0;  // faster than Eq. 1 allows for this state
  const CheckReport report = run_checks(g, plan);
  ASSERT_TRUE(report.has(Code::kLatencyBelowBound));
  expect_errors_only_from(report, "dnnk");
}

// ---------------------------------------------------------------------------
// Emitters.
// ---------------------------------------------------------------------------

TEST(CheckEmit, TextJsonAndSarif) {
  auto g = lcmm::testing::chain3();
  AllocationPlan plan = compiled_plan(g, hw::Precision::kInt8);
  CheckedPlan run;
  run.label = {"chain3", "lcmm", "int8"};
  run.report = run_checks(g, plan);
  EXPECT_EQ(run.report.num_errors(), 0);

  const std::string text = to_text(run.report, run.label);
  EXPECT_NE(text.find("chain3/lcmm/int8"), std::string::npos);

  const std::string json = to_json(run.report, run.label).dump();
  EXPECT_NE(json.find("lcmm-check-v1"), std::string::npos);

  const std::vector<CheckedPlan> runs{run};
  const std::string sarif = to_sarif(runs).dump();
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  // The full rule table rides along even for a clean run.
  EXPECT_NE(sarif.find("LCMM-E102"), std::string::npos);
}

TEST(CheckEmit, DiagnosticsCarryTheirLocation) {
  auto g = models::build_googlenet();
  AllocationPlan plan = compiled_plan(g);
  plan.resident_weights.push_back(9999);
  CheckedPlan run;
  run.label = {"googlenet", "lcmm", "int16"};
  run.report = run_checks(g, plan);
  const std::string text = to_text(run.report, run.label);
  EXPECT_NE(text.find("LCMM-E007"), std::string::npos);
  const std::vector<CheckedPlan> runs{run};
  const std::string sarif = to_sarif(runs).dump();
  EXPECT_NE(sarif.find("\"error\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Integration: every registered model, both designs, checks clean.
// ---------------------------------------------------------------------------

TEST(CheckIntegration, AllRegisteredModelsCheckClean) {
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8);
  for (const std::string& name : models::model_names()) {
    auto g = models::build_by_name(name);
    const AllocationPlan umm = compiler.compile_umm(g);
    const CheckReport umm_report = run_checks(g, umm);
    EXPECT_EQ(umm_report.num_errors(), 0)
        << name << "/umm: " << to_text(umm_report);

    AllocationPlan plan = compiler.compile(g);
    sim::refine_against_stalls(g, plan);
    const CheckReport report = run_checks(g, plan);
    EXPECT_EQ(report.num_errors(), 0) << name << "/lcmm: " << to_text(report);
  }
}

TEST(CheckIntegration, RandomGraphsCheckClean) {
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8);
  for (std::uint64_t seed = 40; seed < 46; ++seed) {
    auto g = models::random_graph(seed);
    const AllocationPlan plan = compiler.compile(g);
    const CheckReport report = run_checks(g, plan);
    EXPECT_EQ(report.num_errors(), 0)
        << "seed " << seed << ": " << to_text(report);
  }
}

}  // namespace
}  // namespace lcmm::check
