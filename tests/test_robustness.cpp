// Robustness sweep: degenerate and adversarial graphs through the entire
// pipeline (DSE -> passes -> DNNK -> placement -> simulation). Nothing here
// checks performance; everything checks that invariants hold at the edges.
#include <gtest/gtest.h>

#include "core/lcmm.hpp"
#include "models/models.hpp"
#include "sim/memory_trace.hpp"
#include "sim/timeline.hpp"
#include "test_graphs.hpp"

namespace lcmm {
namespace {

void run_full_pipeline(const graph::ComputationGraph& g) {
  core::LcmmOptions opt;
  opt.liveness.include_compute_bound = true;
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8, opt);
  const auto umm = compiler.compile_umm(g);
  auto plan = compiler.compile(g);
  const auto usim = sim::simulate(g, umm);
  const auto lsim = sim::refine_against_stalls(g, plan);
  EXPECT_GT(usim.total_s, 0.0);
  EXPECT_LE(lsim.total_s, usim.total_s * 1.001);
  const auto trace = sim::build_memory_trace(g, plan, lsim);
  EXPECT_LE(trace.on_chip_bytes, trace.device_sram_bytes);
}

TEST(Robustness, SingleLayerNetwork) {
  graph::ComputationGraph g("one");
  auto in = g.add_input("in", {3, 8, 8});
  g.add_conv("only", in, {4, 3, 3, 1, 1, 1});
  g.validate();
  run_full_pipeline(g);
}

TEST(Robustness, OneByOneSpatialExtent) {
  graph::ComputationGraph g("pixel");
  auto in = g.add_input("in", {256, 1, 1});
  auto x = g.add_conv("a", in, {512, 1, 1, 1, 0, 0});
  g.add_conv("b", x, {128, 1, 1, 1, 0, 0});
  g.validate();
  run_full_pipeline(g);
}

TEST(Robustness, VeryDeepChain) {
  graph::ComputationGraph g("deep");
  auto x = g.add_input("in", {16, 8, 8});
  for (int i = 0; i < 300; ++i) {
    x = g.add_conv("c" + std::to_string(i), x, {16, 3, 3, 1, 1, 1});
  }
  g.validate();
  run_full_pipeline(g);
}

TEST(Robustness, WideFanOut) {
  // One value consumed by 16 branches, all concatenated: stresses the
  // per-use entity handling (16 t_if entities over one value).
  graph::ComputationGraph g("fan");
  auto in = g.add_input("in", {64, 14, 14});
  std::vector<graph::ValueId> parts;
  for (int i = 0; i < 16; ++i) {
    parts.push_back(
        g.add_conv("b" + std::to_string(i), in, {8, 1, 1, 1, 0, 0}));
  }
  auto cat = g.add_concat("cat", parts);
  g.add_conv("tail", cat, {32, 1, 1, 1, 0, 0});
  g.validate();
  run_full_pipeline(g);
}

TEST(Robustness, HugeChannelCounts) {
  graph::ComputationGraph g("huge");
  auto in = g.add_input("in", {4096, 4, 4});
  g.add_conv("squeeze", in, {4096, 1, 1, 1, 0, 0});
  g.validate();
  run_full_pipeline(g);
}

TEST(Robustness, TinyDeviceStillCompiles) {
  auto g = models::build_squeezenet();
  core::LcmmCompiler compiler(hw::FpgaDevice::zu9eg(), hw::Precision::kInt8);
  const auto umm = compiler.compile_umm(g);
  auto plan = compiler.compile(g);
  const auto usim = sim::simulate(g, umm);
  const auto lsim = sim::refine_against_stalls(g, plan);
  EXPECT_LE(lsim.total_s, usim.total_s * 1.001);
  // ZU9EG has no URAM: every buffer must have landed in BRAM.
  for (const auto& pb : plan.physical) {
    EXPECT_EQ(pb.sram.pool, mem::SramPool::kBram);
  }
}

TEST(Robustness, ZeroCapacityBudget) {
  auto g = models::build_squeezenet();
  core::LcmmOptions opt;
  opt.sram_capacity_fraction = 1e-9;  // effectively zero R_sram
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8, opt);
  auto plan = compiler.compile(g);
  // Nothing fits: the compiler degrades to (or falls back to) uniform.
  EXPECT_LE(plan.tensor_buffer_bytes,
            static_cast<std::int64_t>(plan.buffers.size()) *
                mem::SramPools::kUramBytes);
  EXPECT_LE(plan.est_latency_s, plan.umm_latency_s * (1 + 1e-9));
}

TEST(Robustness, StridedEverything) {
  graph::ComputationGraph g("strided");
  auto x = g.add_input("in", {3, 127, 127});  // odd extents
  x = g.add_conv("a", x, {32, 5, 5, 3, 2, 2});
  x = g.add_conv("b", x, {64, 3, 3, 2, 0, 0});
  x = g.add_pool("p", x, {graph::PoolType::kMax, 3, 2, 1});
  g.add_conv("c", x, {16, 1, 1, 1, 0, 0});
  g.validate();
  run_full_pipeline(g);
}

TEST(Robustness, AsymmetricKernelsAndPads) {
  graph::ComputationGraph g("asym");
  auto x = g.add_input("in", {32, 9, 33});
  x = g.add_conv("a", x, {32, 1, 7, 1, 0, 3});
  x = g.add_conv("b", x, {32, 7, 1, 1, 3, 0});
  g.validate();
  run_full_pipeline(g);
}

TEST(Robustness, DeterministicCompilation) {
  // Same inputs -> byte-identical plans (ordering discipline everywhere).
  auto g = models::build_googlenet();
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  const auto a = compiler.compile(g);
  const auto b = compiler.compile(g);
  EXPECT_EQ(a.est_latency_s, b.est_latency_s);
  EXPECT_EQ(a.buffer_on_chip, b.buffer_on_chip);
  EXPECT_EQ(a.tensor_buffer_bytes, b.tensor_buffer_bytes);
  EXPECT_EQ(a.resident_weights, b.resident_weights);
  ASSERT_EQ(a.entities.size(), b.entities.size());
  for (std::size_t i = 0; i < a.entities.size(); ++i) {
    EXPECT_EQ(a.entities[i].key, b.entities[i].key);
  }
}

}  // namespace
}  // namespace lcmm
