#include <gtest/gtest.h>

#include "hw/perf_model.hpp"
#include "hw/roofline.hpp"
#include "models/models.hpp"
#include "test_graphs.hpp"

namespace lcmm::hw {
namespace {

using lcmm::testing::small_design;

TEST(LayerTiming, Eq1IsMaxOfTerms) {
  LayerTiming t;
  t.compute_s = 5.0;
  t.if_s = 3.0;
  t.res_s = 1.0;
  t.wt_s = 7.0;
  t.of_s = 2.0;
  EXPECT_DOUBLE_EQ(t.umm_latency(), 7.0);
  EXPECT_DOUBLE_EQ(t.max_transfer(), 7.0);
  EXPECT_TRUE(t.memory_bound());
  t.wt_s = 1.0;
  EXPECT_DOUBLE_EQ(t.umm_latency(), 5.0);
  EXPECT_FALSE(t.memory_bound());
  // Residual shares the input interface: terms add.
  t.if_s = 4.5;
  EXPECT_DOUBLE_EQ(t.max_transfer(), 5.5);
  EXPECT_TRUE(t.memory_bound());
}

TEST(PerfModel, CyclesCoverNominalMacs) {
  auto g = lcmm::testing::chain3();
  PerfModel model(g, small_design());
  for (const auto& l : g.layers()) {
    const LayerTiming& t = model.timing(l.id);
    // The array can never beat one MAC per DSP per cycle.
    EXPECT_GE(t.cycles * model.design().array.macs_per_cycle(), t.nominal_macs)
        << l.name;
    EXPECT_GT(t.compute_s, 0.0);
  }
}

TEST(PerfModel, TrafficLowerBounds) {
  auto g = lcmm::testing::chain3();
  PerfModel model(g, small_design());
  const int bpe = bytes_per_elem(model.design().precision);
  for (const auto& l : g.layers()) {
    const LayerTiming& t = model.timing(l.id);
    const auto& in = g.input_shape(l.id);
    // Inputs are fetched at least once, outputs stored exactly once.
    EXPECT_GE(t.if_bytes, static_cast<double>(in.elems() * bpe)) << l.name;
    EXPECT_DOUBLE_EQ(t.of_bytes,
                     static_cast<double>(g.own_output_shape(l.id).elems() * bpe));
    if (l.is_conv()) {
      EXPECT_GE(t.wt_bytes,
                static_cast<double>(g.layer_weight_elems(l.id) * bpe));
    } else {
      EXPECT_DOUBLE_EQ(t.wt_bytes, 0.0);
    }
  }
}

TEST(PerfModel, ResidualStreamCharged) {
  auto g = lcmm::testing::residual_block();
  PerfModel model(g, small_design());
  const auto& expand = g.layers()[2];
  ASSERT_TRUE(expand.has_residual());
  const LayerTiming& t = model.timing(expand.id);
  EXPECT_GT(t.res_bytes, 0.0);
  EXPECT_GT(t.res_s, 0.0);
  // Non-residual layers carry no residual stream.
  EXPECT_DOUBLE_EQ(model.timing(0).res_bytes, 0.0);
}

TEST(PerfModel, MoreRowsFewerInputTrips) {
  auto g = lcmm::testing::chain3();
  AcceleratorDesign d16 = small_design();
  AcceleratorDesign d32 = small_design();
  d32.array.rows = 32;
  PerfModel m16(g, d16), m32(g, d32);
  // Layer C has 128 output channels: 8 trips at 16 rows, 4 at 32.
  EXPECT_GT(m16.timing(2).if_bytes, m32.timing(2).if_bytes);
}

TEST(PerfModel, PrecisionScalesTraffic) {
  auto g = lcmm::testing::chain3();
  AcceleratorDesign d8 = small_design(Precision::kInt8);
  AcceleratorDesign d16 = small_design(Precision::kInt16);
  PerfModel m8(g, d8), m16(g, d16);
  for (const auto& l : g.layers()) {
    EXPECT_NEAR(m16.timing(l.id).if_bytes / m8.timing(l.id).if_bytes, 2.0, 1e-9);
    // Same array, same cycle count: compute unchanged.
    EXPECT_EQ(m16.timing(l.id).cycles, m8.timing(l.id).cycles);
  }
}

TEST(PerfModel, HigherFrequencyReducesCompute) {
  auto g = lcmm::testing::chain3();
  AcceleratorDesign slow = small_design();
  AcceleratorDesign fast = small_design();
  slow.freq_mhz = 100.0;
  fast.freq_mhz = 200.0;
  PerfModel ms(g, slow), mf(g, fast);
  for (const auto& l : g.layers()) {
    EXPECT_NEAR(ms.timing(l.id).compute_s / mf.timing(l.id).compute_s, 2.0, 1e-9);
    // Transfers are unaffected by the fabric clock.
    EXPECT_DOUBLE_EQ(ms.timing(l.id).if_s, mf.timing(l.id).if_s);
  }
}

TEST(PerfModel, TotalsAggregate) {
  auto g = lcmm::testing::chain3();
  PerfModel model(g, small_design());
  double sum = 0.0;
  for (const auto& l : g.layers()) sum += model.timing(l.id).umm_latency();
  EXPECT_DOUBLE_EQ(model.umm_total_latency(), sum);
  EXPECT_DOUBLE_EQ(model.total_nominal_ops(), 2.0 * g.total_macs());
  EXPECT_GT(model.ops_per_sec(sum), 0.0);
  EXPECT_THROW(model.ops_per_sec(0.0), std::invalid_argument);
}

TEST(PerfModel, InvalidDesignThrows) {
  auto g = lcmm::testing::chain3();
  AcceleratorDesign d = small_design();
  d.freq_mhz = 0.0;
  EXPECT_THROW(PerfModel(g, d), std::invalid_argument);
  d = small_design();
  d.array.rows = 0;
  EXPECT_THROW(PerfModel(g, d), std::invalid_argument);
}

TEST(PerfModel, PoolLayersHaveNoWeights) {
  auto g = models::build_googlenet();
  PerfModel model(g, small_design());
  for (const auto& l : g.layers()) {
    if (!l.is_conv()) {
      EXPECT_DOUBLE_EQ(model.timing(l.id).wt_bytes, 0.0) << l.name;
      EXPECT_GT(model.timing(l.id).if_bytes, 0.0) << l.name;
    }
  }
}

TEST(Roofline, CountsConvLayersOnly) {
  auto g = models::build_googlenet();
  PerfModel model(g, small_design());
  const RooflineSummary summary = characterize_roofline(model);
  EXPECT_EQ(static_cast<int>(summary.points.size()), g.num_conv_layers());
  EXPECT_GT(summary.peak_ops_per_sec, 0.0);
}

TEST(Roofline, MemoryBoundPointsSitBelowCompute) {
  auto g = models::build_inception_v4();
  PerfModel model(g, small_design());
  const RooflineSummary summary = characterize_roofline(model);
  int checked = 0;
  for (const auto& pt : summary.points) {
    EXPECT_GT(pt.intensity_ops_per_byte, 0.0);
    EXPECT_LE(pt.attainable_ops_per_sec, summary.peak_ops_per_sec * 1.0001);
    if (pt.memory_bound) {
      const LayerTiming& t = model.timing(pt.layer);
      EXPECT_GT(t.max_transfer(), t.compute_s);
      ++checked;
    }
  }
  EXPECT_EQ(checked, summary.num_memory_bound);
  EXPECT_GE(summary.num_memory_bound, summary.num_above_threshold);
}

TEST(Roofline, MemoryBoundFraction) {
  auto g = models::build_inception_v4();
  PerfModel model(g, small_design());
  const RooflineSummary s = characterize_roofline(model);
  EXPECT_NEAR(s.memory_bound_fraction(),
              static_cast<double>(s.num_memory_bound) / s.points.size(), 1e-12);
}

}  // namespace
}  // namespace lcmm::hw
