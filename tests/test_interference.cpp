#include <gtest/gtest.h>

#include "core/interference.hpp"

namespace lcmm::core {
namespace {

TensorEntity make_entity(int layer, TensorSource src, std::int64_t bytes,
                         int def, int last) {
  TensorEntity e;
  e.key = {layer, src};
  e.name = "t" + std::to_string(layer);
  e.bytes = bytes;
  e.def_step = def;
  e.last_use_step = last;
  return e;
}

std::vector<TensorEntity> three_entities() {
  return {make_entity(0, TensorSource::kOutput, 100, 0, 2),
          make_entity(1, TensorSource::kInput, 200, 1, 3),
          make_entity(2, TensorSource::kInput, 50, 4, 5)};
}

TEST(Interference, EdgesFromOverlap) {
  InterferenceGraph g(three_entities());
  EXPECT_TRUE(g.interferes(0, 1));   // [0,2] vs [1,3]
  EXPECT_FALSE(g.interferes(0, 2));  // [0,2] vs [4,5]
  EXPECT_FALSE(g.interferes(1, 2));  // [1,3] vs [4,5]
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Interference, AdjacencyIsExactlyUpperTriangle) {
  // Regression: the dense adjacency used to allocate n*(n+1)/2 cells, one
  // superfluous diagonal's worth — the upper triangle above the diagonal
  // needs exactly n*(n-1)/2 (and 0, not 1, cells for a single entity).
  EXPECT_EQ(InterferenceGraph(three_entities()).adjacency_cells(), 3u);
  EXPECT_EQ(InterferenceGraph({}).adjacency_cells(), 0u);
  EXPECT_EQ(
      InterferenceGraph({make_entity(0, TensorSource::kOutput, 100, 0, 2)})
          .adjacency_cells(),
      0u);
  std::vector<TensorEntity> many;
  for (int i = 0; i < 17; ++i) {
    many.push_back(make_entity(i, TensorSource::kOutput, 64, i, i + 2));
  }
  EXPECT_EQ(InterferenceGraph(many).adjacency_cells(), 17u * 16u / 2u);
}

TEST(Interference, SelfAlwaysInterferes) {
  InterferenceGraph g(three_entities());
  EXPECT_TRUE(g.interferes(1, 1));
}

TEST(Interference, SymmetricQueries) {
  InterferenceGraph g(three_entities());
  for (std::size_t a = 0; a < g.size(); ++a) {
    for (std::size_t b = 0; b < g.size(); ++b) {
      EXPECT_EQ(g.interferes(a, b), g.interferes(b, a));
    }
  }
}

TEST(Interference, FalseEdgeAdds) {
  InterferenceGraph g(three_entities());
  EXPECT_FALSE(g.interferes(1, 2));
  g.add_false_edge(1, 2);
  EXPECT_TRUE(g.interferes(1, 2));
  EXPECT_TRUE(g.is_false_edge(1, 2));
  EXPECT_TRUE(g.is_false_edge(2, 1));
  EXPECT_EQ(g.num_false_edges(), 1u);
  // Idempotent; never downgrades a real edge.
  g.add_false_edge(1, 2);
  EXPECT_EQ(g.num_false_edges(), 1u);
  g.add_false_edge(0, 1);
  EXPECT_FALSE(g.is_false_edge(0, 1));  // real edge stays real
}

TEST(Interference, DegreeCountsBothKinds) {
  InterferenceGraph g(three_entities());
  EXPECT_EQ(g.degree(0), 1u);
  g.add_false_edge(0, 2);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Interference, OutOfRangeThrows) {
  InterferenceGraph g(three_entities());
  EXPECT_THROW((void)g.interferes(0, 7), std::out_of_range);
  EXPECT_THROW(g.add_false_edge(3, 3), std::out_of_range);
}

TEST(Interference, EmptyGraph) {
  InterferenceGraph g({});
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Interference, BeforeExecutionIntervalsOverlapStepZero) {
  std::vector<TensorEntity> v = {
      make_entity(0, TensorSource::kInput, 10, kBeforeExecution, 0),
      make_entity(1, TensorSource::kInput, 10, 0, 1),
      make_entity(2, TensorSource::kWeight, 10, kBeforeExecution, kBeforeExecution)};
  InterferenceGraph g(std::move(v));
  EXPECT_TRUE(g.interferes(0, 1));
  EXPECT_TRUE(g.interferes(0, 2));   // both live before execution
  EXPECT_FALSE(g.interferes(1, 2));  // [-1,-1] vs [0,1]
}

}  // namespace
}  // namespace lcmm::core
