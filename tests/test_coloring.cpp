#include <gtest/gtest.h>

#include "core/coloring.hpp"
#include "core/virtual_buffer.hpp"
#include "util/rng.hpp"

namespace lcmm::core {
namespace {

TensorEntity make_entity(int id, std::int64_t bytes, int def, int last) {
  TensorEntity e;
  e.key = {id, TensorSource::kInput};
  e.name = "t" + std::to_string(id);
  e.bytes = bytes;
  e.def_step = def;
  e.last_use_step = last;
  return e;
}

TEST(Coloring, DisjointIntervalsShareOneBuffer) {
  InterferenceGraph g({make_entity(0, 100, 0, 1), make_entity(1, 80, 2, 3),
                       make_entity(2, 60, 4, 5)});
  const ColoringResult r = color_min_total_size(g);
  EXPECT_TRUE(coloring_is_valid(g, r));
  EXPECT_EQ(r.num_colors, 1);
  EXPECT_EQ(r.total_bytes, 100);  // buffer sized by the largest member
}

TEST(Coloring, FullyOverlappingNeedsOneColorEach) {
  InterferenceGraph g({make_entity(0, 100, 0, 9), make_entity(1, 80, 0, 9),
                       make_entity(2, 60, 0, 9)});
  const ColoringResult r = color_min_total_size(g);
  EXPECT_TRUE(coloring_is_valid(g, r));
  EXPECT_EQ(r.num_colors, 3);
  EXPECT_EQ(r.total_bytes, 240);
}

TEST(Coloring, PaperExampleSixTensorsFourBuffers) {
  // Mirrors Fig. 5: 6 feature tensors, two of which (f2, f6) have disjoint
  // lifespans and share; the rest conflict pairwise.
  std::vector<TensorEntity> v = {
      make_entity(1, 200, 0, 3),  // f1
      make_entity(2, 200, 0, 1),  // f2
      make_entity(4, 150, 0, 3),  // f4
      make_entity(6, 100, 2, 2),  // f6 — disjoint from f2
      make_entity(7, 120, 1, 3),  // f7
      make_entity(8, 90, 3, 4),   // f8
  };
  InterferenceGraph g(std::move(v));
  const ColoringResult r = color_min_total_size(g);
  EXPECT_TRUE(coloring_is_valid(g, r));
  // f2 and f6 share: at most 5 buffers; f8 also only conflicts with f1/f4/f7.
  EXPECT_LE(r.num_colors, 5);
  EXPECT_EQ(r.color_of[1], r.color_of[3]);  // f2 with f6
}

TEST(Coloring, ValidityCheckerCatchesConflicts) {
  InterferenceGraph g({make_entity(0, 10, 0, 5), make_entity(1, 10, 0, 5)});
  ColoringResult bad;
  bad.color_of = {0, 0};
  bad.num_colors = 1;
  EXPECT_FALSE(coloring_is_valid(g, bad));
  bad.color_of = {0, 7};
  EXPECT_FALSE(coloring_is_valid(g, bad));  // out-of-range color
  bad.color_of = {0};
  EXPECT_FALSE(coloring_is_valid(g, bad));  // size mismatch
}

TEST(Coloring, EmptyGraphYieldsNoColors) {
  InterferenceGraph g({});
  const ColoringResult r = color_min_total_size(g);
  EXPECT_EQ(r.num_colors, 0);
  EXPECT_EQ(r.total_bytes, 0);
}

TEST(Coloring, OptimalMatchesGreedyOnEasyCases) {
  InterferenceGraph g({make_entity(0, 100, 0, 1), make_entity(1, 80, 2, 3)});
  const ColoringResult greedy = color_min_total_size(g);
  const ColoringResult opt = color_optimal_small(g);
  EXPECT_EQ(greedy.total_bytes, opt.total_bytes);
}

TEST(Coloring, GreedyNeverBeatenByMoreThanOptimal) {
  // Random small instances: greedy total size must be >= optimal and both
  // must be valid. (The greedy can be suboptimal; it must never be better.)
  util::Rng rng(1234);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<TensorEntity> v;
    const int n = 2 + static_cast<int>(rng.next_below(7));
    for (int i = 0; i < n; ++i) {
      const int def = static_cast<int>(rng.next_below(6));
      const int len = static_cast<int>(rng.next_below(4));
      v.push_back(make_entity(i, 10 + static_cast<std::int64_t>(rng.next_below(200)),
                              def, def + len));
    }
    InterferenceGraph g(std::move(v));
    const ColoringResult greedy = color_min_total_size(g);
    const ColoringResult opt = color_optimal_small(g);
    EXPECT_TRUE(coloring_is_valid(g, greedy));
    EXPECT_TRUE(coloring_is_valid(g, opt));
    EXPECT_GE(greedy.total_bytes, opt.total_bytes);
    // Greedy heuristic stays within 2x of optimal on these tiny cases.
    EXPECT_LE(greedy.total_bytes, 2 * opt.total_bytes);
  }
}

TEST(Coloring, OptimalRejectsLargeGraphs) {
  std::vector<TensorEntity> v;
  for (int i = 0; i < 20; ++i) v.push_back(make_entity(i, 10, 0, 1));
  InterferenceGraph g(std::move(v));
  EXPECT_THROW(color_optimal_small(g, 12), std::invalid_argument);
}

TEST(VirtualBuffers, GroupByColorWithMaxSize) {
  InterferenceGraph g({make_entity(0, 100, 0, 1), make_entity(1, 80, 2, 3),
                       make_entity(2, 60, 0, 9)});
  const ColoringResult r = color_min_total_size(g);
  const auto buffers = build_virtual_buffers(g, r);
  EXPECT_EQ(static_cast<int>(buffers.size()), r.num_colors);
  EXPECT_EQ(total_buffer_bytes(buffers), r.total_bytes);
  std::size_t members = 0;
  for (const auto& b : buffers) {
    members += b.members.size();
    std::int64_t max_bytes = 0;
    int lo = 1 << 30, hi = -(1 << 30);
    for (std::size_t e : b.members) {
      max_bytes = std::max(max_bytes, g.entities()[e].bytes);
      lo = std::min(lo, g.entities()[e].def_step);
      hi = std::max(hi, g.entities()[e].last_use_step);
    }
    EXPECT_EQ(b.bytes, max_bytes);
    EXPECT_EQ(b.start_step, lo);
    EXPECT_EQ(b.end_step, hi);
  }
  EXPECT_EQ(members, g.size());
}

TEST(VirtualBuffers, MismatchedColoringThrows) {
  InterferenceGraph g({make_entity(0, 10, 0, 1)});
  ColoringResult r;
  r.color_of = {0, 1};
  r.num_colors = 2;
  EXPECT_THROW(build_virtual_buffers(g, r), std::invalid_argument);
}

}  // namespace
}  // namespace lcmm::core
