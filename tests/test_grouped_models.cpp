#include <gtest/gtest.h>

#include "core/lcmm.hpp"
#include "hw/perf_model.hpp"
#include "models/models.hpp"
#include "sim/timeline.hpp"
#include "test_graphs.hpp"

namespace lcmm {
namespace {

using graph::ConvParams;
using graph::FeatureShape;

TEST(GroupedConv, ShapeAndWeights) {
  graph::ComputationGraph g("t");
  auto in = g.add_input("in", {64, 14, 14});
  ConvParams grouped{128, 3, 3, 1, 1, 1};
  grouped.groups = 4;
  auto out = g.add_conv("g4", in, grouped);
  EXPECT_EQ(g.value(out).shape, (FeatureShape{128, 14, 14}));
  // Weights: 128 x (64/4) x 3 x 3.
  EXPECT_EQ(g.layer_weight_elems(0), 128 * 16 * 9);
  // MACs: out elems x (C/g) x K^2.
  EXPECT_EQ(g.layer_macs(0), static_cast<std::int64_t>(128) * 14 * 14 * 16 * 9);
}

TEST(GroupedConv, DepthwiseIsGroupsEqualsChannels) {
  graph::ComputationGraph g("t");
  auto in = g.add_input("in", {32, 28, 28});
  ConvParams dw{32, 3, 3, 1, 1, 1};
  dw.groups = 32;
  g.add_conv("dw", in, dw);
  EXPECT_EQ(g.layer_weight_elems(0), 32 * 9);
  EXPECT_EQ(g.layer_macs(0), static_cast<std::int64_t>(32) * 28 * 28 * 9);
}

TEST(GroupedConv, InvalidGroupingThrows) {
  graph::ComputationGraph g("t");
  auto in = g.add_input("in", {30, 8, 8});
  ConvParams bad{64, 1, 1, 1, 0, 0};
  bad.groups = 4;  // 30 % 4 != 0
  EXPECT_THROW(g.add_conv("bad", in, bad), std::invalid_argument);
  ConvParams bad2{30, 1, 1, 1, 0, 0};
  bad2.groups = 4;  // 30 % 4 != 0 on the output side too
  EXPECT_THROW(g.add_conv("bad2", in, bad2), std::invalid_argument);
}

TEST(GroupedConv, GeometryUsesGroupChannels) {
  graph::ComputationGraph g("t");
  auto in = g.add_input("in", {64, 28, 28});
  ConvParams dw{64, 3, 3, 1, 1, 1};
  dw.groups = 64;
  g.add_conv("dw", in, dw);
  const hw::SystolicArrayConfig array{16, 8, 8};
  const hw::TileConfig tile{32, 14, 14};
  const auto geom = layer_tile_geometry(g, 0, array, tile);
  EXPECT_EQ(geom.group_channels, 1);
  EXPECT_EQ(geom.n_c, 1);
  // An m-tile of 16 output channels touches exactly its 16 input channels.
  EXPECT_EQ(geom.channels_per_mtile, 16);
  EXPECT_EQ(geom.n_m, 4);
}

TEST(GroupedConv, DepthwiseReadsInputOnceTotal) {
  graph::ComputationGraph g("t");
  auto in = g.add_input("in", {64, 28, 28});
  ConvParams dw{64, 3, 3, 1, 1, 1};
  dw.groups = 64;
  g.add_conv("dw", in, dw);
  hw::PerfModel model(g, testing::small_design());
  const auto& t = model.timing(0);
  const double once = 64.0 * 28 * 28;  // input elems, int8
  // Depthwise: no output-channel reload factor (each channel read once,
  // modulo spatial halo).
  EXPECT_LT(t.if_bytes, once * 1.3);
  EXPECT_GE(t.if_bytes, once);
}

TEST(GroupedConv, DenseEquivalentWhenGroupsIsOne) {
  graph::ComputationGraph a("a"), b("b");
  auto ia = a.add_input("in", {64, 14, 14});
  auto ib = b.add_input("in", {64, 14, 14});
  ConvParams dense{128, 3, 3, 1, 1, 1};
  ConvParams g1 = dense;
  g1.groups = 1;
  a.add_conv("c", ia, dense);
  b.add_conv("c", ib, g1);
  EXPECT_EQ(a.layer_macs(0), b.layer_macs(0));
  hw::PerfModel ma(a, testing::small_design());
  hw::PerfModel mb(b, testing::small_design());
  EXPECT_DOUBLE_EQ(ma.timing(0).if_bytes, mb.timing(0).if_bytes);
  EXPECT_EQ(ma.timing(0).cycles, mb.timing(0).cycles);
}

TEST(MobileNet, Census) {
  auto g = models::build_mobilenet_v1();
  // conv1 + 13 x (dw + pw) + fc = 28 conv layers.
  EXPECT_EQ(g.num_conv_layers(), 28);
  EXPECT_NEAR(static_cast<double>(g.total_macs()) / 1e9, 0.57, 0.06);
  EXPECT_NEAR(static_cast<double>(g.total_weight_elems()) / 1e6, 4.2, 0.4);
  // Final feature map before the classifier is 1024x7x7.
  for (const auto& l : g.layers()) {
    if (l.name == "dws13/pw") {
      EXPECT_EQ(g.value(l.output).shape, (graph::FeatureShape{1024, 7, 7}));
    }
  }
}

TEST(MobileNet, DepthwiseLayersAreMemoryBound) {
  auto g = models::build_mobilenet_v1();
  hw::PerfModel model(g, testing::small_design(hw::Precision::kInt16));
  int dw_bound = 0, dw_total = 0;
  for (const auto& l : g.layers()) {
    if (l.is_conv() && l.conv.groups > 1) {
      ++dw_total;
      dw_bound += model.timing(l.id).memory_bound();
    }
  }
  EXPECT_EQ(dw_total, 13);
  // Depthwise stages starve the reduction SIMD: nearly all transfer bound.
  EXPECT_GE(dw_bound, 10);
}

TEST(MobileNet, LcmmHelpsSubstantially) {
  auto g = models::build_mobilenet_v1();
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  const auto umm = compiler.compile_umm(g);
  auto plan = compiler.compile(g);
  const auto usim = sim::simulate(g, umm);
  const auto lsim = sim::refine_against_stalls(g, plan);
  EXPECT_GT(usim.total_s / lsim.total_s, 1.05);
}

TEST(SqueezeNet, Census) {
  auto g = models::build_squeezenet();
  // conv1 + 8 fires x 3 + conv10 = 26 conv layers.
  EXPECT_EQ(g.num_conv_layers(), 26);
  EXPECT_NEAR(static_cast<double>(g.total_weight_elems()) / 1e6, 1.24, 0.15);
  // Fire module output: expand1x1 + expand3x3 channels.
  for (const auto& l : g.layers()) {
    if (l.name == "fire9/expand3x3") {
      EXPECT_EQ(g.value(l.output).shape.channels, 512);
    }
  }
}

TEST(SqueezeNet, CompilesUnderLcmm) {
  auto g = models::build_squeezenet();
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8);
  const auto plan = compiler.compile(g);
  EXPECT_LE(plan.est_latency_s, plan.umm_latency_s * (1 + 1e-9));
}

TEST(Registry, IncludesNewModels) {
  auto names = models::model_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "mobilenet_v1"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "squeezenet"), names.end());
}

}  // namespace
}  // namespace lcmm
