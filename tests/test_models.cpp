#include <gtest/gtest.h>

#include <algorithm>

#include "models/models.hpp"

namespace lcmm::models {
namespace {

using graph::ComputationGraph;
using graph::FeatureShape;

const graph::Layer& last_conv(const ComputationGraph& g) {
  for (auto it = g.layers().rbegin(); it != g.layers().rend(); ++it) {
    if (it->is_conv()) return *it;
  }
  throw std::logic_error("no conv layer");
}

FeatureShape final_value_shape(const ComputationGraph& g) {
  return g.value(g.layers().back().output).shape;
}

TEST(ResNet152, LayerCensus) {
  auto g = build_resnet(152);
  // 50 bottleneck blocks x 3 convs + conv1 + 4 projections + fc = 156.
  EXPECT_EQ(g.num_conv_layers(), 156);
  // conv1 + maxpool + global pool: 2 pool layers.
  EXPECT_EQ(g.num_layers() - g.num_conv_layers(), 2u);
}

TEST(ResNet152, MacsMatchPublishedScale) {
  auto g = build_resnet(152);
  const double gmacs = static_cast<double>(g.total_macs()) / 1e9;
  // ~11.3 GMACs for 224x224 ResNet-152 (plus fused-add overhead).
  EXPECT_NEAR(gmacs, 11.3, 0.5);
  const double mweights = static_cast<double>(g.total_weight_elems()) / 1e6;
  EXPECT_NEAR(mweights, 60.0, 3.0);  // ~60 M parameters
}

TEST(ResNet50, MacsAndParams) {
  auto g = build_resnet(50);
  EXPECT_NEAR(static_cast<double>(g.total_macs()) / 1e9, 4.1, 0.3);
  EXPECT_NEAR(static_cast<double>(g.total_weight_elems()) / 1e6, 25.5, 2.0);
  EXPECT_EQ(g.num_conv_layers(), 54);  // 16x3 + conv1 + 4 proj + fc
}

TEST(ResNet, StageOutputShapes) {
  auto g = build_resnet(50);
  // Find the last layer of each stage by stage label.
  FeatureShape res2, res5;
  for (const auto& l : g.layers()) {
    if (l.stage == "res2c") res2 = g.value(l.output).shape;
    if (l.stage == "res5c") res5 = g.value(l.output).shape;
  }
  EXPECT_EQ(res2, (FeatureShape{256, 56, 56}));
  EXPECT_EQ(res5, (FeatureShape{2048, 7, 7}));
}

TEST(ResNet, ClassifierShape) {
  auto g = build_resnet(101);
  EXPECT_EQ(final_value_shape(g), (FeatureShape{1000, 1, 1}));
  EXPECT_EQ(last_conv(g).name, "fc1000");
}

TEST(ResNet, ResidualAddsPresent) {
  auto g = build_resnet(50);
  int residuals = 0;
  for (const auto& l : g.layers()) residuals += l.has_residual();
  EXPECT_EQ(residuals, 16);  // one fused add per bottleneck block
}

TEST(ResNet, UnsupportedDepthThrows) {
  EXPECT_THROW(build_resnet(26), std::invalid_argument);
}

TEST(ResNet34, BasicBlockCensus) {
  auto g = build_resnet(34);
  // 16 basic blocks x 2 convs + conv1 + 3 projections + fc = 37.
  EXPECT_EQ(g.num_conv_layers(), 37);
  EXPECT_NEAR(static_cast<double>(g.total_macs()) / 1e9, 3.67, 0.3);
  EXPECT_NEAR(static_cast<double>(g.total_weight_elems()) / 1e6, 21.8, 1.5);
  EXPECT_EQ(final_value_shape(g), (FeatureShape{1000, 1, 1}));
}

TEST(ResNet18, BasicBlockCensus) {
  auto g = build_resnet(18);
  // 8 basic blocks x 2 convs + conv1 + 3 projections + fc = 21.
  EXPECT_EQ(g.num_conv_layers(), 21);
  EXPECT_NEAR(static_cast<double>(g.total_macs()) / 1e9, 1.82, 0.2);
  EXPECT_NEAR(static_cast<double>(g.total_weight_elems()) / 1e6, 11.7, 1.0);
}

TEST(ResNetBasic, FinalStageShape) {
  auto g = build_resnet(34);
  FeatureShape res5;
  for (const auto& l : g.layers()) {
    if (l.stage == "res5c") res5 = g.value(l.output).shape;
  }
  // Basic blocks do not expand 4x: res5 ends at 512 channels.
  EXPECT_EQ(res5, (FeatureShape{512, 7, 7}));
}

TEST(GoogLeNet, LayerCensus) {
  auto g = build_googlenet();
  // 3 stem convs + 9 blocks x 6 convs + classifier = 58.
  EXPECT_EQ(g.num_conv_layers(), 58);
}

TEST(GoogLeNet, NineInceptionBlocks) {
  auto g = build_googlenet();
  int blocks = 0;
  for (const std::string& s : g.stages()) {
    blocks += s.rfind("inception_", 0) == 0;
  }
  EXPECT_EQ(blocks, 9);
}

TEST(GoogLeNet, BlockOutputChannels) {
  auto g = build_googlenet();
  // inception_3a output: 64+128+32+32 = 256 channels at 28x28.
  for (const auto& l : g.layers()) {
    if (l.name == "inception_3a/pool_proj") {
      EXPECT_EQ(g.value(l.output).shape, (FeatureShape{256, 28, 28}));
    }
    if (l.name == "inception_5b/pool_proj") {
      EXPECT_EQ(g.value(l.output).shape, (FeatureShape{1024, 7, 7}));
    }
  }
}

TEST(GoogLeNet, MacsMatchPublishedScale) {
  auto g = build_googlenet();
  EXPECT_NEAR(static_cast<double>(g.total_macs()) / 1e9, 1.6, 0.2);
  EXPECT_NEAR(static_cast<double>(g.total_weight_elems()) / 1e6, 7.0, 1.0);
}

TEST(InceptionV4, LayerCensus) {
  auto g = build_inception_v4();
  EXPECT_EQ(g.num_conv_layers(), 150);
}

TEST(InceptionV4, FourteenInceptionBlocks) {
  auto g = build_inception_v4();
  int blocks = 0;
  for (const std::string& s : g.stages()) {
    blocks += s.rfind("inception_", 0) == 0;
  }
  EXPECT_EQ(blocks, 14);  // 4 A + 7 B + 3 C — the paper's 2^14 design space
}

TEST(InceptionV4, GridShapesThroughNetwork) {
  auto g = build_inception_v4();
  for (const auto& l : g.layers()) {
    if (l.name == "stem/mixed_5a") continue;
    if (l.stage.rfind("inception_a", 0) == 0 && l.is_conv()) {
      EXPECT_EQ(g.value(l.output).shape.height, 35) << l.name;
    }
    if (l.stage.rfind("inception_b", 0) == 0 && l.is_conv()) {
      EXPECT_EQ(g.value(l.output).shape.height, 17) << l.name;
    }
    if (l.stage.rfind("inception_c", 0) == 0 && l.is_conv()) {
      EXPECT_EQ(g.value(l.output).shape.height, 8) << l.name;
    }
  }
  // Block output channel counts.
  for (const auto& l : g.layers()) {
    if (l.name == "inception_a1/pool_proj") {
      EXPECT_EQ(g.value(l.output).shape.channels, 384);
    }
    if (l.name == "inception_b1/pool_proj") {
      EXPECT_EQ(g.value(l.output).shape.channels, 1024);
    }
    if (l.name == "inception_c1/pool_proj") {
      EXPECT_EQ(g.value(l.output).shape.channels, 1536);
    }
  }
}

TEST(InceptionV4, MacsMatchPublishedScale) {
  auto g = build_inception_v4();
  // ~12.3 GMACs at 299x299.
  EXPECT_NEAR(static_cast<double>(g.total_macs()) / 1e9, 12.3, 0.8);
  EXPECT_NEAR(static_cast<double>(g.total_weight_elems()) / 1e6, 41.2, 3.0);
}

TEST(AlexNet, LinearStructure) {
  auto g = build_alexnet();
  EXPECT_EQ(g.num_conv_layers(), 8);  // 5 conv + 3 fc
  // Every value has at most one consumer: linear chain.
  for (graph::ValueId v : g.live_values()) {
    EXPECT_LE(g.value(v).consumers.size(), 1u);
  }
  EXPECT_EQ(final_value_shape(g), (FeatureShape{1000, 1, 1}));
}

TEST(Vgg16, CensusAndMacs) {
  auto g = build_vgg16();
  EXPECT_EQ(g.num_conv_layers(), 16);  // 13 conv + 3 fc
  EXPECT_NEAR(static_cast<double>(g.total_macs()) / 1e9, 15.5, 1.0);
  EXPECT_NEAR(static_cast<double>(g.total_weight_elems()) / 1e6, 138.0, 8.0);
}

TEST(Registry, BuildsEveryListedModel) {
  for (const std::string& name : model_names()) {
    auto g = build_by_name(name);
    EXPECT_GT(g.num_layers(), 0u) << name;
    EXPECT_NO_THROW(g.validate()) << name;
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(build_by_name("lenet"), std::invalid_argument);
}

TEST(AllModels, ValuesHaveConsistentSlices) {
  for (const std::string& name : model_names()) {
    auto g = build_by_name(name);
    for (graph::ValueId v : g.live_values()) {
      const auto& value = g.value(v);
      if (value.producers.empty()) continue;
      int covered = 0;
      for (graph::LayerId p : value.producers) {
        covered += g.own_output_shape(p).channels;
      }
      EXPECT_EQ(covered, value.shape.channels) << name << ": " << value.name;
    }
  }
}

}  // namespace
}  // namespace lcmm::models
