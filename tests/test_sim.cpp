#include <gtest/gtest.h>

#include "models/models.hpp"
#include "sim/memory_trace.hpp"
#include "sim/report.hpp"
#include "sim/timeline.hpp"
#include "test_graphs.hpp"

namespace lcmm::sim {
namespace {

using core::AllocationPlan;
using core::LcmmCompiler;
using core::TensorSource;

TEST(Simulator, UmmMatchesEq1Sum) {
  auto g = models::build_googlenet();
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8);
  const AllocationPlan umm = compiler.compile_umm(g);
  const SimResult sim = simulate(g, umm);
  EXPECT_NEAR(sim.total_s, umm.umm_latency_s, umm.umm_latency_s * 1e-12);
  EXPECT_DOUBLE_EQ(sim.total_stall_s, 0.0);
  EXPECT_EQ(sim.layers.size(), g.num_layers());
}

TEST(Simulator, LayersAreContiguous) {
  auto g = models::build_googlenet();
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  auto plan = compiler.compile(g);
  const SimResult sim = simulate(g, plan);
  double t = 0.0;
  for (const LayerExecution& e : sim.layers) {
    EXPECT_NEAR(e.start_s, t + e.stall_s, 1e-15);
    EXPECT_GE(e.end_s, e.start_s);
    t = e.end_s;
  }
  EXPECT_DOUBLE_EQ(sim.total_s, t);
}

TEST(Simulator, PerLayerLatencyIsEq1Max) {
  auto g = models::build_googlenet();
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  auto plan = compiler.compile(g);
  const SimResult sim = simulate(g, plan);
  for (const LayerExecution& e : sim.layers) {
    EXPECT_NEAR(e.latency_s(),
                std::max({e.compute_s, e.if_s, e.wt_s, e.of_s}), 1e-15);
  }
}

TEST(Simulator, OnChipTensorsDropTheirTerms) {
  auto g = models::build_googlenet();
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  auto plan = compiler.compile(g);
  hw::PerfModel model(g, plan.design);
  const SimResult sim = simulate(g, plan);
  for (const LayerExecution& e : sim.layers) {
    const auto& t = model.timing(e.layer);
    if (plan.state.is_on({e.layer, TensorSource::kInput})) {
      EXPECT_LT(e.if_s, t.if_s + t.res_s + 1e-18);
    } else {
      EXPECT_GE(e.if_s, t.if_s);
    }
    if (plan.state.is_on({e.layer, TensorSource::kWeight})) {
      EXPECT_DOUBLE_EQ(e.wt_s, 0.0);
    }
    if (plan.state.is_on({e.layer, TensorSource::kOutput})) {
      EXPECT_DOUBLE_EQ(e.of_s, 0.0);
    }
  }
}

TEST(Simulator, LcmmNeverSlowerThanUmmEndToEnd) {
  for (const char* name : {"resnet152", "googlenet", "inception_v4"}) {
    auto g = models::build_by_name(name);
    for (hw::Precision p : hw::kAllPrecisions) {
      LcmmCompiler compiler(hw::FpgaDevice::vu9p(), p);
      const auto umm = compiler.compile_umm(g);
      auto plan = compiler.compile(g);
      const SimResult usim = simulate(g, umm);
      const SimResult psim = refine_against_stalls(g, plan);
      // Allow the UMM design's higher clock a tiny epsilon.
      EXPECT_LE(psim.total_s, usim.total_s * 1.001)
          << name << " " << to_string(p);
    }
  }
}

TEST(Simulator, StallsOnlyOnUnhiddenPrefetches) {
  auto g = models::build_resnet(152);
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  auto plan = compiler.compile(g);
  const SimResult sim = simulate(g, plan);
  for (const LayerExecution& e : sim.layers) {
    if (e.stall_s > 0) {
      EXPECT_TRUE(plan.state.is_on({e.layer, TensorSource::kWeight}));
      EXPECT_FALSE(plan.weight_is_resident(e.layer));
    }
  }
}

TEST(Simulator, RefinementRemovesHarmfulStalls) {
  auto g = models::build_resnet(152);
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  auto plan = compiler.compile(g);
  hw::PerfModel model(g, plan.design);
  const SimResult sim = refine_against_stalls(g, plan);
  for (const LayerExecution& e : sim.layers) {
    EXPECT_LE(e.latency_s() + e.stall_s,
              model.timing(e.layer).umm_latency() + 1e-12);
  }
  EXPECT_NEAR(plan.est_latency_s, sim.total_s, 1e-15);
}

TEST(Simulator, MismatchedPlanThrows) {
  auto g1 = lcmm::testing::chain3();
  auto g2 = models::build_googlenet();
  core::LcmmOptions opt;
  opt.liveness.include_compute_bound = true;
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8, opt);
  const auto plan = compiler.compile(g1);
  EXPECT_THROW(simulate(g2, plan), std::invalid_argument);
}

TEST(MemoryTrace, RecordsMatchEntities) {
  auto g = models::build_googlenet();
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  auto plan = compiler.compile(g);
  const SimResult sim = simulate(g, plan);
  const MemoryTrace trace = build_memory_trace(g, plan, sim);
  EXPECT_EQ(trace.records.size(), plan.entities.size());
  for (const TensorResidency& r : trace.records) {
    EXPECT_LE(r.start_s, r.end_s);
    EXPECT_GE(r.end_s, 0.0);
    EXPECT_LE(r.end_s, sim.total_s + 1e-12);
    EXPECT_EQ(r.on_chip, plan.state.is_on(r.key));
  }
  // Static on-chip footprint never exceeds the device.
  EXPECT_LE(trace.on_chip_bytes, trace.device_sram_bytes);
}

TEST(MemoryTrace, GanttRendersBothStates) {
  auto g = models::build_googlenet();
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  auto plan = compiler.compile(g);
  const SimResult sim = simulate(g, plan);
  const MemoryTrace trace = build_memory_trace(g, plan, sim);
  const std::string gantt = trace.ascii_gantt(16, 40);
  EXPECT_NE(gantt.find('#'), std::string::npos);   // some tensor on-chip
  EXPECT_NE(gantt.find("vbuf"), std::string::npos);
}

TEST(Report, FieldsConsistent) {
  auto g = models::build_resnet(152);
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8);
  auto plan = compiler.compile(g);
  const SimResult sim = refine_against_stalls(g, plan);
  const DesignReport r = make_report(g, plan, sim);
  EXPECT_EQ(r.network, "resnet152");
  EXPECT_NEAR(r.latency_ms, sim.total_s * 1e3, 1e-12);
  EXPECT_NEAR(r.tops * 1e12 * sim.total_s, 2.0 * g.total_macs(), 1e3);
  EXPECT_GT(r.dsp_util, 0.5);
  EXPECT_LE(r.dsp_util, 1.0);
  EXPECT_GT(r.clb_util, 0.0);
  EXPECT_LE(r.clb_util, 1.0);
  EXPECT_GE(r.uram_util, 0.0);
  EXPECT_LE(r.uram_util, 1.0);
  EXPECT_EQ(r.is_umm, false);
}

TEST(Report, LutSurrogateGrowsWithBuffers) {
  auto g = models::build_resnet(152);
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  const auto umm = compiler.compile_umm(g);
  const auto plan = compiler.compile(g);
  EXPECT_GT(estimate_luts(plan), estimate_luts(umm));
}

}  // namespace
}  // namespace lcmm::sim
