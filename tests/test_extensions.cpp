// Tests for the extension features: DSP packing, streaming simulation and
// the energy model.
#include <gtest/gtest.h>

#include "core/lcmm.hpp"
#include "hw/dse.hpp"
#include "models/models.hpp"
#include "sim/chrome_trace.hpp"
#include "sim/energy.hpp"
#include "sim/timeline.hpp"
#include "test_graphs.hpp"

namespace lcmm {
namespace {

TEST(Packing, DoublesMacsNotDsps) {
  const hw::SystolicArrayConfig plain{32, 11, 16, 1};
  const hw::SystolicArrayConfig packed{32, 11, 16, 2};
  EXPECT_EQ(packed.macs_per_cycle(), 2 * plain.macs_per_cycle());
  EXPECT_EQ(packed.dsp_cost(hw::Precision::kInt8),
            plain.dsp_cost(hw::Precision::kInt8));
  EXPECT_EQ(packed.effective_cols(), 22);
  EXPECT_EQ(packed.to_string(), "32x11x16p2");
  const hw::SystolicArrayConfig bad_pack{32, 11, 16, 3};
  EXPECT_FALSE(bad_pack.valid());
}

TEST(Packing, RequiresInt8) {
  auto g = testing::chain3();
  hw::AcceleratorDesign d = testing::small_design(hw::Precision::kInt16);
  d.array.pixel_pack = 2;
  EXPECT_THROW(hw::PerfModel(g, d), std::invalid_argument);
  d.precision = hw::Precision::kInt8;
  EXPECT_NO_THROW(hw::PerfModel(g, d));
}

TEST(Packing, ReducesComputeCycles) {
  auto g = testing::chain3();
  hw::AcceleratorDesign plain = testing::small_design(hw::Precision::kInt8);
  hw::AcceleratorDesign packed = plain;
  packed.array.pixel_pack = 2;
  hw::PerfModel mp(g, plain), mq(g, packed);
  for (const auto& l : g.layers()) {
    if (!l.is_conv()) continue;
    EXPECT_LT(mq.timing(l.id).cycles, mp.timing(l.id).cycles) << l.name;
    // Traffic is untouched by packing.
    EXPECT_DOUBLE_EQ(mq.timing(l.id).if_bytes, mp.timing(l.id).if_bytes);
  }
}

TEST(Packing, DseOnlyOffersPackingWhenEnabled) {
  hw::DseOptions off;
  hw::DseOptions on;
  on.allow_int8_packing = true;
  const hw::Dse dse_off(hw::FpgaDevice::vu9p(), hw::Precision::kInt8, off);
  const hw::Dse dse_on(hw::FpgaDevice::vu9p(), hw::Precision::kInt8, on);
  for (const auto& a : dse_off.array_candidates()) EXPECT_EQ(a.pixel_pack, 1);
  bool any_packed = false;
  for (const auto& a : dse_on.array_candidates()) {
    any_packed |= a.pixel_pack == 2;
  }
  EXPECT_TRUE(any_packed);
  // fp32 never packs even when allowed.
  const hw::Dse dse_fp(hw::FpgaDevice::vu9p(), hw::Precision::kFp32, on);
  for (const auto& a : dse_fp.array_candidates()) EXPECT_EQ(a.pixel_pack, 1);
}

TEST(Stream, SingleImageMatchesSimulate) {
  auto g = models::build_googlenet();
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  auto plan = compiler.compile(g);
  const auto single = sim::simulate(g, plan);
  const auto stream = sim::simulate_stream(g, plan, 1);
  EXPECT_NEAR(stream.total_s, single.total_s, 1e-15);
  EXPECT_NEAR(stream.first_image_s, single.total_s, 1e-15);
  EXPECT_NEAR(stream.steady_image_s, single.total_s, 1e-15);
}

TEST(Stream, SteadyStateAtLeastAsFastAsFirstImage) {
  for (const char* name : {"resnet152", "googlenet"}) {
    auto g = models::build_by_name(name);
    core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
    auto plan = compiler.compile(g);
    const auto stream = sim::simulate_stream(g, plan, 4);
    EXPECT_LE(stream.steady_image_s, stream.first_image_s * (1 + 1e-12)) << name;
    EXPECT_GT(stream.throughput_images_per_s(), 0.0);
    // Total is consistent with the per-image numbers.
    EXPECT_GE(stream.total_s, stream.first_image_s);
    EXPECT_NEAR(stream.total_s,
                stream.first_image_s + 3 * stream.steady_image_s,
                stream.total_s * 0.25)
        << name;
  }
}

TEST(Stream, CrossImageWindowsAbsorbWarmupStalls) {
  // A plan with unhidden first-layer prefetches: in a stream, image 2+ can
  // prefetch during image 1, so steady stalls <= first-image stalls.
  auto g = models::build_resnet(152);
  core::LcmmOptions opt;
  opt.allow_fallback_to_umm = false;
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16, opt);
  auto plan = compiler.compile(g);
  const auto one = sim::simulate_stream(g, plan, 1);
  const auto many = sim::simulate_stream(g, plan, 5);
  // Average stall per image in the stream is no worse than the cold image.
  EXPECT_LE(many.total_stall_s / 5.0, one.total_stall_s + 1e-12);
}

TEST(Stream, InvalidArgumentsThrow) {
  auto g = testing::chain3();
  core::LcmmOptions opt;
  opt.liveness.include_compute_bound = true;
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8, opt);
  auto plan = compiler.compile(g);
  EXPECT_THROW(sim::simulate_stream(g, plan, 0), std::invalid_argument);
  auto other = models::build_googlenet();
  EXPECT_THROW(sim::simulate_stream(other, plan, 2), std::invalid_argument);
}

TEST(Energy, LcmmMovesFewerDramBytes) {
  auto g = models::build_resnet(152);
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  const auto umm = compiler.compile_umm(g);
  auto plan = compiler.compile(g);
  const auto usim = sim::simulate(g, umm);
  const auto lsim = sim::refine_against_stalls(g, plan);
  const auto eu = sim::estimate_energy(g, umm, usim);
  const auto el = sim::estimate_energy(g, plan, lsim);
  EXPECT_LT(el.dram_bytes, eu.dram_bytes);
  EXPECT_LT(el.total_mj(), eu.total_mj());
  EXPECT_GT(el.gops_per_joule(2.0 * g.total_macs()),
            eu.gops_per_joule(2.0 * g.total_macs()));
}

TEST(Energy, ComponentsAreNonNegativeAndSum) {
  auto g = models::build_squeezenet();
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8);
  auto plan = compiler.compile(g);
  const auto sim_result = sim::simulate(g, plan);
  const auto e = sim::estimate_energy(g, plan, sim_result);
  EXPECT_GE(e.dram_mj, 0.0);
  EXPECT_GE(e.sram_mj, 0.0);
  EXPECT_GT(e.compute_mj, 0.0);
  EXPECT_GT(e.static_mj, 0.0);
  EXPECT_NEAR(e.total_mj(), e.dram_mj + e.sram_mj + e.compute_mj + e.static_mj,
              1e-12);
}

TEST(Energy, UmmDramBytesMatchTimingTables) {
  auto g = testing::chain3();
  core::LcmmOptions opt;
  opt.liveness.include_compute_bound = true;
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8, opt);
  const auto umm = compiler.compile_umm(g);
  const auto sim_result = sim::simulate(g, umm);
  const auto e = sim::estimate_energy(g, umm, sim_result);
  hw::PerfModel model(g, umm.design);
  double expected = 0.0;
  for (const auto& l : g.layers()) {
    const auto& t = model.timing(l.id);
    expected += t.if_bytes + t.res_bytes + t.wt_bytes + t.of_bytes;
  }
  EXPECT_NEAR(e.dram_bytes, expected, expected * 1e-12);
}

TEST(Energy, ResidentWeightsAvoidReload) {
  auto g = models::build_resnet(152);
  core::LcmmOptions with;
  core::LcmmOptions without;
  without.residency_promotion = false;
  core::LcmmCompiler cw(hw::FpgaDevice::vu9p(), hw::Precision::kInt16, with);
  core::LcmmCompiler co(hw::FpgaDevice::vu9p(), hw::Precision::kInt16, without);
  auto pw = cw.compile(g);
  auto po = co.compile(g);
  const auto sw = sim::refine_against_stalls(g, pw);
  const auto so = sim::refine_against_stalls(g, po);
  EXPECT_LT(sim::estimate_energy(g, pw, sw).dram_bytes,
            sim::estimate_energy(g, po, so).dram_bytes);
}

TEST(Batch, ScalesActivationsNotWeights) {
  auto g = testing::chain3();
  hw::AcceleratorDesign b1 = testing::small_design();
  hw::AcceleratorDesign b4 = b1;
  b4.batch = 4;
  hw::PerfModel m1(g, b1), m4(g, b4);
  for (const auto& l : g.layers()) {
    const auto& t1 = m1.timing(l.id);
    const auto& t4 = m4.timing(l.id);
    EXPECT_NEAR(t4.if_bytes, 4 * t1.if_bytes, 1e-6) << l.name;
    EXPECT_NEAR(t4.of_bytes, 4 * t1.of_bytes, 1e-6) << l.name;
    EXPECT_DOUBLE_EQ(t4.wt_bytes, t1.wt_bytes) << l.name;
    EXPECT_EQ(t4.nominal_macs, 4 * t1.nominal_macs) << l.name;
    // Compute scales by ~4 (fill overhead is per tile, not per image).
    EXPECT_GE(t4.cycles, 3 * t1.cycles);
    EXPECT_LE(t4.cycles, 4 * t1.cycles);
  }
  EXPECT_DOUBLE_EQ(m4.total_nominal_ops(), 4 * m1.total_nominal_ops());
}

TEST(Batch, InvalidBatchThrows) {
  auto g = testing::chain3();
  hw::AcceleratorDesign d = testing::small_design();
  d.batch = 0;
  EXPECT_THROW(hw::PerfModel(g, d), std::invalid_argument);
}

TEST(Batch, FeatureEntitiesGrowWithBatch) {
  auto g = testing::chain3();
  hw::AcceleratorDesign d = testing::small_design();
  d.batch = 2;
  hw::PerfModel m1(g, testing::small_design()), m2(g, d);
  core::LivenessOptions opt;
  opt.include_compute_bound = true;
  const auto e1 = core::build_feature_entities(m1, opt);
  const auto e2 = core::build_feature_entities(m2, opt);
  ASSERT_EQ(e1.size(), e2.size());
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e2[i].bytes, 2 * e1[i].bytes);
  }
}

TEST(Energy, MacCostsOrdered) {
  const sim::EnergyModelOptions opt;
  EXPECT_LT(opt.mac_pj(hw::Precision::kInt8), opt.mac_pj(hw::Precision::kInt16));
  EXPECT_LT(opt.mac_pj(hw::Precision::kInt16), opt.mac_pj(hw::Precision::kFp32));
}

TEST(ChromeTrace, ContainsTracksAndLayerEvents) {
  auto g = models::build_squeezenet();
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  auto plan = compiler.compile(g);
  const auto sim_result = sim::simulate(g, plan);
  const std::string json = sim::to_chrome_trace(g, sim_result);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("PE array"), std::string::npos);
  EXPECT_NE(json.find("DRAM: weights"), std::string::npos);
  EXPECT_NE(json.find("conv1"), std::string::npos);
  // Complete events carry phase "X" with microsecond timestamps.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_THROW(
      sim::write_chrome_trace(g, sim_result, "/nonexistent/dir/x.json"),
      std::runtime_error);
}

TEST(Devices, U250IsBiggerThanVu9p) {
  const auto u250 = hw::FpgaDevice::u250();
  const auto vu9p = hw::FpgaDevice::vu9p();
  EXPECT_GT(u250.dsp_total, vu9p.dsp_total);
  EXPECT_GT(u250.uram_bytes_total(), vu9p.uram_bytes_total());
  // A bigger array fits -> faster UMM baseline on the same network.
  auto g = models::build_googlenet();
  core::LcmmCompiler small(vu9p, hw::Precision::kInt16);
  core::LcmmCompiler big(u250, hw::Precision::kInt16);
  EXPECT_LT(big.compile_umm(g).est_latency_s,
            small.compile_umm(g).est_latency_s);
}

TEST(RandomGraphGenerator, RespectsOptions) {
  models::RandomGraphOptions opt;
  opt.min_layers = 3;
  opt.max_layers = 5;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto g = models::random_graph(seed, opt);
    EXPECT_GE(g.num_layers(), 3u);
    // Branch steps add several layers at once; allow the overshoot.
    EXPECT_LE(g.num_layers(), 5u * 4u);
    EXPECT_NO_THROW(g.validate());
  }
  // Determinism.
  EXPECT_EQ(models::random_graph(7).total_macs(),
            models::random_graph(7).total_macs());
}

}  // namespace
}  // namespace lcmm
