// lcmm::bench harness + diff tests: the JSON schema round-trips, the
// comparator hands out the right verdicts, the tolerance spec parses and
// matches, and the gated metrics are bit-identical across worker counts
// (the property that lets CI gate on model metrics at all).
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench.hpp"
#include "bench/diff.hpp"
#include "driver/batch.hpp"
#include "models/models.hpp"
#include "util/json.hpp"

namespace lcmm::bench {
namespace {

// ---------------------------------------------------------------- parser

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(util::Json::parse("null").is_null());
  EXPECT_EQ(util::Json::parse("true").as_bool(), true);
  EXPECT_EQ(util::Json::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(util::Json::parse("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(util::Json::parse("\"hi\\nthere\"").as_string(), "hi\nthere");
}

TEST(JsonParse, NestedRoundTrip) {
  const std::string src =
      R"({"a":[1,2.5,"x",null,true],"b":{"c":"é","d":[]}})";
  const util::Json doc = util::Json::parse(src);
  EXPECT_EQ(doc.dump(-1), util::Json::parse(doc.dump(2)).dump(-1));
  EXPECT_EQ(doc.at("b").at("c").as_string(), "\xc3\xa9");
  EXPECT_EQ(doc.at("a").at(1).as_double(), 2.5);
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  try {
    util::Json::parse("{\"a\": 1,\n  \"b\": }");
    FAIL() << "expected JsonParseError";
  } catch (const util::JsonParseError& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos) << e.what();
  }
  EXPECT_THROW(util::Json::parse("[1, 2] trailing"), util::JsonParseError);
  EXPECT_THROW(util::Json::parse(""), util::JsonParseError);
}

// ------------------------------------------------------------- BenchRun

BenchRun make_run(double latency, double speedup) {
  BenchRun run("unit_suite");
  run.add("latency_ms", latency, "ms", Direction::kLowerIsBetter,
          {{"net", "RN"}, {"precision", "int8"}});
  run.add("speedup", speedup, "x", Direction::kHigherIsBetter,
          {{"net", "RN"}});
  run.add_wall("compile_wall_s", 1.25);
  return run;
}

TEST(BenchRun, MetricKeyIsStable) {
  const BenchRun run = make_run(3.5, 1.4);
  EXPECT_EQ(run.metrics()[0].key(), "latency_ms{net=RN,precision=int8}");
  EXPECT_EQ(run.metrics()[2].key(), "compile_wall_s");
  EXPECT_NE(run.find("speedup{net=RN}"), nullptr);
  EXPECT_EQ(run.find("speedup"), nullptr);
}

TEST(BenchRun, DuplicateKeyThrows) {
  BenchRun run("unit_suite");
  run.add("speedup", 1.0, "x", Direction::kHigherIsBetter);
  EXPECT_THROW(run.add("speedup", 2.0, "x", Direction::kHigherIsBetter),
               std::logic_error);
}

TEST(BenchRun, JsonRoundTrip) {
  const BenchRun run = make_run(3.5, 1.4);
  const util::Json doc = run.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), kSchema);
  const BenchRun back = BenchRun::from_json(util::Json::parse(doc.dump(2)));
  ASSERT_EQ(back.metrics().size(), run.metrics().size());
  EXPECT_EQ(back.suite(), "unit_suite");
  for (std::size_t i = 0; i < run.metrics().size(); ++i) {
    const Metric& a = run.metrics()[i];
    const Metric& b = back.metrics()[i];
    EXPECT_EQ(a.key(), b.key());
    EXPECT_EQ(a.value, b.value);  // Bit-exact through dump/parse.
    EXPECT_EQ(a.unit, b.unit);
    EXPECT_EQ(a.direction, b.direction);
    EXPECT_EQ(a.kind, b.kind);
  }
}

TEST(BenchRun, FromJsonRejectsWrongSchema) {
  util::Json doc = make_run(1, 1).to_json();
  doc["schema"] = "lcmm-bench-v999";
  EXPECT_THROW(BenchRun::from_json(doc), std::runtime_error);
}

// ------------------------------------------------------ tolerance specs

TEST(ToleranceSpec, GlobMatch) {
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("table1_main/latency_ms*",
                         "table1_main/latency_ms{net=RN}"));
  EXPECT_TRUE(glob_match("*/speedup{net=?N}", "suite/speedup{net=RN}"));
  EXPECT_FALSE(glob_match("golden_plans/*", "table1_main/speedup"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
}

TEST(ToleranceSpec, LastMatchWinsAndDefaultOverrides) {
  const ToleranceSpec spec = ToleranceSpec::parse(
      "# comment\n"
      "default rel=0.10\n"
      "unit_suite/* rel=0.05 abs=0.5\n"
      "unit_suite/latency_ms* rel=0 abs=0\n");
  Metric latency{"latency_ms", {{"net", "RN"}}, 1, "ms",
                 Direction::kLowerIsBetter, Kind::kModel};
  Metric speedup{"speedup", {}, 1, "x", Direction::kHigherIsBetter,
                 Kind::kModel};
  EXPECT_EQ(spec.lookup("unit_suite", latency).rel, 0.0);
  EXPECT_EQ(spec.lookup("unit_suite", speedup).rel, 0.05);
  EXPECT_EQ(spec.lookup("unit_suite", speedup).abs, 0.5);
  EXPECT_EQ(spec.lookup("other_suite", speedup).rel, 0.10);
}

TEST(ToleranceSpec, MalformedLineThrowsWithLineNumber) {
  try {
    ToleranceSpec::parse("default rel=0.02\npattern rel=banana\n");
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------- diffs

TEST(Diff, VerdictsPerMetric) {
  const BenchRun base = make_run(/*latency=*/10.0, /*speedup=*/2.0);
  BenchRun cur("unit_suite");
  // latency_ms is lower-is-better: 10 -> 8 is an improvement.
  cur.add("latency_ms", 8.0, "ms", Direction::kLowerIsBetter,
          {{"net", "RN"}, {"precision", "int8"}});
  // speedup is higher-is-better: 2.0 -> 1.5 is a regression at 2% rel.
  cur.add("speedup", 1.5, "x", Direction::kHigherIsBetter, {{"net", "RN"}});
  // compile_wall_s omitted -> missing, but wall metrics never gate.
  cur.add("new_metric", 1.0, "count", Direction::kHigherIsBetter);

  const DiffResult r = diff_runs(base, cur, ToleranceSpec{});
  ASSERT_EQ(r.deltas.size(), 4u);
  EXPECT_EQ(r.deltas[0].verdict, Verdict::kImprovement);
  EXPECT_EQ(r.deltas[1].verdict, Verdict::kRegression);
  EXPECT_EQ(r.deltas[2].verdict, Verdict::kMissing);
  EXPECT_FALSE(r.deltas[2].gates);  // Wall-kind: reported, never gated.
  EXPECT_EQ(r.deltas[3].verdict, Verdict::kNew);
  EXPECT_EQ(r.regressions, 1);
  EXPECT_EQ(r.improvements, 1);
  EXPECT_EQ(r.added, 1);
  EXPECT_TRUE(r.gate_failed);
}

TEST(Diff, WithinToleranceDoesNotGate) {
  const BenchRun base = make_run(10.0, 2.0);
  BenchRun cur("unit_suite");
  cur.add("latency_ms", 10.1, "ms", Direction::kLowerIsBetter,
          {{"net", "RN"}, {"precision", "int8"}});  // +1% < 2% rel.
  cur.add("speedup", 1.99, "x", Direction::kHigherIsBetter, {{"net", "RN"}});
  cur.add_wall("compile_wall_s", 99.0);  // Wall regressions never gate.
  const DiffResult r = diff_runs(base, cur, ToleranceSpec{});
  EXPECT_FALSE(r.gate_failed);
  EXPECT_EQ(r.regressions, 0);
  EXPECT_EQ(r.deltas[0].verdict, Verdict::kWithinTolerance);
}

TEST(Diff, MissingModelMetricGatesUnlessAllowed) {
  BenchRun base("unit_suite");
  base.add("speedup", 2.0, "x", Direction::kHigherIsBetter);
  const BenchRun cur("unit_suite");
  EXPECT_TRUE(diff_runs(base, cur, ToleranceSpec{}).gate_failed);
  DiffOptions allow;
  allow.fail_on_missing = false;
  EXPECT_FALSE(diff_runs(base, cur, ToleranceSpec{}, allow).gate_failed);
}

TEST(Diff, SuiteMismatchThrows) {
  EXPECT_THROW(
      diff_runs(BenchRun("a"), BenchRun("b"), ToleranceSpec{}),
      std::runtime_error);
}

TEST(Diff, AbsToleranceAbsorbsSmallDeltas) {
  BenchRun base("unit_suite"), cur("unit_suite");
  base.add("gain_ms", 0.0, "ms", Direction::kHigherIsBetter);
  cur.add("gain_ms", -0.0005, "ms", Direction::kHigherIsBetter);
  // rel tolerance alone cannot absorb a from-zero change; abs can.
  EXPECT_TRUE(diff_runs(base, cur, ToleranceSpec{}).gate_failed);
  const ToleranceSpec spec = ToleranceSpec::parse("default rel=0 abs=0.001\n");
  EXPECT_FALSE(diff_runs(base, cur, spec).gate_failed);
}

TEST(Diff, RendersReadableTables) {
  const BenchRun base = make_run(10.0, 2.0);
  BenchRun cur("unit_suite");
  cur.add("latency_ms", 14.0, "ms", Direction::kLowerIsBetter,
          {{"net", "RN"}, {"precision", "int8"}});
  cur.add("speedup", 2.0, "x", Direction::kHigherIsBetter, {{"net", "RN"}});
  cur.add_wall("compile_wall_s", 1.25);
  const DiffResult r = diff_runs(base, cur, ToleranceSpec{});
  const std::string text = render_text(r);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("GATE FAILED"), std::string::npos);
  const std::string md = render_markdown(r);
  EXPECT_NE(md.find("| `latency_ms{net=RN,precision=int8}` |"),
            std::string::npos);
  EXPECT_NE(md.find("**REGRESSION**"), std::string::npos);
}

// -------------------------------------------------- determinism (gate)

// The CI gate only works because model metrics are bit-identical across
// worker counts: compile the gated nets with 1 and 8 workers and require
// the identical JSON document.
TEST(Determinism, GatedMetricsIdenticalAcrossWorkerCounts) {
  std::vector<driver::BatchJob> jobs;
  for (const char* name : {"squeezenet", "alexnet"}) {
    jobs.push_back({models::build_by_name(name), hw::FpgaDevice::vu9p(),
                    hw::Precision::kInt8, core::LcmmOptions{}, true, true,
                    name});
  }
  auto run_with = [&](int workers) {
    BenchRun run("determinism");
    const auto outcomes = driver::compile_many(jobs, workers);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const auto& r = outcomes[i];
      EXPECT_TRUE(r.ok()) << r.error;
      const Dims dims{{"job", std::to_string(i)}};
      run.add("latency_ms", r.lcmm_sim.total_s * 1e3, "ms",
              Direction::kLowerIsBetter, dims);
      run.add("speedup", r.umm_sim.total_s / r.lcmm_sim.total_s, "x",
              Direction::kHigherIsBetter, dims);
    }
    return run.to_json().dump(2);
  };
  EXPECT_EQ(run_with(1), run_with(8));
}

// BenchRun::load + Harness-style write: a file round-trip with bit-exact
// doubles (dump uses max_digits10).
TEST(BenchRun, FileRoundTrip) {
  const std::string path = "test_bench_json_roundtrip.tmp.json";
  const BenchRun run = make_run(1.0 / 3.0, 1.23456789012345e-7);
  run.write_json(path);
  const BenchRun back = BenchRun::load(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.metrics().size(), run.metrics().size());
  EXPECT_EQ(back.metrics()[0].value, run.metrics()[0].value);
  EXPECT_EQ(back.metrics()[1].value, run.metrics()[1].value);
}

}  // namespace
}  // namespace lcmm::bench
