#include <gtest/gtest.h>

#include <array>

#include "core/lcmm.hpp"
#include "models/models.hpp"
#include "sim/memory_trace.hpp"
#include "sim/timeline.hpp"
#include "test_graphs.hpp"
#include "util/rng.hpp"

namespace lcmm {
namespace {

/// Library random DAG generator (models::random_graph) with the default
/// sizing the properties were written for.
graph::ComputationGraph random_graph(std::uint64_t seed) {
  return models::random_graph(seed);
}

class RandomGraphProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphProperty, ColoringIsAlwaysValid) {
  auto g = random_graph(GetParam());
  hw::PerfModel model(g, testing::small_design());
  core::LivenessOptions opt;
  opt.include_compute_bound = true;
  core::InterferenceGraph ig(core::build_feature_entities(model, opt));
  const auto coloring = core::color_min_total_size(ig);
  EXPECT_TRUE(core::coloring_is_valid(ig, coloring));
  // Buffer sizes: max of members; total matches.
  const auto buffers = core::build_virtual_buffers(ig, coloring);
  EXPECT_EQ(core::total_buffer_bytes(buffers), coloring.total_bytes);
}

TEST_P(RandomGraphProperty, DnnkRespectsEveryCapacity) {
  auto g = random_graph(GetParam());
  hw::PerfModel model(g, testing::small_design());
  core::LatencyTables tables(model);
  core::LivenessOptions opt;
  opt.include_compute_bound = true;
  core::InterferenceGraph ig(core::build_feature_entities(model, opt));
  const auto buffers =
      core::build_virtual_buffers(ig, core::color_min_total_size(ig));
  util::Rng rng(GetParam() ^ 0xC0FFEE);
  for (int trial = 0; trial < 6; ++trial) {
    const std::int64_t cap =
        static_cast<std::int64_t>(rng.next_below(8)) << 18;  // 0..2 MB
    const auto r = core::dnnk_allocate(ig, buffers, tables, cap);
    EXPECT_LE(r.bytes_used, std::max<std::int64_t>(cap, 0));
    EXPECT_GE(r.gain_s, -1e-12);
    // Monotone sanity: gain is the true Eq. 1 delta.
    const core::OnChipState umm(g.num_layers());
    EXPECT_NEAR(r.gain_s,
                tables.total_latency(umm) - tables.total_latency(r.state),
                1e-12);
  }
}

TEST_P(RandomGraphProperty, LcmmEstimateNeverWorseThanUmm) {
  auto g = random_graph(GetParam());
  core::LcmmOptions opt;
  opt.liveness.include_compute_bound = true;
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8, opt);
  const auto plan = compiler.compile(g);
  EXPECT_LE(plan.est_latency_s, plan.umm_latency_s * (1 + 1e-9));
}

TEST_P(RandomGraphProperty, SimulatedPlanBeatsOrMatchesUmm) {
  auto g = random_graph(GetParam());
  for (hw::Precision p : {hw::Precision::kInt8, hw::Precision::kInt16}) {
    core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), p);
    const auto umm = compiler.compile_umm(g);
    auto plan = compiler.compile(g);
    const auto usim = sim::simulate(g, umm);
    const auto psim = sim::refine_against_stalls(g, plan);
    EXPECT_LE(psim.total_s, usim.total_s * 1.001) << to_string(p);
    // Footprint property: the static on-chip footprint fits the device.
    const auto trace = sim::build_memory_trace(g, plan, psim);
    EXPECT_LE(trace.on_chip_bytes, trace.device_sram_bytes);
  }
}

TEST_P(RandomGraphProperty, DnnkBeatsOrMatchesGreedy) {
  auto g = random_graph(GetParam());
  hw::PerfModel model(g, testing::small_design());
  core::LatencyTables tables(model);
  core::LivenessOptions opt;
  opt.include_compute_bound = true;
  core::InterferenceGraph ig(core::build_feature_entities(model, opt));
  const auto buffers =
      core::build_virtual_buffers(ig, core::color_min_total_size(ig));
  const std::int64_t cap = core::total_buffer_bytes(buffers) / 2;
  const auto dp = core::dnnk_allocate(ig, buffers, tables, cap);
  const auto greedy = core::greedy_allocate(ig, buffers, tables, cap);
  // The DP handles value interactions the greedy ignores; it must win or
  // tie up to a small tolerance (pivot approximation at column j).
  EXPECT_GE(dp.gain_s, greedy.gain_s * 0.95 - 1e-12);
}

TEST_P(RandomGraphProperty, DnnkCloseToExactOnSmallInstances) {
  auto g = random_graph(GetParam());
  hw::PerfModel model(g, testing::small_design());
  core::LatencyTables tables(model);
  core::LivenessOptions opt;
  opt.include_compute_bound = true;
  opt.include_pools = false;
  core::InterferenceGraph ig(core::build_feature_entities(model, opt));
  const auto buffers =
      core::build_virtual_buffers(ig, core::color_min_total_size(ig));
  if (buffers.size() > 14) GTEST_SKIP() << "instance too large for oracle";
  const std::int64_t cap = core::total_buffer_bytes(buffers) / 2;
  const auto dp = core::dnnk_allocate(ig, buffers, tables, cap);
  const auto best = core::exact_allocate(ig, buffers, tables, cap, {}, 14);
  EXPECT_LE(dp.gain_s, best.gain_s + 1e-12);
  EXPECT_GE(dp.gain_s, best.gain_s * 0.9 - 1e-12);
}

TEST_P(RandomGraphProperty, PrefetchWindowsAreCausal) {
  auto g = random_graph(GetParam());
  hw::PerfModel model(g, testing::small_design());
  core::LivenessOptions opt;
  opt.include_compute_bound = true;
  const auto prefetch = core::build_prefetch_schedule(model, opt);
  for (const auto& e : prefetch.edges()) {
    EXPECT_LT(e.start_step, g.step_of(e.target));
    EXPECT_GE(e.start_step, core::kBeforeExecution);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace lcmm
