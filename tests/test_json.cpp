#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "models/models.hpp"
#include "sim/report.hpp"
#include "util/json.hpp"

namespace lcmm::util {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-1.5).dump(), "-1.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectAndArrayCompact) {
  Json j = Json::object();
  j["b"] = 2;
  j["a"] = Json::array();
  j["a"].push(1);
  j["a"].push("x");
  // Keys are sorted (std::map) for deterministic output.
  EXPECT_EQ(j.dump(-1), "{\"a\":[1,\"x\"],\"b\":2}");
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j["a"].size(), 2u);
}

TEST(Json, PrettyIndentation) {
  Json j = Json::object();
  j["k"] = Json::array();
  j["k"].push(1);
  EXPECT_EQ(j.dump(2), "{\n  \"k\": [\n    1\n  ]\n}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::object().dump(), "{}");
  EXPECT_EQ(Json::array().dump(-1), "[]");
}

TEST(Json, TypeErrorsThrow) {
  Json scalar(1);
  EXPECT_THROW(scalar["x"] = 1, std::logic_error);
  EXPECT_THROW(scalar.push(1), std::logic_error);
  Json obj = Json::object();
  EXPECT_THROW(obj.push(1), std::logic_error);
}

TEST(Json, NestedStructures) {
  Json root = Json::array();
  for (int i = 0; i < 3; ++i) {
    Json item = Json::object();
    item["i"] = i;
    root.push(std::move(item));
  }
  EXPECT_EQ(root.dump(-1), "[{\"i\":0},{\"i\":1},{\"i\":2}]");
}

TEST(PlanJson, ContainsExpectedSections) {
  auto g = models::build_squeezenet();
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8);
  auto plan = compiler.compile(g);
  const auto sim_result = sim::refine_against_stalls(g, plan);
  const Json j = sim::plan_to_json(g, plan, sim_result);
  const std::string s = j.dump(-1);
  EXPECT_NE(s.find("\"report\""), std::string::npos);
  EXPECT_NE(s.find("\"virtual_buffers\""), std::string::npos);
  EXPECT_NE(s.find("\"resident_weights\""), std::string::npos);
  EXPECT_NE(s.find("\"layers\""), std::string::npos);
  EXPECT_NE(s.find("\"latency_ms\""), std::string::npos);
  EXPECT_NE(s.find("squeezenet"), std::string::npos);
}

}  // namespace
}  // namespace lcmm::util
