#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "models/models.hpp"
#include "sim/timeline.hpp"
#include "test_graphs.hpp"

namespace lcmm::core {
namespace {

AllocationPlan compiled_plan(const graph::ComputationGraph& g,
                             hw::Precision p = hw::Precision::kInt16) {
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), p);
  return compiler.compile(g);
}

class PlanValidation : public ::testing::TestWithParam<const char*> {};

TEST_P(PlanValidation, CompilerOutputIsAlwaysSound) {
  auto g = models::build_by_name(GetParam());
  for (hw::Precision p : hw::kAllPrecisions) {
    AllocationPlan plan = compiled_plan(g, p);
    EXPECT_TRUE(validate_plan(g, plan).empty());
    // Also after stall refinement mutates the state.
    sim::refine_against_stalls(g, plan);
    const auto issues = validate_plan(g, plan);
    EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues.front());
  }
}

INSTANTIATE_TEST_SUITE_P(Models, PlanValidation,
                         ::testing::Values("resnet152", "googlenet",
                                           "inception_v4", "mobilenet_v1",
                                           "squeezenet"),
                         [](const auto& info) { return std::string(info.param); });

TEST(PlanValidation, RandomGraphsAreSound) {
  for (std::uint64_t seed = 20; seed < 30; ++seed) {
    auto g = models::random_graph(seed);
    const AllocationPlan plan = compiled_plan(g, hw::Precision::kInt8);
    const auto issues = validate_plan(g, plan);
    EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues.front());
  }
}

TEST(PlanValidation, DetectsShapeMismatch) {
  auto g1 = lcmm::testing::chain3();
  auto g2 = models::build_googlenet();
  const AllocationPlan plan = compiled_plan(g2);
  EXPECT_FALSE(validate_plan(g1, plan).empty());
}

TEST(PlanValidation, DetectsOvercommittedResources) {
  auto g = models::build_googlenet();
  AllocationPlan plan = compiled_plan(g);
  plan.bram_used = plan.design.device.bram36_total + 1;
  const auto issues = validate_plan(g, plan);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().find("BRAM overcommitted"), std::string::npos);
}

TEST(PlanValidation, DetectsSpilledOnChipWeight) {
  auto g = models::build_googlenet();
  AllocationPlan plan = compiled_plan(g);
  // Find a spilled buffer containing a weight entity; force its bit on.
  bool injected = false;
  for (std::size_t b = 0; b < plan.buffers.size() && !injected; ++b) {
    if (plan.buffer_on_chip[b]) continue;
    for (std::size_t e : plan.buffers[b].members) {
      if (plan.entities[e].key.source == TensorSource::kWeight) {
        plan.state.set(plan.entities[e].key, true);
        injected = true;
        break;
      }
    }
  }
  if (!injected) GTEST_SKIP() << "no spilled weight buffer to corrupt";
  EXPECT_FALSE(validate_plan(g, plan).empty());
}

TEST(PlanValidation, DetectsLifespanOverlapInBuffer) {
  auto g = models::build_googlenet();
  AllocationPlan plan = compiled_plan(g);
  // Corrupt: merge two interfering entities into one buffer.
  ASSERT_GE(plan.entities.size(), 2u);
  std::size_t a = 0, b = 0;
  bool found = false;
  for (std::size_t i = 0; i < plan.entities.size() && !found; ++i) {
    for (std::size_t j = i + 1; j < plan.entities.size() && !found; ++j) {
      if (plan.entities[i].overlaps(plan.entities[j])) {
        a = i;
        b = j;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);
  VirtualBuffer bad;
  bad.id = static_cast<int>(plan.buffers.size());
  bad.bytes = std::max(plan.entities[a].bytes, plan.entities[b].bytes);
  bad.members = {a, b};
  plan.buffers.push_back(bad);
  plan.buffer_on_chip.push_back(false);
  const auto issues = validate_plan(g, plan);
  bool overlap_reported = false;
  bool multi_owner_reported = false;
  for (const std::string& msg : issues) {
    overlap_reported |= msg.find("overlapping lifespans") != std::string::npos;
    multi_owner_reported |= msg.find("several buffers") != std::string::npos;
  }
  EXPECT_TRUE(overlap_reported);
  EXPECT_TRUE(multi_owner_reported);
}

TEST(PlanValidation, DetectsBadResidency) {
  auto g = models::build_googlenet();
  AllocationPlan plan = compiled_plan(g);
  plan.resident_weights.push_back(9999);
  auto issues = validate_plan(g, plan);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.back().find("bad layer"), std::string::npos);
}

TEST(PlanValidation, UmmPlanIsSound) {
  auto g = models::build_googlenet();
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8);
  const AllocationPlan umm = compiler.compile_umm(g);
  EXPECT_TRUE(validate_plan(g, umm).empty());
}

}  // namespace
}  // namespace lcmm::core
