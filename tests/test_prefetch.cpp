#include <gtest/gtest.h>

#include "core/interference.hpp"
#include "core/prefetch.hpp"
#include "models/models.hpp"
#include "test_graphs.hpp"

namespace lcmm::core {
namespace {

using lcmm::testing::small_design;

LivenessOptions all_layers() {
  LivenessOptions opt;
  opt.include_compute_bound = true;
  return opt;
}

TEST(Prefetch, EdgePerEligibleConvLayer) {
  auto g = lcmm::testing::chain3();
  hw::PerfModel model(g, small_design());
  const PrefetchResult r = build_prefetch_schedule(model, all_layers());
  EXPECT_EQ(r.edges().size(), 3u);  // every conv has weights
  for (const auto& e : r.edges()) {
    EXPECT_GT(e.load_seconds, 0.0);
    EXPECT_LT(e.start_step, g.step_of(e.target));
  }
}

TEST(Prefetch, LookupByTarget) {
  auto g = lcmm::testing::chain3();
  hw::PerfModel model(g, small_design());
  const PrefetchResult r = build_prefetch_schedule(model, all_layers());
  ASSERT_NE(r.edge_for(2), nullptr);
  EXPECT_EQ(r.edge_for(2)->target, 2);
  EXPECT_EQ(r.edge_for(99), nullptr);
}

TEST(Prefetch, BacktraceCoversLoadTime) {
  auto g = models::build_googlenet();
  hw::PerfModel model(g, small_design());
  const PrefetchResult r = build_prefetch_schedule(model, all_layers());
  for (const auto& e : r.edges()) {
    if (e.start_step == kBeforeExecution) continue;
    // The window from start_step to the target must cover the load...
    EXPECT_GE(e.window_seconds, e.load_seconds);
    EXPECT_TRUE(e.fully_hidden());
    // ...and must be minimal: one step later would be too short.
    double shorter = 0.0;
    for (int s = e.start_step + 1; s < g.step_of(e.target); ++s) {
      shorter += model.timing(g.topo_order()[static_cast<std::size_t>(s)])
                     .umm_latency();
    }
    EXPECT_LT(shorter, e.load_seconds);
  }
}

TEST(Prefetch, EarlyLayersCannotHide) {
  auto g = lcmm::testing::chain3();
  hw::PerfModel model(g, small_design());
  const PrefetchResult r = build_prefetch_schedule(model, all_layers());
  // The first conv has no predecessors: nothing to hide behind.
  const PrefetchEdge* first = r.edge_for(0);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->start_step, kBeforeExecution);
  EXPECT_FALSE(first->fully_hidden());
  EXPECT_LT(r.num_fully_hidden(), static_cast<int>(r.edges().size()));
}

TEST(Prefetch, MemoryBoundFilterApplies) {
  auto g = models::build_inception_v4();
  hw::PerfModel model(g, small_design());
  const PrefetchResult bound_only =
      build_prefetch_schedule(model, LivenessOptions{});
  const PrefetchResult all = build_prefetch_schedule(model, all_layers());
  EXPECT_LT(bound_only.edges().size(), all.edges().size());
  for (const auto& e : bound_only.edges()) {
    EXPECT_TRUE(model.timing(e.target).memory_bound());
  }
}

TEST(Prefetch, WeightEntitiesUseWindowLifespans) {
  auto g = models::build_googlenet();
  hw::PerfModel model(g, small_design());
  const PrefetchResult r = build_prefetch_schedule(model, all_layers());
  const auto entities = build_weight_entities(model, r);
  EXPECT_EQ(entities.size(), r.edges().size());
  for (const auto& e : entities) {
    EXPECT_EQ(e.key.source, TensorSource::kWeight);
    const PrefetchEdge* edge = r.edge_for(e.key.layer);
    ASSERT_NE(edge, nullptr);
    EXPECT_EQ(e.def_step, edge->start_step);
    EXPECT_EQ(e.last_use_step, g.step_of(e.key.layer));
    EXPECT_EQ(e.bytes, g.layer_weight_elems(e.key.layer) *
                           hw::bytes_per_elem(model.design().precision));
    EXPECT_DOUBLE_EQ(e.stream_latency_s, model.timing(e.key.layer).wt_s);
  }
}

TEST(Prefetch, DisjointWindowsEnableSharing) {
  // Two far-apart convs in a long chain: their prefetch windows must not
  // overlap, so the weight interference graph lets them share (Fig. 6).
  graph::ComputationGraph g("long_chain");
  auto x = g.add_input("in", {64, 28, 28});
  for (int i = 0; i < 12; ++i) {
    x = g.add_conv("c" + std::to_string(i), x, {64, 3, 3, 1, 1, 1});
  }
  hw::PerfModel model(g, small_design());
  const PrefetchResult r = build_prefetch_schedule(model, all_layers());
  auto entities = build_weight_entities(model, r);
  InterferenceGraph ig(std::move(entities));
  // Find the entities of the 2nd and the 11th conv.
  int a = -1, b = -1;
  for (std::size_t i = 0; i < ig.size(); ++i) {
    if (ig.entities()[i].key.layer == 2) a = static_cast<int>(i);
    if (ig.entities()[i].key.layer == 11) b = static_cast<int>(i);
  }
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_FALSE(ig.interferes(static_cast<std::size_t>(a),
                             static_cast<std::size_t>(b)));
}

TEST(Prefetch, PoolLayersHaveNoEdges) {
  auto g = models::build_googlenet();
  hw::PerfModel model(g, small_design());
  const PrefetchResult r = build_prefetch_schedule(model, all_layers());
  for (const auto& e : r.edges()) {
    EXPECT_TRUE(g.layer(e.target).is_conv());
  }
}

}  // namespace
}  // namespace lcmm::core
