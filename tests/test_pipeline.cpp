#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "models/models.hpp"
#include "test_graphs.hpp"

namespace lcmm::core {
namespace {

TEST(CutPoints, ChainIsFullyCuttable) {
  auto g = lcmm::testing::chain3();
  const auto cuts = legal_cut_points(g);
  // Cuts after steps 0 and 1 (never after the last layer).
  EXPECT_EQ(cuts, (std::vector<int>{0, 1}));
}

TEST(CutPoints, ConcatProducersAreAtomic) {
  auto g = lcmm::testing::diamond();  // left(0), right(1) -> concat -> tail(2)
  const auto cuts = legal_cut_points(g);
  // Cutting between left and right (after step 0) would split the concat
  // value's producers; only the cut after step 1 is legal.
  EXPECT_EQ(cuts, (std::vector<int>{1}));
}

TEST(ExtractSegment, PreservesWorkAndShapes) {
  auto g = models::build_googlenet();
  const int steps = static_cast<int>(g.num_layers());
  const int mid = steps / 2;
  // Find a legal boundary near the middle.
  const auto cuts = legal_cut_points(g);
  int boundary = cuts.front();
  for (int c : cuts) {
    if (std::abs(c - mid) < std::abs(boundary - mid)) boundary = c;
  }
  auto head = extract_segment(g, 0, boundary);
  auto tail = extract_segment(g, boundary + 1, steps - 1);
  EXPECT_EQ(head.num_layers() + tail.num_layers(), g.num_layers());
  EXPECT_EQ(head.total_macs() + tail.total_macs(), g.total_macs());
  EXPECT_EQ(head.total_weight_elems() + tail.total_weight_elems(),
            g.total_weight_elems());
}

TEST(ExtractSegment, FullRangeReproducesGraph) {
  auto g = models::build_squeezenet();
  auto whole = extract_segment(g, 0, static_cast<int>(g.num_layers()) - 1);
  EXPECT_EQ(whole.num_layers(), g.num_layers());
  EXPECT_EQ(whole.total_macs(), g.total_macs());
  EXPECT_EQ(whole.num_conv_layers(), g.num_conv_layers());
}

TEST(ExtractSegment, IllegalCutThrows) {
  auto g = lcmm::testing::diamond();
  // Range [1, 2] would need 'left' (step 0) inside the concat group.
  EXPECT_THROW(extract_segment(g, 1, 2), std::invalid_argument);
  EXPECT_THROW(extract_segment(g, -1, 1), std::invalid_argument);
  EXPECT_THROW(extract_segment(g, 2, 1), std::invalid_argument);
}

TEST(ExtractSegment, ResidualAcrossBoundaryBecomesInput) {
  auto g = lcmm::testing::residual_block();  // reduce(0), conv3(1), expand(2)
  auto tail = extract_segment(g, 2, 2);
  // The expand conv consumes two external values: conv3's output and the
  // residual shortcut.
  EXPECT_EQ(tail.num_layers(), 1u);
  EXPECT_TRUE(tail.layers()[0].has_residual());
  int inputs = 0;
  for (graph::ValueId v : tail.live_values()) {
    inputs += tail.value(v).is_graph_input();
  }
  EXPECT_EQ(inputs, 2);
}

TEST(Partitioner, SliceDividesResources) {
  PipelinePartitioner part(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  const auto slice = part.device_slice(2);
  EXPECT_EQ(slice.dsp_total, 3420);
  EXPECT_EQ(slice.uram_total, 480);
  EXPECT_EQ(slice.ddr_banks, 2);
  // Never starves a slice of DRAM entirely.
  EXPECT_EQ(part.device_slice(8).ddr_banks, 1);
  EXPECT_THROW(part.device_slice(0), std::invalid_argument);
}

TEST(Partitioner, SingleSegmentMatchesPlainLcmm) {
  auto g = models::build_squeezenet();
  PipelinePartitioner part(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  const PipelinePlan plan = part.partition(g, 1);
  ASSERT_EQ(plan.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.bottleneck_s, plan.latency_s);
  EXPECT_EQ(plan.segments[0].subgraph.num_layers(), g.num_layers());
}

TEST(Partitioner, MoreSegmentsImproveThroughput) {
  auto g = models::build_googlenet();
  PipelinePartitioner part(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  const PipelinePlan one = part.partition(g, 1);
  const PipelinePlan two = part.partition(g, 2);
  ASSERT_EQ(two.segments.size(), 2u);
  // Each slice is half the machine, but each stage sees half the work:
  // pipelining should not lose much and usually wins.
  EXPECT_LT(two.bottleneck_s, one.bottleneck_s * 1.15);
  // Segments tile the network exactly.
  EXPECT_EQ(two.segments[0].last_step + 1, two.segments[1].first_step);
  EXPECT_EQ(two.segments[1].last_step,
            static_cast<int>(g.num_layers()) - 1);
}

TEST(Partitioner, BottleneckIsMaxAndLatencyIsSum) {
  auto g = models::build_resnet(50);
  PipelinePartitioner part(hw::FpgaDevice::vu9p(), hw::Precision::kInt8);
  const PipelinePlan plan = part.partition(g, 3);
  ASSERT_EQ(plan.segments.size(), 3u);
  double sum = 0.0, mx = 0.0;
  for (const auto& s : plan.segments) {
    sum += s.latency_s;
    mx = std::max(mx, s.latency_s);
  }
  EXPECT_DOUBLE_EQ(plan.latency_s, sum);
  EXPECT_DOUBLE_EQ(plan.bottleneck_s, mx);
  EXPECT_GT(plan.throughput_images_per_s(), 0.0);
}

TEST(Partitioner, RejectsImpossibleCounts) {
  auto g = lcmm::testing::diamond();  // only one legal cut -> max 2 segments
  PipelinePartitioner part(hw::FpgaDevice::vu9p(), hw::Precision::kInt8);
  EXPECT_THROW(part.partition(g, 5), std::invalid_argument);
  EXPECT_THROW(part.partition(g, 0), std::invalid_argument);
}

}  // namespace
}  // namespace lcmm::core
