// Tests for lcmm::resil — the typed error taxonomy, overflow-checked size
// arithmetic, the deterministic fault-injection registry, and the
// degradation ladder in LcmmCompiler::compile. The FaultMatrix test at the
// bottom is env-driven (LCMM_FAULT) and is what the CI fault-injection
// matrix job runs per registered site.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "check/check.hpp"
#include "core/lcmm.hpp"
#include "driver/batch.hpp"
#include "models/models.hpp"
#include "resil/resil.hpp"
#include "test_graphs.hpp"

namespace lcmm::resil {
namespace {

using core::AllocationPlan;
using core::LcmmCompiler;
using core::LcmmOptions;

// ---------------------------------------------------------------------------
// Error taxonomy.
// ---------------------------------------------------------------------------

TEST(ResilError, StableCodeIds) {
  EXPECT_EQ(code_id(Code::kNoFeasibleDesign), "LCMM-E611");
  EXPECT_EQ(code_id(Code::kTileBuffersDontFit), "LCMM-E612");
  EXPECT_EQ(code_id(Code::kSizeOverflow), "LCMM-E614");
  EXPECT_EQ(code_id(Code::kBadOptions), "LCMM-E651");
  EXPECT_EQ(code_id(Code::kParseError), "LCMM-E701");
  EXPECT_EQ(code_id(Code::kFaultInjected), "LCMM-E801");
  EXPECT_EQ(code_id(Code::kInternal), "LCMM-E899");
}

TEST(ResilError, CodeTableIsSortedUniqueAndNamed) {
  const std::vector<Code>& codes = all_codes();
  ASSERT_FALSE(codes.empty());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(static_cast<int>(codes[i - 1]), static_cast<int>(codes[i]));
    }
    EXPECT_STRNE(code_name(codes[i]), "");
    EXPECT_STRNE(code_summary(codes[i]), "");
  }
}

TEST(ResilError, CompileErrorCarriesTypedPayload) {
  const CompileError e(Code::kTileBuffersDontFit, "pass.place",
                       "tile buffers do not fit on the device", "resnet50");
  EXPECT_EQ(e.code(), Code::kTileBuffersDontFit);
  EXPECT_EQ(e.pass(), "pass.place");
  EXPECT_EQ(e.entity(), "resnet50");
  const std::string what = e.what();
  EXPECT_EQ(what,
            "[LCMM-E612] pass.place: tile buffers do not fit on the device "
            "(entity 'resnet50')");
  // The ladder catches it as a runtime failure; batch code recovers the
  // payload from a plain std::exception reference.
  const std::exception& base = e;
  const ErrorInfo info = describe(base);
  EXPECT_EQ(info.code, Code::kTileBuffersDontFit);
  EXPECT_EQ(info.pass, "pass.place");
}

TEST(ResilError, OptionErrorIsInvalidArgument) {
  // Contract: the seed code threw std::invalid_argument for bad options;
  // OptionError must keep those call sites and tests working.
  try {
    throw OptionError(Code::kBadOptions, "core.options", "Lcmm: bad options");
  } catch (const std::invalid_argument& e) {
    const ErrorInfo info = describe(e);
    EXPECT_EQ(info.code, Code::kBadOptions);
    EXPECT_EQ(info.pass, "core.options");
  }
}

TEST(ResilError, DescribeWrapsForeignExceptionsAsInternal) {
  const std::runtime_error foreign("unexpected");
  const ErrorInfo info = describe(foreign);
  EXPECT_EQ(info.code, Code::kInternal);
  EXPECT_EQ(info.message, "unexpected");
}

TEST(ResilError, TransientClassification) {
  EXPECT_TRUE(is_transient(Code::kFaultInjected));
  EXPECT_TRUE(is_transient(Code::kIoError));
  EXPECT_FALSE(is_transient(Code::kNoFeasibleDesign));
  EXPECT_FALSE(is_transient(Code::kTileBuffersDontFit));
  EXPECT_FALSE(is_transient(Code::kJobTimeout));
  EXPECT_FALSE(is_transient(Code::kBadOptions));
}

TEST(ResilError, RungNamesAreStable) {
  EXPECT_STREQ(rung_name(Rung::kFullLcmm), "full-lcmm");
  EXPECT_STREQ(rung_name(Rung::kShrunkDnnk), "shrunk-dnnk");
  EXPECT_STREQ(rung_name(Rung::kNoPrefetch), "no-prefetch");
  EXPECT_STREQ(rung_name(Rung::kNoFeatureReuse), "no-feature-reuse");
  EXPECT_STREQ(rung_name(Rung::kUmm), "umm");
}

// ---------------------------------------------------------------------------
// Overflow-checked size arithmetic.
// ---------------------------------------------------------------------------

TEST(ResilChecked, MulAndAddPassThroughInRange) {
  EXPECT_EQ(checked_mul(1 << 20, 1 << 20, "t"), std::int64_t{1} << 40);
  EXPECT_EQ(checked_add(std::numeric_limits<std::int64_t>::max() - 1, 1, "t"),
            std::numeric_limits<std::int64_t>::max());
}

TEST(ResilChecked, OverflowRaisesTypedError) {
  constexpr std::int64_t kBig = std::numeric_limits<std::int64_t>::max() / 2;
  try {
    checked_mul(kBig, 3, "test product");
    FAIL() << "expected kSizeOverflow";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.code(), Code::kSizeOverflow);
    EXPECT_NE(std::string(e.what()).find("test product"), std::string::npos);
  }
  EXPECT_THROW(
      checked_add(std::numeric_limits<std::int64_t>::max(), 1, "test sum"),
      CompileError);
}

TEST(ResilChecked, AdversarialShapeElemsOverflowIsTyped) {
  // Dims a malicious .lcmm file can request: the product wraps int64.
  const graph::FeatureShape huge{2000000000, 2000000000, 2000000000};
  try {
    (void)huge.elems();
    FAIL() << "expected kSizeOverflow";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.code(), Code::kSizeOverflow);
  }
}

// ---------------------------------------------------------------------------
// Deadline.
// ---------------------------------------------------------------------------

TEST(ResilDeadline, NonPositiveBudgetMeansUnlimited) {
  const Deadline unlimited(0.0);
  EXPECT_FALSE(unlimited.expired());
  EXPECT_NO_THROW(unlimited.check("any-phase"));
}

TEST(ResilDeadline, ExpiryRaisesJobTimeoutNamingThePhase) {
  const Deadline tight(1e-6);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(tight.expired());
  try {
    tight.check("driver.lcmm");
    FAIL() << "expected kJobTimeout";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.code(), Code::kJobTimeout);
    EXPECT_EQ(e.pass(), "driver.lcmm");
  }
}

// ---------------------------------------------------------------------------
// Fault-injection registry.
// ---------------------------------------------------------------------------

TEST(ResilFault, RegistryListsTheDocumentedSites) {
  const auto sites = fault::sites();
  EXPECT_EQ(sites.size(), 10u);
  for (const char* site : {"io.parse", "dse.explore", "pass.liveness",
                           "pass.coloring", "pass.prefetch", "pass.dnnk",
                           "pass.splitting", "pass.place", "par.task",
                           "driver.job"}) {
    EXPECT_TRUE(fault::is_site(site)) << site;
  }
  EXPECT_FALSE(fault::is_site("pass.unknown"));
}

TEST(ResilFault, ArmingAnUnknownSiteIsAContractViolation) {
  EXPECT_THROW(fault::arm({.site = "pass.unknown"}), OptionError);
}

TEST(ResilFault, ArmedGuardDisarmsOnScopeExit) {
  {
    const fault::ArmedGuard guard({.site = "pass.dnnk"});
    ASSERT_TRUE(fault::armed().has_value());
    EXPECT_EQ(fault::armed()->site, "pass.dnnk");
  }
  EXPECT_FALSE(fault::armed().has_value());
}

TEST(ResilFault, HitIsANoOpWithoutAnActiveScope) {
  const fault::ArmedGuard guard({.site = "pass.dnnk"});
  // No fault::Scope on this thread: armed faults stay dormant, so library
  // code outside a top-level operation never throws.
  EXPECT_NO_THROW(fault::hit("pass.dnnk"));
}

TEST(ResilFault, OneShotFiresExactlyOncePerScope) {
  const fault::ArmedGuard guard({.site = "pass.dnnk", .nth = 1, .fires = 1});
  const fault::Scope scope;
  EXPECT_NO_THROW(fault::hit("pass.place"));  // wrong site
  try {
    fault::hit("pass.dnnk");
    FAIL() << "expected the injected fault";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.code(), Code::kFaultInjected);
    EXPECT_EQ(e.pass(), "pass.dnnk");
  }
  EXPECT_NO_THROW(fault::hit("pass.dnnk"));  // budget consumed
}

TEST(ResilFault, NthSkipsEarlierHitsAndStickyNeverStops) {
  {
    const fault::ArmedGuard guard({.site = "par.task", .nth = 3, .fires = 1});
    const fault::Scope scope;
    EXPECT_NO_THROW(fault::hit("par.task"));
    EXPECT_NO_THROW(fault::hit("par.task"));
    EXPECT_THROW(fault::hit("par.task"), CompileError);
    EXPECT_NO_THROW(fault::hit("par.task"));
  }
  {
    const fault::ArmedGuard guard({.site = "par.task", .nth = 2, .fires = -1});
    const fault::Scope scope;
    EXPECT_NO_THROW(fault::hit("par.task"));
    EXPECT_THROW(fault::hit("par.task"), CompileError);
    EXPECT_THROW(fault::hit("par.task"), CompileError);
  }
}

TEST(ResilFault, EachTopLevelScopeGetsAFreshBudget) {
  const fault::ArmedGuard guard({.site = "pass.dnnk"});
  for (int round = 0; round < 2; ++round) {
    const fault::Scope scope;
    EXPECT_THROW(fault::hit("pass.dnnk"), CompileError) << round;
    EXPECT_NO_THROW(fault::hit("pass.dnnk")) << round;
  }
}

TEST(ResilFault, NestedScopesShareTheOuterBudget) {
  // compile() opens a Scope; compile_umm inside it opens another. The inner
  // one must not reset the budget, or a one-shot fault could fire twice in
  // one operation (and differently across worker counts).
  const fault::ArmedGuard guard({.site = "pass.dnnk"});
  const fault::Scope outer;
  EXPECT_THROW(fault::hit("pass.dnnk"), CompileError);
  {
    const fault::Scope inner;
    EXPECT_NO_THROW(fault::hit("pass.dnnk"));
  }
}

// ---------------------------------------------------------------------------
// Degradation ladder.
// ---------------------------------------------------------------------------

/// Degraded rungs recompile with restricted options; the checker must
/// re-derive budgets from what the plan was actually compiled with.
void expect_check_clean(const graph::ComputationGraph& g,
                        const AllocationPlan& plan, const LcmmOptions& base) {
  const LcmmOptions effective =
      plan.rung == Rung::kUmm ? base : core::degrade_options(base, plan.rung);
  const check::CheckReport report =
      check::run_checks(g, plan, check::CheckOptions::from(effective));
  EXPECT_FALSE(report.fails(false))
      << "rung " << rung_name(plan.rung) << ": " << report.num_errors()
      << " checker errors";
}

TEST(ResilLadder, DegradeOptionsAreCumulative) {
  const LcmmOptions base;
  const LcmmOptions r1 = core::degrade_options(base, Rung::kShrunkDnnk);
  EXPECT_DOUBLE_EQ(r1.dse.tile_bram_fraction, base.dse.tile_bram_fraction * 0.5);
  EXPECT_DOUBLE_EQ(r1.sram_capacity_fraction,
                   base.sram_capacity_fraction * 0.5);
  EXPECT_EQ(r1.alloc.granularity_bytes, base.alloc.granularity_bytes / 4);
  EXPECT_TRUE(r1.weight_prefetch);
  EXPECT_TRUE(r1.feature_reuse);

  const LcmmOptions r2 = core::degrade_options(base, Rung::kNoPrefetch);
  EXPECT_FALSE(r2.weight_prefetch);
  EXPECT_TRUE(r2.feature_reuse);
  EXPECT_DOUBLE_EQ(r2.sram_capacity_fraction, r1.sram_capacity_fraction);

  const LcmmOptions r3 = core::degrade_options(base, Rung::kNoFeatureReuse);
  EXPECT_FALSE(r3.weight_prefetch);
  EXPECT_FALSE(r3.feature_reuse);
  EXPECT_FALSE(r3.buffer_splitting);
}

TEST(ResilLadder, OneShotFaultAtEveryCompileSiteDegradesOneRung) {
  // A single injected failure anywhere on the compile path must cost
  // exactly one rung: the fault fires on full-lcmm, the budget is spent,
  // and shrunk-dnnk completes with a check-clean plan.
  const auto g = lcmm::testing::chain3();
  const LcmmOptions base;
  for (const char* site : {"dse.explore", "pass.liveness", "pass.coloring",
                           "pass.prefetch", "pass.dnnk", "pass.splitting",
                           "pass.place", "par.task"}) {
    const fault::ArmedGuard guard({.site = site});
    const LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16,
                                base);
    const AllocationPlan plan = compiler.compile(g);
    EXPECT_EQ(plan.rung, Rung::kShrunkDnnk) << site;
    EXPECT_EQ(plan.degrade_reason, std::string("LCMM-E801@") + site) << site;
    expect_check_clean(g, plan, base);
  }
}

TEST(ResilLadder, SitesOffTheCompilePathLeaveThePipelineAlone) {
  const auto g = lcmm::testing::chain3();
  for (const char* site : {"io.parse", "driver.job"}) {
    const fault::ArmedGuard guard({.site = site});
    const LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
    const AllocationPlan plan = compiler.compile(g);
    EXPECT_EQ(plan.rung, Rung::kFullLcmm) << site;
    EXPECT_TRUE(plan.degrade_reason.empty()) << site;
  }
}

TEST(ResilLadder, StickyGatedFaultsLandOnTheRungThatDisablesThem) {
  // A persistent failure in a gated pass degrades until the rung that
  // turns the pass off: prefetch faults stop at no-prefetch, liveness
  // faults at no-feature-reuse.
  const auto g = lcmm::testing::chain3();
  const LcmmOptions base;
  {
    const fault::ArmedGuard guard(
        {.site = "pass.prefetch", .nth = 1, .fires = -1});
    const LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16,
                                base);
    const AllocationPlan plan = compiler.compile(g);
    EXPECT_EQ(plan.rung, Rung::kNoPrefetch);
    expect_check_clean(g, plan, base);
  }
  {
    const fault::ArmedGuard guard(
        {.site = "pass.liveness", .nth = 1, .fires = -1});
    const LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16,
                                base);
    const AllocationPlan plan = compiler.compile(g);
    EXPECT_EQ(plan.rung, Rung::kNoFeatureReuse);
    expect_check_clean(g, plan, base);
  }
}

TEST(ResilLadder, StickyUngatedFaultFallsToTheUmmFloor) {
  // pass.dnnk is hit on every LCMM rung but not on the UMM baseline path:
  // the ladder bottoms out shipping UMM, flagged via rung (not is_umm,
  // which mirrors the no-benefit fallback convention).
  const auto g = lcmm::testing::chain3();
  const LcmmOptions base;
  const fault::ArmedGuard guard({.site = "pass.dnnk", .nth = 1, .fires = -1});
  const LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16,
                              base);
  const AllocationPlan plan = compiler.compile(g);
  EXPECT_EQ(plan.rung, Rung::kUmm);
  EXPECT_FALSE(plan.is_umm);
  EXPECT_EQ(plan.degrade_reason, "LCMM-E801@pass.dnnk");
  expect_check_clean(g, plan, base);
}

TEST(ResilLadder, StickyFaultOnASharedSiteDefeatsEvenTheFloor) {
  // pass.place runs on the UMM path too; a persistent failure there leaves
  // no rung to retreat to, and the error propagates typed.
  const auto g = lcmm::testing::chain3();
  const fault::ArmedGuard guard({.site = "pass.place", .nth = 1, .fires = -1});
  const LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  try {
    compiler.compile(g);
    FAIL() << "expected the fault to propagate";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.code(), Code::kFaultInjected);
    EXPECT_EQ(e.pass(), "pass.place");
  }
}

TEST(ResilLadder, StrictModePropagatesInsteadOfDegrading) {
  const auto g = lcmm::testing::chain3();
  LcmmOptions opts;
  opts.strict = true;
  const fault::ArmedGuard guard({.site = "pass.dnnk"});
  const LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16,
                              opts);
  try {
    compiler.compile(g);
    FAIL() << "expected --strict to fail hard";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.code(), Code::kFaultInjected);
  }
}

TEST(ResilLadder, DegradedPlansStillBeatNothing) {
  // The shrunk-dnnk plan is a real LCMM plan: entities allocated, physical
  // placement done, latency estimated.
  const auto g = lcmm::testing::diamond();
  const fault::ArmedGuard guard({.site = "dse.explore"});
  const LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8);
  const AllocationPlan plan = compiler.compile(g);
  EXPECT_EQ(plan.rung, Rung::kShrunkDnnk);
  EXPECT_GT(plan.est_latency_s, 0.0);
  EXPECT_EQ(plan.state.num_layers(), static_cast<std::size_t>(g.num_layers()));
}

// ---------------------------------------------------------------------------
// Batch driver hardening.
// ---------------------------------------------------------------------------

driver::BatchJob small_job(graph::ComputationGraph g,
                           hw::Precision p = hw::Precision::kInt16) {
  return {std::move(g), hw::FpgaDevice::vu9p(), p, LcmmOptions{}};
}

TEST(ResilBatch, TransientFaultIsRetriedOnceAndRecovers) {
  const fault::ArmedGuard guard({.site = "driver.job", .nth = 1, .fires = 1});
  std::vector<driver::BatchJob> jobs;
  jobs.push_back(small_job(lcmm::testing::chain3()));
  const auto outcomes = driver::compile_many(jobs, 1);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].ok()) << outcomes[0].error;
  EXPECT_EQ(outcomes[0].attempts, 2);
  EXPECT_EQ(outcomes[0].label, "chain3");
}

TEST(ResilBatch, RetriesAreBoundedByMaxAttempts) {
  const fault::ArmedGuard guard({.site = "driver.job", .nth = 1, .fires = -1});
  std::vector<driver::BatchJob> jobs;
  jobs.push_back(small_job(lcmm::testing::chain3()));
  jobs.back().max_attempts = 3;
  const auto outcomes = driver::compile_many(jobs, 1);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].ok());
  EXPECT_EQ(outcomes[0].attempts, 3);
  EXPECT_EQ(outcomes[0].error_info.code, Code::kFaultInjected);
  EXPECT_EQ(outcomes[0].error_info.pass, "driver.job");
}

TEST(ResilBatch, DeterministicFailuresDoNotRetry) {
  hw::FpgaDevice no_dsps = hw::FpgaDevice::vu9p();
  no_dsps.dsp_total = 0;
  std::vector<driver::BatchJob> jobs;
  jobs.push_back(small_job(lcmm::testing::chain3()));
  jobs.back().device = no_dsps;
  jobs.back().label = "chain3/no-dsps";
  const auto outcomes = driver::compile_many(jobs, 1);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].ok());
  EXPECT_EQ(outcomes[0].attempts, 1);  // kNoFeasibleDesign is not transient
  EXPECT_EQ(outcomes[0].error_info.code, Code::kNoFeasibleDesign);
  EXPECT_EQ(outcomes[0].label, "chain3/no-dsps");
}

TEST(ResilBatch, TimeoutIsTypedAndFinal) {
  std::vector<driver::BatchJob> jobs;
  jobs.push_back(small_job(lcmm::testing::chain3()));
  jobs.back().timeout_s = 1e-9;
  const auto outcomes = driver::compile_many(jobs, 1);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].ok());
  EXPECT_TRUE(outcomes[0].timed_out);
  EXPECT_EQ(outcomes[0].error_info.code, Code::kJobTimeout);
  EXPECT_EQ(outcomes[0].attempts, 1);  // a retry is not a deadline refill
}

TEST(ResilBatch, SweepSurvivesAMidListFailure) {
  hw::FpgaDevice no_dsps = hw::FpgaDevice::vu9p();
  no_dsps.dsp_total = 0;
  std::vector<driver::BatchJob> jobs;
  jobs.push_back(small_job(lcmm::testing::chain3()));
  jobs.push_back(small_job(lcmm::testing::diamond()));
  jobs.back().device = no_dsps;
  jobs.push_back(small_job(lcmm::testing::residual_block()));
  const auto outcomes = driver::compile_many(jobs, 3);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok()) << outcomes[0].error;
  EXPECT_FALSE(outcomes[1].ok());
  EXPECT_TRUE(outcomes[2].ok()) << outcomes[2].error;
}

TEST(ResilBatch, FaultedOutcomesAreWorkerCountIndependent) {
  // The acceptance bar: under an armed fault, --jobs 1 and --jobs 8 must
  // produce byte-identical outcomes — same rung, same errors, same
  // latencies. Sticky pass.prefetch degrades every LCMM plan to the
  // no-prefetch rung deterministically.
  const fault::ArmedGuard guard(
      {.site = "pass.prefetch", .nth = 1, .fires = -1});
  const auto sweep = [](int workers) {
    std::vector<driver::BatchJob> jobs;
    jobs.push_back(small_job(lcmm::testing::chain3()));
    jobs.push_back(small_job(lcmm::testing::diamond()));
    jobs.push_back(small_job(lcmm::testing::residual_block(),
                             hw::Precision::kInt8));
    jobs.push_back(small_job(lcmm::testing::chain3(), hw::Precision::kInt8));
    return driver::compile_many(jobs, workers);
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].ok(), parallel[i].ok()) << i;
    EXPECT_EQ(serial[i].error, parallel[i].error) << i;
    EXPECT_EQ(serial[i].attempts, parallel[i].attempts) << i;
    EXPECT_EQ(serial[i].lcmm_plan.rung, parallel[i].lcmm_plan.rung) << i;
    EXPECT_EQ(serial[i].lcmm_plan.rung, Rung::kNoPrefetch) << i;
    EXPECT_EQ(serial[i].umm_report.latency_ms, parallel[i].umm_report.latency_ms)
        << i;
    EXPECT_EQ(serial[i].lcmm_report.latency_ms,
              parallel[i].lcmm_report.latency_ms)
        << i;
  }
}

TEST(ResilBatch, ReportsCarryTheRung) {
  const fault::ArmedGuard guard({.site = "pass.dnnk", .nth = 1, .fires = -1});
  std::vector<driver::BatchJob> jobs;
  jobs.push_back(small_job(lcmm::testing::chain3()));
  const auto outcomes = driver::compile_many(jobs, 1);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].ok()) << outcomes[0].error;
  EXPECT_EQ(outcomes[0].lcmm_report.rung, "umm");
  EXPECT_EQ(outcomes[0].lcmm_report.degrade_reason, "LCMM-E801@pass.dnnk");
  EXPECT_EQ(outcomes[0].umm_report.rung, "umm");
}

// ---------------------------------------------------------------------------
// Env-driven fault matrix (the CI job's entry point).
// ---------------------------------------------------------------------------

// Run with LCMM_FAULT=<site> (one-shot by default): every registered model
// must still compile to a check-clean plan, degrading no further than UMM.
// Skips when LCMM_FAULT is unset so plain ctest runs are unaffected.
TEST(FaultMatrix, EveryModelCompilesCheckCleanUnderEnvFault) {
  { const fault::Scope force_env_arm; }  // LCMM_FAULT is read lazily
  const auto config = fault::armed();
  if (!config.has_value()) {
    GTEST_SKIP() << "LCMM_FAULT not set; nothing to inject";
  }
  const LcmmOptions base;
  for (const std::string& name : models::model_names()) {
    SCOPED_TRACE("model " + name + ", fault " + config->site);
    const auto g = models::build_by_name(name);
    const LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16,
                                base);
    const AllocationPlan plan = compiler.compile(g);
    EXPECT_LE(static_cast<int>(plan.rung), static_cast<int>(Rung::kUmm));
    expect_check_clean(g, plan, base);
  }
}

}  // namespace
}  // namespace lcmm::resil
