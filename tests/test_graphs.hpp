// Shared hand-built graphs for the unit tests.
#pragma once

#include "graph/graph.hpp"
#include "hw/dse.hpp"
#include "hw/perf_model.hpp"

namespace lcmm::testing {

/// input -> A -> B -> C : a three-conv chain on a 32x28x28 input.
inline graph::ComputationGraph chain3() {
  graph::ComputationGraph g("chain3");
  auto x = g.add_input("in", {32, 28, 28});
  x = g.add_conv("A", x, {64, 3, 3, 1, 1, 1});
  x = g.add_conv("B", x, {64, 3, 3, 1, 1, 1});
  g.add_conv("C", x, {128, 1, 1, 1, 0, 0});
  g.validate();
  return g;
}

/// Diamond: input feeds two branches which concat; mirrors the f1/f2
/// same-data-multiple-consumers situation of the paper's Fig. 3.
inline graph::ComputationGraph diamond() {
  graph::ComputationGraph g("diamond");
  auto in = g.add_input("in", {64, 14, 14});
  auto a = g.add_conv("left", in, {32, 1, 1, 1, 0, 0});
  auto b = g.add_conv("right", in, {32, 3, 3, 1, 1, 1});
  std::array<graph::ValueId, 2> parts{a, b};
  auto cat = g.add_concat("cat", parts);
  g.add_conv("tail", cat, {64, 1, 1, 1, 0, 0});
  g.validate();
  return g;
}

/// Residual bottleneck: conv -> conv with fused shortcut add.
inline graph::ComputationGraph residual_block() {
  graph::ComputationGraph g("residual");
  auto in = g.add_input("in", {256, 14, 14});
  auto mid = g.add_conv("reduce", in, {64, 1, 1, 1, 0, 0});
  auto mid2 = g.add_conv("conv3", mid, {64, 3, 3, 1, 1, 1});
  g.add_conv("expand", mid2, {256, 1, 1, 1, 0, 0}, /*residual=*/in);
  g.validate();
  return g;
}

/// A fixed, small accelerator design so tests don't depend on DSE choices.
inline hw::AcceleratorDesign small_design(
    hw::Precision p = hw::Precision::kInt8) {
  hw::AcceleratorDesign d;
  d.device = hw::FpgaDevice::vu9p();
  d.precision = p;
  d.array = {16, 8, 8};
  d.tile = {64, 14, 14};
  d.freq_mhz = 200.0;
  return d;
}

}  // namespace lcmm::testing
