#include <gtest/gtest.h>

#include <array>

#include "graph/dot.hpp"
#include "graph/graph.hpp"
#include "test_graphs.hpp"

namespace lcmm::graph {
namespace {

TEST(FeatureShape, ElemsAndToString) {
  FeatureShape s{64, 28, 28};
  EXPECT_EQ(s.elems(), 64 * 28 * 28);
  EXPECT_EQ(s.to_string(), "64x28x28");
}

TEST(Layer, ConvShapeInferenceSamePadding) {
  Layer l;
  l.kind = LayerKind::kConv;
  l.conv = {128, 3, 3, 1, 1, 1};
  const FeatureShape out = infer_output_shape(l, {64, 28, 28});
  EXPECT_EQ(out.channels, 128);
  EXPECT_EQ(out.height, 28);
  EXPECT_EQ(out.width, 28);
}

TEST(Layer, ConvShapeInferenceStridedValid) {
  Layer l;
  l.kind = LayerKind::kConv;
  l.conv = {32, 3, 3, 2, 0, 0};
  const FeatureShape out = infer_output_shape(l, {3, 299, 299});
  EXPECT_EQ(out.height, 149);
  EXPECT_EQ(out.width, 149);
}

TEST(Layer, AsymmetricKernelShapes) {
  Layer l;
  l.kind = LayerKind::kConv;
  l.conv = {224, 1, 7, 1, 0, 3};
  const FeatureShape out = infer_output_shape(l, {192, 17, 17});
  EXPECT_EQ(out.height, 17);
  EXPECT_EQ(out.width, 17);
}

TEST(Layer, PoolCeilVersusFloor) {
  Layer ceil_pool;
  ceil_pool.kind = LayerKind::kPool;
  ceil_pool.pool = {PoolType::kMax, 3, 2, 0, false, /*ceil_mode=*/true};
  EXPECT_EQ(infer_output_shape(ceil_pool, {64, 112, 112}).height, 56);

  Layer floor_pool;
  floor_pool.kind = LayerKind::kPool;
  floor_pool.pool = {PoolType::kMax, 3, 2, 1, false, /*ceil_mode=*/false};
  EXPECT_EQ(infer_output_shape(floor_pool, {64, 112, 112}).height, 56);
}

TEST(Layer, GlobalPoolCollapsesSpatial) {
  Layer l;
  l.kind = LayerKind::kPool;
  l.pool = {PoolType::kAvg, 0, 1, 0, /*global=*/true};
  const FeatureShape out = infer_output_shape(l, {2048, 7, 7});
  EXPECT_EQ(out.height, 1);
  EXPECT_EQ(out.width, 1);
  EXPECT_EQ(out.channels, 2048);
}

TEST(Layer, OversizedWindowThrows) {
  Layer l;
  l.kind = LayerKind::kConv;
  l.conv = {8, 9, 9, 1, 0, 0};
  EXPECT_THROW(infer_output_shape(l, {3, 5, 5}), std::invalid_argument);
}

TEST(Layer, WeightElemsAndMacs) {
  Layer l;
  l.kind = LayerKind::kConv;
  l.conv = {128, 3, 3, 1, 1, 1};
  EXPECT_EQ(l.weight_elems(64), 128 * 64 * 9);
  const std::int64_t macs = l.macs({64, 28, 28}, {128, 28, 28});
  EXPECT_EQ(macs, static_cast<std::int64_t>(128) * 28 * 28 * 64 * 9);
}

TEST(Layer, ResidualAddsMacs) {
  Layer l;
  l.kind = LayerKind::kConv;
  l.conv = {256, 1, 1, 1, 0, 0};
  l.residual = 0;  // any valid-looking id
  const std::int64_t macs = l.macs({64, 14, 14}, {256, 14, 14});
  EXPECT_EQ(macs, static_cast<std::int64_t>(256) * 14 * 14 * 64 +
                      static_cast<std::int64_t>(256) * 14 * 14);
}

TEST(Graph, BuilderProducesTopologicalIds) {
  auto g = lcmm::testing::chain3();
  EXPECT_EQ(g.num_layers(), 3u);
  const auto& order = g.topo_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<LayerId>(i));
    EXPECT_EQ(g.step_of(order[i]), static_cast<int>(i));
  }
}

TEST(Graph, ConsumersAndProducersTracked) {
  auto g = lcmm::testing::diamond();
  const Value& in = g.value(g.layer(0).input);
  EXPECT_TRUE(in.is_graph_input());
  EXPECT_EQ(in.consumers.size(), 2u);  // left and right
  const Value& cat = g.value(g.layer(2).input);
  EXPECT_EQ(cat.producers.size(), 2u);
}

TEST(Graph, ConcatMergesChannelsAndRetiresParts) {
  graph::ComputationGraph g("t");
  auto in = g.add_input("in", {8, 4, 4});
  auto a = g.add_conv("a", in, {16, 1, 1, 1, 0, 0});
  auto b = g.add_conv("b", in, {24, 1, 1, 1, 0, 0});
  std::array<ValueId, 2> parts{a, b};
  auto cat = g.add_concat("cat", parts);
  EXPECT_EQ(g.value(cat).shape.channels, 40);
  EXPECT_FALSE(g.value_alive(a));
  EXPECT_THROW((void)g.value(a), std::logic_error);
  // Channel offsets cover the concatenated value.
  EXPECT_EQ(g.layer(0).output_channel_offset, 0);
  EXPECT_EQ(g.layer(1).output_channel_offset, 16);
  g.validate();
}

TEST(Graph, ConcatRejectsConsumedParts) {
  graph::ComputationGraph g("t");
  auto in = g.add_input("in", {8, 4, 4});
  auto a = g.add_conv("a", in, {16, 1, 1, 1, 0, 0});
  auto b = g.add_conv("b", in, {16, 1, 1, 1, 0, 0});
  g.add_conv("user", a, {8, 1, 1, 1, 0, 0});  // consumes a
  std::array<ValueId, 2> parts{a, b};
  EXPECT_THROW(g.add_concat("cat", parts), std::invalid_argument);
}

TEST(Graph, ConcatRejectsSpatialMismatch) {
  graph::ComputationGraph g("t");
  auto in = g.add_input("in", {8, 8, 8});
  auto a = g.add_conv("a", in, {16, 1, 1, 1, 0, 0});
  auto b = g.add_conv("b", in, {16, 3, 3, 2, 1, 1});  // 4x4
  std::array<ValueId, 2> parts{a, b};
  EXPECT_THROW(g.add_concat("cat", parts), std::invalid_argument);
}

TEST(Graph, ResidualShapeMismatchThrows) {
  graph::ComputationGraph g("t");
  auto in = g.add_input("in", {64, 14, 14});
  auto mid = g.add_conv("mid", in, {32, 1, 1, 1, 0, 0});
  EXPECT_THROW(g.add_conv("bad", mid, {128, 1, 1, 1, 0, 0}, /*residual=*/in),
               std::invalid_argument);
}

TEST(Graph, FcRequiresOneByOneInput) {
  graph::ComputationGraph g("t");
  auto in = g.add_input("in", {64, 7, 7});
  EXPECT_THROW(g.add_fc("fc", in, 10), std::invalid_argument);
  auto pooled = g.add_pool("gap", in, {PoolType::kAvg, 0, 1, 0, true});
  auto out = g.add_fc("fc", pooled, 10);
  EXPECT_EQ(g.value(out).shape.channels, 10);
}

TEST(Graph, StagesRecordedInOrder) {
  graph::ComputationGraph g("t");
  g.set_stage("alpha");
  auto in = g.add_input("in", {8, 4, 4});
  auto x = g.add_conv("a", in, {8, 1, 1, 1, 0, 0});
  g.set_stage("beta");
  g.add_conv("b", x, {8, 1, 1, 1, 0, 0});
  EXPECT_EQ(g.layer(0).stage, "alpha");
  EXPECT_EQ(g.layer(1).stage, "beta");
  const auto stages = g.stages();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0], "alpha");
  EXPECT_EQ(stages[1], "beta");
}

TEST(Graph, TotalsAggregatePerLayerValues) {
  auto g = lcmm::testing::chain3();
  std::int64_t macs = 0, weights = 0;
  for (const Layer& l : g.layers()) {
    macs += g.layer_macs(l.id);
    weights += g.layer_weight_elems(l.id);
  }
  EXPECT_EQ(g.total_macs(), macs);
  EXPECT_EQ(g.total_weight_elems(), weights);
  EXPECT_EQ(g.num_conv_layers(), 3);
}

TEST(Graph, OutOfRangeAccessesThrow) {
  auto g = lcmm::testing::chain3();
  EXPECT_THROW((void)g.layer(99), std::out_of_range);
  EXPECT_THROW((void)g.value(-1), std::out_of_range);
  EXPECT_THROW((void)g.step_of(99), std::out_of_range);
}

TEST(Graph, BadInputShapeThrows) {
  graph::ComputationGraph g("t");
  EXPECT_THROW(g.add_input("in", {0, 4, 4}), std::invalid_argument);
}

TEST(Dot, ContainsNodesAndEdges) {
  auto g = lcmm::testing::residual_block();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("reduce"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // residual edge
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace lcmm::graph
