#include <gtest/gtest.h>

#include "core/lcmm.hpp"
#include "models/models.hpp"
#include "test_graphs.hpp"

namespace lcmm::core {
namespace {

class LcmmIntegration
    : public ::testing::TestWithParam<std::tuple<const char*, hw::Precision>> {};

TEST_P(LcmmIntegration, PlanInvariants) {
  const auto [name, precision] = GetParam();
  auto g = models::build_by_name(name);
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), precision);

  const AllocationPlan umm = compiler.compile_umm(g);
  const AllocationPlan plan = compiler.compile(g);

  // 1. The Eq. 1 estimate never regresses past the UMM estimate under the
  //    SAME design; across designs the end-to-end claim is checked by the
  //    simulator tests.
  EXPECT_LE(plan.est_latency_s, plan.umm_latency_s * (1.0 + 1e-9));
  EXPECT_GT(plan.est_latency_s, 0.0);

  // 2. Resource accounting stays within the device.
  EXPECT_LE(plan.bram_used, plan.bram_total);
  EXPECT_LE(plan.uram_used, plan.uram_total);
  EXPECT_GE(plan.tensor_buffer_bytes, 0);
  EXPECT_LE(umm.sram_utilization(), plan.sram_utilization() + 1e-9);

  // 3. POL is a valid fraction and memory-bound layers exist.
  EXPECT_GE(plan.pol(), 0.0);
  EXPECT_LE(plan.pol(), 1.0);
  EXPECT_GT(plan.num_memory_bound_conv, 0) << "model should have bottlenecks";

  // 4. Buffer bookkeeping: on-chip buffers have matching physical records
  //    (promotion may add extra physical buffers beyond the colored ones).
  std::size_t on = 0;
  for (bool b : plan.buffer_on_chip) on += b;
  EXPECT_GE(plan.physical.size(), on);

  // 5. Every on-chip tensor belongs to an on-chip buffer.
  for (std::size_t b = 0; b < plan.buffers.size(); ++b) {
    if (plan.buffer_on_chip[b]) continue;
    for (std::size_t e : plan.buffers[b].members) {
      const TensorEntity& entity = plan.entities[e];
      // Off-chip buffers leave tensors off-chip, unless the residency
      // propagation pass granted a consumer a free read.
      if (entity.key.source == TensorSource::kWeight) {
        EXPECT_FALSE(plan.state.is_on(entity.key)) << entity.name;
      }
    }
  }

  // 6. UMM plan really is uniform.
  EXPECT_TRUE(umm.is_umm);
  EXPECT_EQ(umm.state.count(), 0);
  EXPECT_EQ(umm.tensor_buffer_bytes, 0);
  EXPECT_DOUBLE_EQ(umm.est_latency_s, umm.umm_latency_s);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndPrecisions, LcmmIntegration,
    ::testing::Combine(::testing::Values("resnet152", "googlenet",
                                         "inception_v4"),
                       ::testing::Values(hw::Precision::kInt8,
                                         hw::Precision::kInt16,
                                         hw::Precision::kFp32)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

TEST(Lcmm, SpeedupOnMemoryBoundModels) {
  // The headline claim, at the estimate level: LCMM beats UMM on the
  // evaluated models (the exact factor is the benches' business).
  auto g = models::build_resnet(152);
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  const auto umm = compiler.compile_umm(g);
  const auto plan = compiler.compile(g);
  EXPECT_LT(plan.est_latency_s, umm.est_latency_s);
}

TEST(Lcmm, PassTogglesChangeEntitySets) {
  auto g = models::build_googlenet();
  LcmmOptions features_only;
  features_only.weight_prefetch = false;
  features_only.allow_fallback_to_umm = false;
  LcmmOptions weights_only;
  weights_only.feature_reuse = false;
  weights_only.allow_fallback_to_umm = false;

  LcmmCompiler fc(hw::FpgaDevice::vu9p(), hw::Precision::kInt16, features_only);
  LcmmCompiler wc(hw::FpgaDevice::vu9p(), hw::Precision::kInt16, weights_only);
  const auto fplan = fc.compile(g);
  const auto wplan = wc.compile(g);
  for (const auto& e : fplan.entities) {
    EXPECT_NE(e.key.source, TensorSource::kWeight);
  }
  for (const auto& e : wplan.entities) {
    EXPECT_EQ(e.key.source, TensorSource::kWeight);
  }
  EXPECT_TRUE(wplan.prefetch.edges().size() > 0);
  EXPECT_TRUE(fplan.prefetch.edges().empty());
}

TEST(Lcmm, AllocatorKindsAllProduceValidPlans) {
  auto g = lcmm::testing::chain3();
  for (AllocatorKind kind :
       {AllocatorKind::kDnnk, AllocatorKind::kGreedy, AllocatorKind::kExact}) {
    LcmmOptions opt;
    opt.allocator = kind;
    opt.liveness.include_compute_bound = true;
    LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8, opt);
    const auto plan = compiler.compile(g);
    EXPECT_LE(plan.est_latency_s, plan.umm_latency_s * (1 + 1e-9));
  }
}

TEST(Lcmm, ResidencyPromotionGrowsUramUse) {
  auto g = models::build_resnet(152);
  LcmmOptions with, without;
  without.residency_promotion = false;
  LcmmCompiler cw(hw::FpgaDevice::vu9p(), hw::Precision::kInt16, with);
  LcmmCompiler co(hw::FpgaDevice::vu9p(), hw::Precision::kInt16, without);
  const auto pw = cw.compile(g);
  const auto po = co.compile(g);
  EXPECT_GT(pw.uram_used, po.uram_used);
  EXPECT_FALSE(pw.resident_weights.empty());
  EXPECT_TRUE(po.resident_weights.empty());
}

TEST(Lcmm, CompileWithDesignSkipsDse) {
  auto g = lcmm::testing::chain3();
  LcmmOptions opt;
  opt.liveness.include_compute_bound = true;
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8, opt);
  const auto design = lcmm::testing::small_design();
  const auto plan = compiler.compile_with_design(g, design);
  EXPECT_EQ(plan.design.array, design.array);
  EXPECT_EQ(plan.design.tile, design.tile);
}

TEST(Lcmm, BadOptionsThrow) {
  LcmmOptions opt;
  opt.sram_capacity_fraction = 0.0;
  EXPECT_THROW(LcmmCompiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8, opt),
               std::invalid_argument);
  opt = LcmmOptions{};
  opt.dse_passes = 0;
  EXPECT_THROW(LcmmCompiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8, opt),
               std::invalid_argument);
}

TEST(Lcmm, LinearModelsStillCompile) {
  // AlexNet/VGG are the "simple networks" of the introduction: LCMM should
  // degrade gracefully (weights dominate; features mostly compute bound).
  for (const char* name : {"alexnet", "vgg16"}) {
    auto g = models::build_by_name(name);
    LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
    const auto plan = compiler.compile(g);
    EXPECT_LE(plan.est_latency_s, plan.umm_latency_s * (1 + 1e-9)) << name;
  }
}

TEST(Lcmm, OutputResidencyPropagatesFreeReads) {
  // A chain where every layer is memory bound: if the producer's output
  // entity is on-chip, the consumer's read must be granted even when its
  // own input entity was not separately allocated.
  graph::ComputationGraph g("chain");
  auto x = g.add_input("in", {256, 28, 28});
  x = g.add_conv("a", x, {256, 1, 1, 1, 0, 0});
  g.add_conv("b", x, {256, 1, 1, 1, 0, 0});
  g.validate();
  LcmmOptions opt;
  opt.liveness.include_compute_bound = true;
  LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt8, opt);
  const auto plan = compiler.compile(g);
  if (plan.state.is_on({0, TensorSource::kOutput})) {
    EXPECT_TRUE(plan.state.is_on({1, TensorSource::kInput}));
  }
}

}  // namespace
}  // namespace lcmm::core
