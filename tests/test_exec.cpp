// Functional cross-validation: the tile-schedule executor must reproduce
// the reference interpreter EXACTLY (integer arithmetic), proving the
// halo/offset/grouping arithmetic the performance model bills for.
#include <gtest/gtest.h>

#include "exec/reference.hpp"
#include "exec/tiled.hpp"
#include "test_graphs.hpp"
#include "util/rng.hpp"

namespace lcmm::exec {
namespace {

hw::AcceleratorDesign tiny_design(int rows, int tc, int th, int tw) {
  hw::AcceleratorDesign d = lcmm::testing::small_design();
  d.array = {rows, 4, 4};
  d.tile = {tc, th, tw};
  return d;
}

void expect_equal(const graph::ComputationGraph& g,
                  const hw::AcceleratorDesign& design, std::uint64_t seed) {
  const ValueMap ref = reference_execute(g, seed);
  const ValueMap tiled = tiled_execute(g, design, seed);
  ASSERT_EQ(ref.size(), tiled.size());
  for (const auto& [vid, tensor] : ref) {
    const auto it = tiled.find(vid);
    ASSERT_NE(it, tiled.end());
    EXPECT_EQ(it->second, tensor) << g.name() << " value " << vid;
  }
}

TEST(Exec, SynthesisIsDeterministic) {
  const Tensor3i a = synthesize_input({4, 5, 5}, 7);
  const Tensor3i b = synthesize_input({4, 5, 5}, 7);
  const Tensor3i c = synthesize_input({4, 5, 5}, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (std::int64_t v : a.raw()) {
    EXPECT_GE(v, -8);
    EXPECT_LE(v, 7);
  }
}

TEST(Exec, ReferenceConvKnownValues) {
  // 1-channel 1x1 input, 1x1 kernel: output = input * weight.
  graph::ComputationGraph g("k");
  auto in = g.add_input("in", {1, 1, 1});
  g.add_conv("c", in, {1, 1, 1, 1, 0, 0});
  const ValueMap values = reference_execute(g, 3);
  const auto w = synthesize_weights(g, 0, 3);
  const std::int64_t x = values.at(g.layers()[0].input).at(0, 0, 0);
  EXPECT_EQ(values.at(g.layers()[0].output).at(0, 0, 0), x * w.at(0, 0, 0, 0));
}

TEST(Exec, ReferencePaddingContributesZero) {
  // All-ones 3x3 kernel over a 1-channel image: corner output = sum of the
  // 2x2 in-bounds window.
  graph::ComputationGraph g("pad");
  auto in = g.add_input("in", {1, 4, 4});
  g.add_conv("c", in, {1, 3, 3, 1, 1, 1});
  const std::uint64_t seed = 11;
  ValueMap values = reference_execute(g, seed);
  const Tensor3i& x = values.at(g.layers()[0].input);
  const auto w = synthesize_weights(g, 0, seed);
  std::int64_t expect = 0;
  for (int i = 1; i < 3; ++i) {
    for (int j = 1; j < 3; ++j) {
      expect += x.at(0, i - 1, j - 1) * w.at(0, 0, i, j);
    }
  }
  EXPECT_EQ(values.at(g.layers()[0].output).at(0, 0, 0), expect);
}

TEST(Exec, TiledMatchesReferenceChain) {
  expect_equal(lcmm::testing::chain3(), tiny_design(16, 16, 7, 7), 1);
}

TEST(Exec, TiledMatchesReferenceDiamondConcat) {
  expect_equal(lcmm::testing::diamond(), tiny_design(8, 32, 5, 5), 2);
}

TEST(Exec, TiledMatchesReferenceResidual) {
  expect_equal(lcmm::testing::residual_block(), tiny_design(32, 64, 6, 6), 3);
}

TEST(Exec, TiledMatchesReferenceStridedValid) {
  graph::ComputationGraph g("sv");
  auto x = g.add_input("in", {3, 23, 23});  // prime-ish extents
  x = g.add_conv("a", x, {8, 5, 5, 3, 2, 2});
  x = g.add_conv("b", x, {16, 3, 3, 2, 0, 0});
  g.add_pool("p", x, {graph::PoolType::kMax, 2, 2, 0});
  g.validate();
  expect_equal(g, tiny_design(8, 4, 3, 3), 4);
}

TEST(Exec, TiledMatchesReferenceAsymmetric) {
  graph::ComputationGraph g("asym");
  auto x = g.add_input("in", {6, 9, 13});
  x = g.add_conv("a", x, {8, 1, 7, 1, 0, 3});
  g.add_conv("b", x, {4, 7, 1, 1, 3, 0});
  g.validate();
  expect_equal(g, tiny_design(4, 4, 4, 5), 5);
}

TEST(Exec, TiledMatchesReferenceGroupedAndDepthwise) {
  graph::ComputationGraph g("dw");
  auto x = g.add_input("in", {16, 10, 10});
  graph::ConvParams dw{16, 3, 3, 1, 1, 1};
  dw.groups = 16;
  x = g.add_conv("dw", x, dw);
  graph::ConvParams grouped{32, 1, 1, 1, 0, 0};
  grouped.groups = 4;
  g.add_conv("g4", x, grouped);
  g.validate();
  // rows > channels-per-group: m-tiles span several groups.
  expect_equal(g, tiny_design(8, 4, 4, 4), 6);
  // rows < channels-per-group as well.
  expect_equal(g, tiny_design(2, 16, 10, 10), 7);
}

TEST(Exec, TiledMatchesReferenceAvgPoolAndFc) {
  graph::ComputationGraph g("head");
  auto x = g.add_input("in", {8, 7, 7});
  x = g.add_pool("gap", x, {graph::PoolType::kAvg, 7, 1, 0, true});
  g.add_fc("fc", x, 10);
  g.validate();
  expect_equal(g, tiny_design(4, 8, 1, 1), 8);
}

TEST(Exec, RandomGraphSweep) {
  // Random shapes/tiles: the strongest halo/offset fuzz we have.
  util::Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    graph::ComputationGraph g("fuzz" + std::to_string(trial));
    const int h = 6 + static_cast<int>(rng.next_below(12));
    auto x = g.add_input("in", {static_cast<int>(4 << rng.next_below(2)), h, h});
    const int layers = 2 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < layers; ++i) {
      const int k = 1 + 2 * static_cast<int>(rng.next_below(2));  // 1 or 3
      const int stride = 1 + static_cast<int>(rng.next_below(2));
      x = g.add_conv("c" + std::to_string(i), x,
                     {static_cast<int>(4 << rng.next_below(3)), k, k, stride,
                      k / 2, k / 2});
    }
    g.validate();
    const int rows = 2 << rng.next_below(3);
    const int tile = 3 + static_cast<int>(rng.next_below(6));
    expect_equal(g, tiny_design(rows, 4 << rng.next_below(3), tile, tile),
                 100 + trial);
  }
}

TEST(Exec, InvalidDesignRejected) {
  graph::ComputationGraph g("t");
  auto in = g.add_input("in", {1, 8, 8});
  g.add_conv("c", in, {1, 3, 3, 1, 1, 1});
  hw::AcceleratorDesign bad = tiny_design(4, 4, 4, 4);
  bad.tile.tc = 0;
  EXPECT_THROW(tiled_execute(g, bad, 1), std::invalid_argument);
}

TEST(Exec, ConcatSlicesLandAtOffsets) {
  auto g = lcmm::testing::diamond();
  const ValueMap ref = reference_execute(g, 42);
  // The concat value's first 32 channels come from "left", the rest from
  // "right": recompute left's corner output by hand.
  const graph::Layer& left = g.layers()[0];
  const Tensor3i& input = ref.at(left.input);
  const auto w = synthesize_weights(g, left.id, 42);
  std::int64_t acc = 0;
  for (int c = 0; c < input.shape().channels; ++c) {
    acc += input.at(c, 0, 0) * w.at(0, c, 0, 0);
  }
  EXPECT_EQ(ref.at(left.output).at(left.output_channel_offset, 0, 0), acc);
}

}  // namespace
}  // namespace lcmm::exec
