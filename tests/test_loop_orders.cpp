#include <gtest/gtest.h>

#include "hw/perf_model.hpp"
#include "models/models.hpp"
#include "test_graphs.hpp"

namespace lcmm::hw {
namespace {

using lcmm::testing::small_design;

graph::ComputationGraph fat_1x1() {
  graph::ComputationGraph g("fat");
  auto in = g.add_input("in", {512, 28, 28});
  g.add_conv("c", in, {256, 1, 1, 1, 0, 0});
  g.validate();
  return g;
}

TEST(LoopOrders, DefaultIsOutputStationaryEverywhere) {
  auto g = models::build_googlenet();
  PerfModel model(g, small_design(Precision::kInt16));
  for (const auto& l : g.layers()) {
    EXPECT_EQ(model.timing(l.id).order, LoopOrder::kOutputStationary) << l.name;
  }
}

TEST(LoopOrders, InputStationaryStreamsInputOnce) {
  auto g = fat_1x1();
  AcceleratorDesign base = small_design();
  base.array = {16, 8, 16};  // wide SIMD: decisively input-transfer bound
  AcceleratorDesign roomy = base;
  roomy.stationary_buffer_bytes = std::int64_t{8} << 20;
  PerfModel mb(g, base), mr(g, roomy);
  const auto& tb = mb.timing(0);
  const auto& tr = mr.timing(0);
  // The 1x1 layer is if-bound with m-tile reloads; with a stationary
  // buffer it switches order and the if traffic collapses to one sweep.
  ASSERT_TRUE(tb.memory_bound());
  EXPECT_EQ(tr.order, LoopOrder::kInputStationary);
  EXPECT_LT(tr.if_bytes, tb.if_bytes);
  EXPECT_NEAR(tr.if_bytes, 512.0 * 28 * 28, 1.0);
  EXPECT_LE(tr.umm_latency(), tb.umm_latency());
}

TEST(LoopOrders, InfeasibleBudgetKeepsBaseline) {
  auto g = fat_1x1();
  AcceleratorDesign tight = small_design();
  // The IS buffer needs 2*512*28*28 bytes; offer less.
  tight.stationary_buffer_bytes = 100 * 1024;
  PerfModel model(g, tight);
  EXPECT_EQ(model.timing(0).order, LoopOrder::kOutputStationary);
}

TEST(LoopOrders, WeightStationaryWinsOnWeightBoundLayers) {
  // A big-kernel late layer: tiny spatial extent, heavy weights, several
  // spatial tiles force weight reloads under OS.
  graph::ComputationGraph g("wt_bound");
  auto in = g.add_input("in", {512, 16, 16});
  g.add_conv("c", in, {512, 3, 3, 1, 1, 1});
  g.validate();
  AcceleratorDesign d = small_design();
  d.tile = {64, 8, 8};   // 4 spatial tiles -> 4x weight traffic under OS
  d.array = {32, 16, 16};  // big array: weights become the bottleneck
  AcceleratorDesign roomy = d;
  roomy.stationary_buffer_bytes = std::int64_t{64} << 20;  // everything fits
  PerfModel mb(g, d), mr(g, roomy);
  ASSERT_GT(mb.timing(0).wt_s, mb.timing(0).compute_s);  // wt-bound baseline
  EXPECT_EQ(mr.timing(0).order, LoopOrder::kWeightStationary);
  EXPECT_GT(mb.timing(0).wt_bytes, mr.timing(0).wt_bytes);
  EXPECT_LT(mr.timing(0).umm_latency(), mb.timing(0).umm_latency());
}

TEST(LoopOrders, ComputeBoundTiesKeepBaselineOrder) {
  // When every order yields the same (compute-bound) latency, the model
  // keeps the baseline output-stationary template.
  graph::ComputationGraph g("cb");
  auto in = g.add_input("in", {512, 16, 16});
  g.add_conv("c", in, {512, 3, 3, 1, 1, 1});
  g.validate();
  AcceleratorDesign d = small_design();
  d.tile = {64, 8, 8};
  d.array = {16, 8, 16};
  d.stationary_buffer_bytes = std::int64_t{64} << 20;
  PerfModel model(g, d);
  ASSERT_FALSE(model.timing(0).memory_bound());
  EXPECT_EQ(model.timing(0).order, LoopOrder::kOutputStationary);
}

TEST(LoopOrders, ChosenOrderIsOptimalAmongFeasible) {
  auto g = models::build_inception_v4();
  AcceleratorDesign d = small_design(Precision::kInt16);
  d.stationary_buffer_bytes = std::int64_t{2} << 20;
  PerfModel free_model(g, d);
  PerfModel pinned(g, small_design(Precision::kInt16));
  for (const auto& l : g.layers()) {
    // The chosen order never loses to the pinned baseline.
    EXPECT_LE(free_model.timing(l.id).umm_latency(),
              pinned.timing(l.id).umm_latency() * (1 + 1e-12))
        << l.name;
  }
}

TEST(LoopOrders, Naming) {
  EXPECT_EQ(to_string(LoopOrder::kOutputStationary), "output-stationary");
  EXPECT_EQ(to_string(LoopOrder::kWeightStationary), "weight-stationary");
  EXPECT_EQ(to_string(LoopOrder::kInputStationary), "input-stationary");
}

}  // namespace
}  // namespace lcmm::hw
