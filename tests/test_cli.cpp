#include <gtest/gtest.h>

#include "cli/options.hpp"

namespace lcmm::cli {
namespace {

TEST(Cli, ModelAndDefaults) {
  const Options opt = parse_cli({"--model", "googlenet"});
  EXPECT_EQ(opt.model, "googlenet");
  EXPECT_EQ(opt.precision, hw::Precision::kInt16);
  EXPECT_EQ(opt.device, "vu9p");
  EXPECT_EQ(opt.design, DesignChoice::kBoth);
  EXPECT_EQ(opt.format, OutputFormat::kText);
  EXPECT_TRUE(opt.lcmm.feature_reuse);
  EXPECT_TRUE(opt.lcmm.weight_prefetch);
}

TEST(Cli, EqualsSyntax) {
  const Options opt =
      parse_cli({"--model=resnet152", "--precision=8", "--format=json"});
  EXPECT_EQ(opt.model, "resnet152");
  EXPECT_EQ(opt.precision, hw::Precision::kInt8);
  EXPECT_EQ(opt.format, OutputFormat::kJson);
}

TEST(Cli, AllPrecisions) {
  EXPECT_EQ(parse_cli({"--model", "m", "--precision", "8"}).precision,
            hw::Precision::kInt8);
  EXPECT_EQ(parse_cli({"--model", "m", "--precision", "16"}).precision,
            hw::Precision::kInt16);
  EXPECT_EQ(parse_cli({"--model", "m", "--precision", "32"}).precision,
            hw::Precision::kFp32);
  EXPECT_THROW(parse_cli({"--model", "m", "--precision", "4"}), CliError);
}

TEST(Cli, PassToggles) {
  const Options opt = parse_cli({"--model", "m", "--no-feature-reuse",
                                 "--no-prefetch", "--no-splitting",
                                 "--no-promotion", "--no-fallback"});
  EXPECT_FALSE(opt.lcmm.feature_reuse);
  EXPECT_FALSE(opt.lcmm.weight_prefetch);
  EXPECT_FALSE(opt.lcmm.buffer_splitting);
  EXPECT_FALSE(opt.lcmm.residency_promotion);
  EXPECT_FALSE(opt.lcmm.allow_fallback_to_umm);
}

TEST(Cli, AllocatorChoices) {
  EXPECT_EQ(parse_cli({"--model", "m", "--allocator", "greedy"}).lcmm.allocator,
            core::AllocatorKind::kGreedy);
  EXPECT_EQ(parse_cli({"--model", "m", "--allocator", "exact"}).lcmm.allocator,
            core::AllocatorKind::kExact);
  EXPECT_THROW(parse_cli({"--model", "m", "--allocator", "magic"}), CliError);
}

TEST(Cli, NumericOptions) {
  const Options opt = parse_cli(
      {"--model", "m", "--dse-passes", "1", "--capacity-fraction", "0.5"});
  EXPECT_EQ(opt.lcmm.dse_passes, 1);
  EXPECT_DOUBLE_EQ(opt.lcmm.sram_capacity_fraction, 0.5);
  EXPECT_THROW(parse_cli({"--model", "m", "--dse-passes", "two"}), CliError);
}

TEST(Cli, JobsFlag) {
  EXPECT_EQ(parse_cli({"--model", "m"}).jobs, 0);  // 0 = auto
  EXPECT_EQ(parse_cli({"--model", "m", "--jobs", "1"}).jobs, 1);
  EXPECT_EQ(parse_cli({"--model", "m", "--jobs=8"}).jobs, 8);
  EXPECT_THROW(parse_cli({"--model", "m", "--jobs", "0"}), CliError);
  EXPECT_THROW(parse_cli({"--model", "m", "--jobs", "-3"}), CliError);
  EXPECT_THROW(parse_cli({"--model", "m", "--jobs", "many"}), CliError);
}

TEST(Cli, RequiresExactlyOneInput) {
  EXPECT_THROW(parse_cli({}), CliError);
  EXPECT_THROW(parse_cli({"--format", "json"}), CliError);
  EXPECT_THROW(parse_cli({"--model", "a", "--graph", "b.lcmm"}), CliError);
  EXPECT_NO_THROW(parse_cli({"--graph", "b.lcmm"}));
}

TEST(Cli, HelpShortCircuitsValidation) {
  EXPECT_TRUE(parse_cli({"--help"}).show_help);
  EXPECT_TRUE(parse_cli({"-h"}).show_help);
}

TEST(Cli, UnknownOptionRejected) {
  EXPECT_THROW(parse_cli({"--model", "m", "--frobnicate"}), CliError);
}

TEST(Cli, MissingValueRejected) {
  EXPECT_THROW(parse_cli({"--model"}), CliError);
  EXPECT_THROW(parse_cli({"--model", "m", "--precision"}), CliError);
}

TEST(Cli, DeviceValidation) {
  EXPECT_NO_THROW(parse_cli({"--model", "m", "--device", "zu9eg"}));
  EXPECT_THROW(parse_cli({"--model", "m", "--device", "stratix"}), CliError);
  EXPECT_EQ(resolve_device("vu9p").name, "xcvu9p");
  EXPECT_EQ(resolve_device("zu9eg").name, "xczu9eg");
}

TEST(Cli, UsageMentionsEveryModel) {
  const std::string text = usage();
  EXPECT_NE(text.find("googlenet"), std::string::npos);
  EXPECT_NE(text.find("mobilenet_v1"), std::string::npos);
  EXPECT_NE(text.find("--precision"), std::string::npos);
}

}  // namespace
}  // namespace lcmm::cli
