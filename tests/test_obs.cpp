#include <gtest/gtest.h>

#include "core/lcmm.hpp"
#include "core/pipeline.hpp"
#include "models/models.hpp"
#include "obs/obs.hpp"

namespace lcmm::obs {
namespace {

TEST(CompileStats, SpanNestingTracksParentAndDepth) {
  CompileStats stats;
  const int outer = stats.begin_span("outer");
  const int inner = stats.begin_span("inner");
  stats.end_span(inner);
  const int sibling = stats.begin_span("sibling");
  stats.end_span(sibling);
  stats.end_span(outer);

  ASSERT_EQ(stats.spans().size(), 3u);
  EXPECT_EQ(stats.spans()[0].name, "outer");
  EXPECT_EQ(stats.spans()[0].parent, -1);
  EXPECT_EQ(stats.spans()[0].depth, 0);
  EXPECT_EQ(stats.spans()[1].name, "inner");
  EXPECT_EQ(stats.spans()[1].parent, outer);
  EXPECT_EQ(stats.spans()[1].depth, 1);
  EXPECT_EQ(stats.spans()[2].parent, outer);
  // The parent covers its children.
  EXPECT_GE(stats.spans()[0].dur_s, stats.spans()[1].dur_s);
  EXPECT_FALSE(stats.spans()[0].open);
}

TEST(CompileStats, EndSpanClosesAbandonedChildren) {
  CompileStats stats;
  const int outer = stats.begin_span("outer");
  stats.begin_span("leaked");  // never explicitly closed
  stats.end_span(outer);
  EXPECT_EQ(stats.current_span(), -1);
  EXPECT_FALSE(stats.spans()[1].open);
  EXPECT_THROW(stats.end_span(outer), std::logic_error);
  EXPECT_THROW(stats.end_span(99), std::out_of_range);
}

TEST(CompileStats, CountersAccumulatePerSpanAndAggregate) {
  CompileStats stats;
  const int a = stats.begin_span("pass");
  stats.count("cells", 10);
  stats.count("cells", 5);
  stats.end_span(a);
  const int b = stats.begin_span("pass");
  stats.count("cells", 1);
  stats.end_span(b);
  const int other = stats.begin_span("other");
  stats.count("cells", 100);
  stats.end_span(other);
  stats.count("cells", 1000);  // no open span: root scope

  EXPECT_EQ(stats.spans()[0].counters.at("cells"), 15);
  EXPECT_EQ(stats.counter("pass.cells"), 16);   // qualified: both "pass" spans
  EXPECT_EQ(stats.counter("other.cells"), 100);
  EXPECT_EQ(stats.counter("cells"), 1116);      // bare: everything + root
  EXPECT_EQ(stats.root_counters().at("cells"), 1000);
  EXPECT_EQ(stats.span_count("pass"), 2);
  EXPECT_EQ(stats.aggregate_counters().at("pass.cells"), 16);
}

TEST(CompileStats, GaugesLastWriteWinsAndDecisionsRecordPass) {
  CompileStats stats;
  const int span = stats.begin_span("dnnk");
  stats.gauge("capacity_bytes", 1.0);
  stats.gauge("capacity_bytes", 2.0);
  stats.decide("vbuf#3", 4096, false, "knapsack-spill");
  stats.end_span(span);

  EXPECT_DOUBLE_EQ(stats.spans()[0].gauges.at("capacity_bytes"), 2.0);
  ASSERT_EQ(stats.decisions().size(), 1u);
  EXPECT_EQ(stats.decisions()[0].pass, "dnnk");
  EXPECT_EQ(stats.decisions()[0].subject, "vbuf#3");
  EXPECT_EQ(stats.decisions()[0].bytes, 4096);
  EXPECT_FALSE(stats.decisions()[0].accepted);
  EXPECT_EQ(stats.decisions()[0].reason, "knapsack-spill");
}

TEST(Macros, NoOpWithoutSession) {
  ASSERT_EQ(current(), nullptr);
  // None of these may crash or leak state when collection is disabled.
  LCMM_SPAN("orphan");
  LCMM_COUNT("x", 1);
  LCMM_GAUGE("y", 2.0);
  LCMM_DECIDE("z", 0, true, "reason");
  EXPECT_EQ(current(), nullptr);
}

TEST(Macros, RecordIntoActiveSession) {
  StatsSession session;
  {
    LCMM_SPAN("macro_span");
    LCMM_COUNT("hits", 2);
    LCMM_COUNT("hits", 3);
  }
  EXPECT_EQ(session.stats().counter("macro_span.hits"), 5);
  EXPECT_EQ(session.stats().span_count("macro_span"), 1);
}

TEST(StatsSession, NestedSessionsShadowAndRestore) {
  ASSERT_EQ(current(), nullptr);
  {
    StatsSession outer;
    EXPECT_EQ(current(), &outer.stats());
    {
      StatsSession inner;
      EXPECT_EQ(current(), &inner.stats());
      LCMM_COUNT("n", 1);
      EXPECT_EQ(inner.stats().counter("n"), 1);
    }
    EXPECT_EQ(current(), &outer.stats());
    EXPECT_EQ(outer.stats().counter("n"), 0);
  }
  EXPECT_EQ(current(), nullptr);
}

TEST(Export, StatsJsonSchema) {
  CompileStats stats;
  const int span = stats.begin_span("liveness");
  stats.count("entities", 7);
  stats.gauge("bytes", 123.0);
  stats.end_span(span);
  stats.decide("vbuf#1", 64, true, "knapsack-selected");

  const util::Json json = stats_to_json(stats);
  const std::string text = json.dump();
  EXPECT_NE(text.find("\"schema\": \"lcmm-compile-stats-v1\""),
            std::string::npos);
  // Every core pass has an aggregate entry even when it did not run.
  for (const char* pass : kCorePasses) {
    EXPECT_NE(text.find("\"" + std::string(pass) + "\""), std::string::npos)
        << pass;
  }
  EXPECT_NE(text.find("\"entities\": 7"), std::string::npos);
  EXPECT_NE(text.find("\"knapsack-selected\""), std::string::npos);
  // The span tree serializes with ids, parents and timing.
  EXPECT_NE(text.find("\"parent\": -1"), std::string::npos);
  EXPECT_NE(text.find("\"dur_us\""), std::string::npos);
}

TEST(Export, ChromeTraceHasTrackMetadataAndSpans) {
  CompileStats stats;
  const int outer = stats.begin_span("pipeline");
  const int inner = stats.begin_span("dnnk");
  stats.end_span(inner);
  stats.end_span(outer);

  const std::string text = stats_to_chrome_trace(stats).dump(-1);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"lcmm compiler\""), std::string::npos);
  EXPECT_NE(text.find("\"pipeline\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Integration, FullCompileEmitsNonZeroPerPassSpans) {
  const graph::ComputationGraph graph = models::build_by_name("alexnet");
  StatsSession session;
  core::LcmmCompiler compiler(hw::FpgaDevice::vu9p(), hw::Precision::kInt16);
  const core::AllocationPlan plan = compiler.compile(graph);
  (void)plan;

  const CompileStats& stats = session.stats();
  for (const char* pass : obs::kCorePasses) {
    EXPECT_GE(stats.span_count(pass), 1) << pass;
    EXPECT_GT(stats.span_seconds(pass), 0.0) << pass;
  }
  // Every core pass recorded at least one unit of work.
  EXPECT_GT(stats.counter("liveness.entities"), 0);
  EXPECT_GT(stats.counter("interference.pairs_checked"), 0);
  EXPECT_GT(stats.counter("coloring.colors"), 0);
  EXPECT_GT(stats.counter("prefetch.edges"), 0);
  EXPECT_GT(stats.counter("dnnk.dp_cells"), 0);
  EXPECT_GT(stats.counter("splitting.iterations"), 0);
  EXPECT_GT(stats.counter("pipeline.dse_rounds"), 0);
  // The DNNK pass logged a decision for every virtual buffer it saw.
  EXPECT_GT(stats.decisions().size(), 0u);
  // All spans are closed and the tree is well-formed.
  for (const Span& span : stats.spans()) {
    EXPECT_FALSE(span.open) << span.name;
    EXPECT_GE(span.dur_s, 0.0);
    if (span.parent >= 0) {
      EXPECT_LT(span.parent, static_cast<int>(stats.spans().size()));
      EXPECT_EQ(stats.spans()[static_cast<std::size_t>(span.parent)].depth,
                span.depth - 1);
    }
  }
}

TEST(Integration, PartitionPassRecordsSegments) {
  const graph::ComputationGraph graph = models::build_by_name("alexnet");
  StatsSession session;
  core::PipelinePartitioner partitioner(hw::FpgaDevice::vu9p(),
                                        hw::Precision::kInt16, {});
  const core::PipelinePlan plan = partitioner.partition(graph, 2);
  EXPECT_EQ(plan.segments.size(), 2u);
  EXPECT_EQ(session.stats().counter("partition.segments"), 2);
  EXPECT_GE(session.stats().span_count("partition"), 1);
  // Segment compiles nest under the partition span.
  EXPECT_GE(session.stats().span_count("pipeline"), 2);
}

}  // namespace
}  // namespace lcmm::obs
