#include <gtest/gtest.h>

#include "core/splitting.hpp"
#include "test_graphs.hpp"

namespace lcmm::core {
namespace {

using lcmm::testing::small_design;

TensorEntity make_entity(int layer, TensorSource src, std::int64_t bytes,
                         int def, int last, double lat) {
  TensorEntity e;
  e.key = {layer, src};
  e.name = "L" + std::to_string(layer) + to_string(src);
  e.bytes = bytes;
  e.def_step = def;
  e.last_use_step = last;
  e.stream_latency_s = lat;
  return e;
}

/// Misspilling scenario: a huge low-value tensor shares a buffer with a
/// tiny high-value tensor; the merged buffer does not fit the capacity, so
/// without splitting both spill.
struct MisspillFixture {
  graph::ComputationGraph graph{"misspill"};
  std::unique_ptr<hw::PerfModel> model;
  std::unique_ptr<LatencyTables> tables;

  MisspillFixture() {
    // Layer 0: small input tensor, heavily memory bound (gain comes from
    // its input stream). Layer 1: huge input tensor, compute bound.
    auto a = graph.add_input("small_in", {512, 14, 14});  // ~100 KB int8
    auto big = graph.add_input("big_in", {256, 112, 112});  // ~3.2 MB int8
    graph.add_conv("hot", a, {64, 1, 1, 1, 0, 0});
    graph.add_conv("cold", big, {16, 7, 7, 2, 3, 3});
    graph.validate();
    // A wide-SIMD array makes the 1x1 layer decisively transfer bound.
    hw::AcceleratorDesign design = small_design();
    design.array = {16, 8, 16};
    model = std::make_unique<hw::PerfModel>(graph, design);
    tables = std::make_unique<LatencyTables>(*model);
  }

  std::vector<TensorEntity> entities() const {
    // Disjoint lifespans (layer 0 then layer 1) so they may share a buffer.
    return {make_entity(0, TensorSource::kInput,
                        graph.value(graph.layer(0).input).shape.elems(),
                        kBeforeExecution, 0, model->timing(0).if_s),
            make_entity(1, TensorSource::kInput,
                        graph.value(graph.layer(1).input).shape.elems(),
                        1, 1, model->timing(1).if_s)};
  }
};

TEST(Splitting, RecoversMisspilledTensor) {
  MisspillFixture fx;
  auto entities = fx.entities();
  // Lifespans [(-1),0] and [1,1] are disjoint: one shared buffer sized by
  // the big tensor.
  InterferenceGraph ig(entities);
  auto coloring = color_min_total_size(ig);
  ASSERT_EQ(coloring.num_colors, 1);
  const auto buffers = build_virtual_buffers(ig, coloring);

  // Capacity below the big tensor: the shared buffer spills entirely.
  const std::int64_t cap = entities[0].bytes * 2;
  const auto spilled = dnnk_allocate(ig, buffers, fx.tables.operator*(), cap);
  EXPECT_DOUBLE_EQ(spilled.gain_s, 0.0);

  // Splitting separates them; the small high-gain tensor gets on chip.
  InterferenceGraph ig2(entities);
  const SplitOutcome outcome =
      split_and_reallocate(ig2, *fx.tables, cap);
  EXPECT_GE(outcome.splits_performed, 1);
  EXPECT_GT(outcome.allocation.gain_s, 0.0);
  EXPECT_TRUE(outcome.allocation.state.is_on({0, TensorSource::kInput}));
  EXPECT_FALSE(outcome.allocation.state.is_on({1, TensorSource::kInput}));
}

TEST(Splitting, NoSplitWhenEverythingFits) {
  MisspillFixture fx;
  InterferenceGraph ig(fx.entities());
  const SplitOutcome outcome =
      split_and_reallocate(ig, *fx.tables, std::int64_t{1} << 40);
  EXPECT_EQ(ig.num_false_edges(), 0u);
  EXPECT_EQ(outcome.splits_performed, 0);
}

TEST(Splitting, NeverDecreasesGain) {
  MisspillFixture fx;
  auto entities = fx.entities();
  for (std::int64_t cap : {std::int64_t{0}, entities[0].bytes,
                           entities[1].bytes, entities[1].bytes * 2}) {
    InterferenceGraph plain(entities);
    const auto buffers = build_virtual_buffers(plain, color_min_total_size(plain));
    const auto base = dnnk_allocate(plain, buffers, *fx.tables, cap);
    InterferenceGraph split_graph(entities);
    const SplitOutcome outcome =
        split_and_reallocate(split_graph, *fx.tables, cap);
    EXPECT_GE(outcome.allocation.gain_s, base.gain_s - 1e-15) << "cap " << cap;
  }
}

TEST(Splitting, RespectsIterationBudget) {
  MisspillFixture fx;
  InterferenceGraph ig(fx.entities());
  SplitOptions opt;
  opt.max_iterations = 0;
  const SplitOutcome outcome =
      split_and_reallocate(ig, *fx.tables, fx.entities()[0].bytes * 2, {}, opt);
  EXPECT_EQ(outcome.splits_performed, 0);
}

TEST(Splitting, SizeRatioThresholdBlocksSimilarTensors) {
  MisspillFixture fx;
  auto entities = fx.entities();
  entities[1].bytes = entities[0].bytes;  // equal sizes: no "variance"
  InterferenceGraph ig(entities);
  SplitOptions opt;
  opt.size_ratio_threshold = 1.5;
  const SplitOutcome outcome = split_and_reallocate(
      ig, *fx.tables, entities[0].bytes / 2, {}, opt);
  EXPECT_EQ(outcome.splits_performed, 0);
}

}  // namespace
}  // namespace lcmm::core
