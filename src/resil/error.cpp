#include "resil/error.hpp"

namespace lcmm::resil {

std::string code_id(Code code) {
  std::string id = "LCMM-E";
  const int value = static_cast<int>(code);
  if (value < 100) id += '0';
  if (value < 10) id += '0';
  id += std::to_string(value);
  return id;
}

const char* code_name(Code code) {
  switch (code) {
    case Code::kNone: return "none";
    case Code::kNoFeasibleDesign: return "no-feasible-design";
    case Code::kTileBuffersDontFit: return "tile-buffers-dont-fit";
    case Code::kGraphTooLarge: return "graph-too-large";
    case Code::kSizeOverflow: return "size-overflow";
    case Code::kInfeasiblePartition: return "infeasible-partition";
    case Code::kBadOptions: return "bad-options";
    case Code::kBadArgument: return "bad-argument";
    case Code::kParseError: return "parse-error";
    case Code::kIoError: return "io-error";
    case Code::kFaultInjected: return "fault-injected";
    case Code::kJobTimeout: return "job-timeout";
    case Code::kInternal: return "internal";
  }
  return "unknown";
}

const char* code_summary(Code code) {
  switch (code) {
    case Code::kNone: return "no error";
    case Code::kNoFeasibleDesign:
      return "DSE found no array/tile candidate within the device budget";
    case Code::kTileBuffersDontFit:
      return "the design's tile buffers exceed the on-chip BRAM pool";
    case Code::kGraphTooLarge:
      return "the input exceeds a pass's structural bound";
    case Code::kSizeOverflow:
      return "tensor or buffer size arithmetic overflowed int64";
    case Code::kInfeasiblePartition:
      return "the requested pipeline partition has no legal split";
    case Code::kBadOptions: return "constructor options failed validation";
    case Code::kBadArgument: return "mismatched or out-of-domain argument";
    case Code::kParseError: return "text-format input was rejected";
    case Code::kIoError: return "file system failure reading input";
    case Code::kFaultInjected:
      return "deterministic fault injected via LCMM_FAULT or fault::arm";
    case Code::kJobTimeout: return "batch job exceeded its wall-clock budget";
    case Code::kInternal: return "invariant violation or unexpected exception";
  }
  return "unknown";
}

const std::vector<Code>& all_codes() {
  static const std::vector<Code> codes = {
      Code::kNoFeasibleDesign,    Code::kTileBuffersDontFit,
      Code::kGraphTooLarge,       Code::kSizeOverflow,
      Code::kInfeasiblePartition, Code::kBadOptions,
      Code::kBadArgument,         Code::kParseError,
      Code::kIoError,             Code::kFaultInjected,
      Code::kJobTimeout,          Code::kInternal,
  };
  return codes;
}

bool is_transient(Code code) {
  return code == Code::kFaultInjected || code == Code::kIoError;
}

std::string format_what(const ErrorInfo& info) {
  std::string out = "[" + code_id(info.code) + "] ";
  if (!info.pass.empty()) {
    out += info.pass;
    out += ": ";
  }
  out += info.message;
  if (!info.entity.empty()) {
    out += " (entity '" + info.entity + "')";
  }
  return out;
}

TypedError::~TypedError() = default;

CompileError::CompileError(Code code, std::string pass, std::string message,
                           std::string entity)
    : CompileError(ErrorInfo{code, std::move(pass), std::move(entity),
                             std::move(message)}) {}

CompileError::CompileError(ErrorInfo info)
    : std::runtime_error(format_what(info)), TypedError(std::move(info)) {}

OptionError::OptionError(Code code, std::string pass, std::string message,
                         std::string entity)
    : std::invalid_argument(format_what(
          ErrorInfo{code, pass, entity, message})),
      TypedError(ErrorInfo{code, std::move(pass), std::move(entity),
                           std::move(message)}) {}

ErrorInfo describe(const std::exception& e) {
  if (const auto* typed = dynamic_cast<const TypedError*>(&e)) {
    return typed->info();
  }
  ErrorInfo info;
  info.code = Code::kInternal;
  info.message = e.what();
  return info;
}

const char* rung_name(Rung rung) {
  switch (rung) {
    case Rung::kFullLcmm: return "full-lcmm";
    case Rung::kShrunkDnnk: return "shrunk-dnnk";
    case Rung::kNoPrefetch: return "no-prefetch";
    case Rung::kNoFeatureReuse: return "no-feature-reuse";
    case Rung::kUmm: return "umm";
  }
  return "unknown";
}

Deadline::Deadline(double seconds) {
  if (seconds > 0) {
    unlimited_ = false;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
  }
}

bool Deadline::expired() const {
  return !unlimited_ && std::chrono::steady_clock::now() >= deadline_;
}

void Deadline::check(const std::string& phase) const {
  if (expired()) {
    throw CompileError(Code::kJobTimeout, phase,
                       "wall-clock budget exhausted at phase boundary");
  }
}

}  // namespace lcmm::resil
