// Umbrella header for lcmm::resil — the graceful-degradation layer: typed
// compile errors (error.hpp), overflow-checked size arithmetic
// (checked.hpp) and deterministic fault injection (fault.hpp). The
// degradation ladder itself lives in core/lcmm.hpp (LcmmCompiler::compile);
// see docs/robustness.md.
#pragma once

#include "resil/checked.hpp"  // IWYU pragma: export
#include "resil/error.hpp"    // IWYU pragma: export
#include "resil/fault.hpp"    // IWYU pragma: export
