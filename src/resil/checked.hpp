// Overflow-checked int64 size arithmetic. Tensor element counts, byte sizes
// and virtual-buffer totals are all products/sums of parser-controlled
// dimensions; silent wraparound would turn an adversarial graph into a
// bogus "everything fits on chip" plan. These helpers raise a typed
// CompileError(kSizeOverflow) instead, which the ladder (or the parser's
// ParseError wrapper) surfaces cleanly.
#pragma once

#include <cstdint>

#include "resil/error.hpp"

namespace lcmm::resil {

/// a * b, or CompileError(kSizeOverflow) naming `what` on int64 overflow.
inline std::int64_t checked_mul(std::int64_t a, std::int64_t b,
                                const char* what) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    throw CompileError(Code::kSizeOverflow, "size-arith",
                       std::string(what) + ": int64 overflow in " +
                           std::to_string(a) + " * " + std::to_string(b));
  }
  return out;
}

/// a + b, or CompileError(kSizeOverflow) naming `what` on int64 overflow.
inline std::int64_t checked_add(std::int64_t a, std::int64_t b,
                                const char* what) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    throw CompileError(Code::kSizeOverflow, "size-arith",
                       std::string(what) + ": int64 overflow in " +
                           std::to_string(a) + " + " + std::to_string(b));
  }
  return out;
}

}  // namespace lcmm::resil
