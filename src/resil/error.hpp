// Typed error taxonomy and degradation-ladder vocabulary (lcmm::resil).
//
// Every failure the compiler can raise carries a stable LCMM-Exxx code (the
// same namespace as lcmm::check diagnostics, continued in the E6xx+ blocks),
// the failing pass or site, and optional entity context. Two exception
// branches partition the taxonomy:
//
//   CompileError : std::runtime_error     runtime/resource failures. The
//     degradation ladder in LcmmCompiler::compile catches exactly this type
//     and retries on the next rung; in --strict mode it propagates.
//   OptionError : std::invalid_argument   caller contract violations (bad
//     options, mismatched arguments). Never swallowed by the ladder, and
//     type-compatible with the std::invalid_argument the seed code threw.
//
// Both expose the shared ErrorInfo payload through the TypedError mixin, so
// the batch driver can report (code, pass, entity) uniformly via describe().
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace lcmm::resil {

/// Stable diagnostic codes. lcmm::check owns E0xx-E5xx (plan verification);
/// resil continues the numbering: E6xx feasibility/resource, E65x caller
/// contract, E7xx input, E8xx infrastructure. Values are part of the tool
/// output contract — never renumber, only append.
enum class Code : std::uint16_t {
  kNone = 0,

  // E61x — feasibility and resource exhaustion (ladder-recoverable).
  kNoFeasibleDesign = 611,    ///< DSE menu empty under the device budget
  kTileBuffersDontFit = 612,  ///< tile buffers exceed on-chip BRAM
  kGraphTooLarge = 613,       ///< input exceeds a pass's structural bound
  kSizeOverflow = 614,        ///< size arithmetic overflowed int64
  kInfeasiblePartition = 615, ///< pipeline partition has no legal split

  // E65x — caller contract violations (OptionError).
  kBadOptions = 651,          ///< constructor options fail validation
  kBadArgument = 652,         ///< mismatched or out-of-domain argument

  // E7xx — input / io.
  kParseError = 701,          ///< text-format input rejected
  kIoError = 702,             ///< file system failure reading input

  // E8xx — infrastructure.
  kFaultInjected = 801,       ///< deterministic fault-injection hit (LCMM_FAULT)
  kJobTimeout = 802,          ///< batch job exceeded its wall-clock budget
  kInternal = 899,            ///< invariant violation / unexpected exception
};

/// "LCMM-E612" — the stable identifier used in logs, SARIF and batch output.
std::string code_id(Code code);
/// Short kebab-case name ("tile-buffers-dont-fit").
const char* code_name(Code code);
/// One-line human summary of the code.
const char* code_summary(Code code);
/// Every code resil can raise, in numeric order (for docs/tests).
const std::vector<Code>& all_codes();
/// Transient codes are worth one bounded retry in the batch driver
/// (injected faults, filesystem flakes); everything else is deterministic.
bool is_transient(Code code);

/// The structured payload every typed error carries.
struct ErrorInfo {
  Code code = Code::kNone;
  std::string pass;     ///< failing pass or fault site ("pass.place", "dse.explore")
  std::string entity;   ///< entity context (graph, layer or buffer name); may be empty
  std::string message;  ///< human-readable detail, without the [code] prefix
};

/// "[LCMM-E612] pass.place: tile buffers do not fit (entity 'resnet50')".
std::string format_what(const ErrorInfo& info);

/// Mixin carrying the typed payload; both exception branches implement it
/// so `dynamic_cast<const TypedError*>` recovers the info from a caught
/// std::exception without caring which branch it is.
class TypedError {
 public:
  TypedError(const TypedError&) = default;
  TypedError& operator=(const TypedError&) = default;
  virtual ~TypedError();

  const ErrorInfo& info() const { return info_; }
  Code code() const { return info_.code; }
  const std::string& pass() const { return info_.pass; }
  const std::string& entity() const { return info_.entity; }

 protected:
  explicit TypedError(ErrorInfo info) : info_(std::move(info)) {}

 private:
  ErrorInfo info_;
};

/// Runtime compile failure: resource exhaustion, infeasibility, overflow,
/// injected faults. The degradation ladder catches exactly this type.
class CompileError : public std::runtime_error, public TypedError {
 public:
  CompileError(Code code, std::string pass, std::string message,
               std::string entity = {});
  explicit CompileError(ErrorInfo info);
};

/// Caller contract violation. Is-a std::invalid_argument, so pre-resil
/// call sites and tests that expect that type keep working.
class OptionError : public std::invalid_argument, public TypedError {
 public:
  OptionError(Code code, std::string pass, std::string message,
              std::string entity = {});
};

/// Typed payload of any exception: the real info for TypedError subclasses,
/// a kInternal wrapper around e.what() for everything else.
ErrorInfo describe(const std::exception& e);

/// Degradation-ladder rungs, best first (docs/robustness.md). Each rung is
/// attempted when the rung above fails with a CompileError; kUmm is the
/// semantically valid floor — a plan degrades no further.
enum class Rung : std::uint8_t {
  kFullLcmm = 0,       ///< the full Fig. 4 pipeline
  kShrunkDnnk = 1,     ///< smaller tile menu, halved DNNK capacity, finer granularity
  kNoPrefetch = 2,     ///< weight prefetching (§3.2) disabled
  kNoFeatureReuse = 3, ///< feature reuse + splitting (§3.1/§3.4) disabled too
  kUmm = 4,            ///< plain uniform-memory-management baseline
};
inline constexpr int kNumRungs = 5;

/// "full-lcmm", "shrunk-dnnk", "no-prefetch", "no-feature-reuse", "umm".
const char* rung_name(Rung rung);

/// Soft wall-clock budget, checked cooperatively at phase boundaries.
/// seconds <= 0 means unlimited.
class Deadline {
 public:
  explicit Deadline(double seconds);
  bool expired() const;
  /// Throws CompileError(kJobTimeout) naming `phase` when expired.
  void check(const std::string& phase) const;

 private:
  std::chrono::steady_clock::time_point deadline_{};
  bool unlimited_ = true;
};

}  // namespace lcmm::resil
