#include "resil/fault.hpp"

#include <cstdlib>
#include <mutex>

#include "resil/error.hpp"
#include "util/logging.hpp"

namespace lcmm::resil::fault {

namespace {

constexpr const char* kSites[] = {
    "io.parse",       // text_format parse_graph entry
    "dse.explore",    // Dse::explore, before the menu walk
    "pass.liveness",  // feature-entity construction (§3.1 liveness)
    "pass.coloring",  // interference coloring (§3.1)
    "pass.prefetch",  // weight prefetch schedule (§3.2)
    "pass.dnnk",      // knapsack allocation (§3.3)
    "pass.splitting", // buffer splitting (§3.4)
    "pass.place",     // physical BRAM/URAM placement
    "par.task",       // every lcmm::par task wrapper
    "driver.job",     // every driver::compile_many job
};

// The armed config is read on every hit() from arbitrary threads while
// tests arm/disarm between operations; configs are immutable once
// published and intentionally leaked on replacement (bounded by the
// number of arm() calls, i.e. a handful per test process).
std::atomic<const Config*> g_armed{nullptr};

thread_local State* tl_state = nullptr;

}  // namespace

std::span<const char* const> sites() { return kSites; }

bool is_site(std::string_view name) {
  for (const char* site : kSites) {
    if (name == site) return true;
  }
  return false;
}

void arm(Config config) {
  if (!is_site(config.site)) {
    throw OptionError(Code::kBadArgument, "fault.arm",
                      "unknown fault site '" + config.site + "'");
  }
  if (config.nth < 1) config.nth = 1;
  g_armed.store(new Config(std::move(config)), std::memory_order_release);
}

void disarm() { g_armed.store(nullptr, std::memory_order_release); }

std::optional<Config> armed() {
  const Config* config = g_armed.load(std::memory_order_acquire);
  if (config == nullptr) return std::nullopt;
  return *config;
}

void arm_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("LCMM_FAULT");
    if (env == nullptr || *env == '\0') return;
    Config config;
    std::string spec(env);
    std::size_t colon = spec.find(':');
    config.site = spec.substr(0, colon);
    if (!is_site(config.site)) {
      LCMM_WARN() << "LCMM_FAULT: unknown site '" << config.site
                  << "'; fault injection disarmed";
      return;
    }
    try {
      if (colon != std::string::npos) {
        std::string rest = spec.substr(colon + 1);
        colon = rest.find(':');
        config.nth = std::stoll(rest.substr(0, colon));
        if (colon != std::string::npos) {
          const std::string fires = rest.substr(colon + 1);
          config.fires = fires == "*" ? -1 : std::stoll(fires);
        }
      }
    } catch (const std::exception&) {
      LCMM_WARN() << "LCMM_FAULT: malformed spec '" << spec
                  << "'; fault injection disarmed";
      return;
    }
    LCMM_INFO() << "LCMM_FAULT: arming site '" << config.site << "' nth="
                << config.nth << " fires="
                << (config.fires < 0 ? std::string("*")
                                     : std::to_string(config.fires));
    arm(std::move(config));
  });
}

State* current_state() { return tl_state; }

StateGuard::StateGuard(State* state) : previous_(tl_state) {
  tl_state = state;
}

StateGuard::~StateGuard() { tl_state = previous_; }

Scope::Scope() {
  arm_from_env();
  if (tl_state == nullptr) {
    tl_state = &own_;
    installed_ = true;
  }
}

Scope::~Scope() {
  if (installed_) tl_state = nullptr;
}

void hit(const char* site) {
  const Config* config = g_armed.load(std::memory_order_acquire);
  if (config == nullptr) return;
  State* state = tl_state;
  if (state == nullptr) return;
  if (config->site != site) return;
  const std::int64_t n =
      state->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n < config->nth) return;
  if (config->fires >= 0 && n >= config->nth + config->fires) return;
  // Keep the message free of the hit index: with racing workers the index
  // that fires can vary, and batch error strings must match across --jobs.
  throw CompileError(Code::kFaultInjected, site,
                     "deterministic fault injected");
}

ArmedGuard::ArmedGuard(Config config) { arm(std::move(config)); }

ArmedGuard::~ArmedGuard() { disarm(); }

}  // namespace lcmm::resil::fault
