// Deterministic fault injection (lcmm::resil::fault).
//
// A single armed Config names one site; fault::hit(site) at that site
// throws CompileError(kFaultInjected) on a deterministic subset of hits.
// Hit counting is scoped per top-level operation (one compile, one parse,
// one batch job), not global: Scope installs a fresh thread-local counter
// unless one is already active, and lcmm::par propagates the active counter
// into pool tasks exactly like the obs sink. With the default one-shot
// config (fires = 1) exactly one hit fires per operation no matter how the
// scheduler interleaves workers — which is what makes batch outcomes
// identical for --jobs 1 and --jobs 8.
//
// Arming: programmatically via arm()/ArmedGuard (tests), or from the
// LCMM_FAULT environment variable (CI):
//
//   LCMM_FAULT=site            fire the 1st hit of `site`, once
//   LCMM_FAULT=site:3          fire the 3rd hit, once
//   LCMM_FAULT=site:1:2        fire hits 1 and 2
//   LCMM_FAULT=site:1:*        sticky: fire every hit from the 1st on
//
// One-shot faults exercise one rung transition (the ladder recovers on the
// next rung); sticky faults on a pass site force the walk all the way to
// UMM. Sticky faults on sites every rung shares (dse.explore, pass.place,
// par.task, driver.job) defeat the ladder entirely by design.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace lcmm::resil::fault {

/// Registered injection sites (pass boundaries, DSE, the par task wrapper,
/// the io parser, the batch driver).
std::span<const char* const> sites();
bool is_site(std::string_view name);

struct Config {
  std::string site;
  std::int64_t nth = 1;    ///< First matching hit that fires (1-based).
  std::int64_t fires = 1;  ///< Consecutive firing hits from nth; < 0 = sticky.
};

/// Arm `config` process-wide (throws OptionError on an unknown site).
void arm(Config config);
void disarm();
std::optional<Config> armed();
/// Parse LCMM_FAULT ("site[:nth[:fires]]", fires '*' = sticky). Malformed
/// or unknown values log a warning and leave the registry disarmed.
/// Idempotent per process; Scope calls it lazily so tools need no wiring.
void arm_from_env();

/// Opaque per-operation hit counter; shared by every thread helping with
/// one top-level operation.
struct State {
  std::atomic<std::int64_t> hits{0};
};

/// The counter active on this thread, or nullptr outside any Scope.
State* current_state();

/// Installs an existing counter on this thread for the guard's lifetime —
/// how lcmm::par workers join the calling operation's fault budget.
class StateGuard {
 public:
  explicit StateGuard(State* state);
  StateGuard(const StateGuard&) = delete;
  StateGuard& operator=(const StateGuard&) = delete;
  ~StateGuard();

 private:
  State* previous_;
};

/// Top-level operation scope: installs a fresh counter unless one is
/// already active (nested scopes share the outer counter, so one compile
/// has exactly one fault budget regardless of internal structure).
class Scope {
 public:
  Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
  ~Scope();

 private:
  State own_;
  bool installed_ = false;
};

/// Injection point. No-op unless a config is armed, a Scope is active and
/// `site` matches; otherwise counts the hit and throws
/// CompileError(kFaultInjected) when the count lands in the firing window.
void hit(const char* site);

/// RAII arm/disarm for tests.
class ArmedGuard {
 public:
  explicit ArmedGuard(Config config);
  ArmedGuard(const ArmedGuard&) = delete;
  ArmedGuard& operator=(const ArmedGuard&) = delete;
  ~ArmedGuard();
};

}  // namespace lcmm::resil::fault
