// The DNN computation graph: a DAG of conv/pool layers over feature-map
// values. Graphs are built through the add_* API (which performs shape
// inference eagerly and therefore guarantees layers are appended in a valid
// topological order) and are immutable afterwards.
//
// Thread safety: construction (add_*) is single-threaded, but once built,
// all const accessors may be called concurrently — the lazily computed
// topological-order caches are filled under an internal mutex so parallel
// DSE workers can share one graph (see docs/parallelism.md).
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "graph/layer.hpp"
#include "graph/tensor.hpp"

namespace lcmm::graph {

class ComputationGraph {
 public:
  explicit ComputationGraph(std::string name);
  // The topo-cache mutex is not copyable, so the special members are
  // user-provided (each instance gets its own lock; data is deep-copied).
  ComputationGraph(const ComputationGraph& other);
  ComputationGraph& operator=(const ComputationGraph& other);
  ComputationGraph(ComputationGraph&& other) noexcept;
  ComputationGraph& operator=(ComputationGraph&& other) noexcept;
  ~ComputationGraph() = default;

  // ---- construction -----------------------------------------------------

  /// Sets the stage label attached to subsequently added layers.
  void set_stage(std::string stage) { current_stage_ = std::move(stage); }
  /// Stage labels in first-appearance order.
  std::vector<std::string> stages() const;

  /// Declares a graph input feature map.
  ValueId add_input(std::string name, FeatureShape shape);

  /// Adds a convolution (optionally with a fused residual add whose shape
  /// must equal the conv output). Returns the output value.
  ValueId add_conv(std::string name, ValueId input, ConvParams params,
                   ValueId residual = kInvalidValue);

  /// Adds a pooling layer. Returns the output value.
  ValueId add_pool(std::string name, ValueId input, PoolParams params);

  /// Fully-connected layer: 1x1 conv on a 1x1 feature map. The input must
  /// already be 1x1 spatially (use a global pool first).
  ValueId add_fc(std::string name, ValueId input, int out_features);

  /// Merges branch output values into one concatenated value (zero-copy:
  /// each producer keeps writing its own channel slice). The parts must
  /// have identical spatial shape and no consumers yet; they are retired
  /// and must not be referenced afterwards.
  ValueId add_concat(std::string name, std::span<const ValueId> parts);

  // ---- inspection ---------------------------------------------------------

  const std::string& name() const { return name_; }
  std::size_t num_layers() const { return layers_.size(); }
  const Layer& layer(LayerId id) const;
  std::span<const Layer> layers() const { return layers_; }

  /// Live values only (values retired by concat are excluded).
  std::vector<ValueId> live_values() const;
  const Value& value(ValueId id) const;
  bool value_alive(ValueId id) const;
  std::size_t num_values_allocated() const { return values_.size(); }

  /// Layer execution order (Kahn topological sort; with the append-only
  /// builder this equals layer-id order, which validate() asserts).
  const std::vector<LayerId>& topo_order() const;
  /// Position of a layer in topo_order().
  int step_of(LayerId id) const;

  /// Shape of the layer's main input value.
  const FeatureShape& input_shape(LayerId id) const;
  /// Shape of the slice this layer itself produces (for concat branches
  /// this is narrower than the output value's shape).
  const FeatureShape& own_output_shape(LayerId id) const;
  std::int64_t layer_macs(LayerId id) const;
  std::int64_t layer_weight_elems(LayerId id) const;

  std::int64_t total_macs() const;
  std::int64_t total_weight_elems() const;
  /// Conv layers only (the paper's "layers" counts).
  int num_conv_layers() const;

  /// Full consistency check: shape agreement, topological sanity, concat
  /// slice coverage, residual shape equality. Throws std::logic_error.
  void validate() const;

 private:
  ValueId new_value(std::string name, FeatureShape shape);
  LayerId append_layer(Layer layer, const FeatureShape& own_out);
  Value& mutable_value(ValueId id);

  std::string name_;
  std::string current_stage_;
  std::vector<Layer> layers_;
  std::vector<Value> values_;
  std::vector<bool> value_alive_;
  std::vector<FeatureShape> own_output_shapes_;  // indexed by LayerId
  /// Guards the lazy fill of the caches below; once filled they are only
  /// read (append_layer, a builder-phase mutation, resets them).
  mutable std::mutex topo_mutex_;
  mutable std::vector<LayerId> topo_cache_;
  mutable std::vector<int> step_cache_;
};

}  // namespace lcmm::graph
