// Layer (node) descriptions for the computation graph.
//
// The accelerator model follows FPGA practice: batch-norm/ReLU are fused
// into the preceding convolution, a ResNet shortcut add is fused into the
// convolution that closes the block (an extra input-feature stream read
// during write-out), and fully-connected layers are 1x1 convolutions on a
// 1x1 feature map. This leaves two executable layer kinds — convolution and
// pooling — which matches the paper's evaluation where "layers" are the
// conv layers of ResNet/GoogLeNet/Inception-v4.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/tensor.hpp"

namespace lcmm::graph {

enum class LayerKind : std::uint8_t { kConv, kPool };

enum class PoolType : std::uint8_t { kMax, kAvg };

/// Convolution parameters. Fully-connected layers use kernel 1, stride 1 on
/// a 1x1 input. Output shape: floor((in + 2*pad - kernel)/stride) + 1.
/// `groups` partitions input and output channels (depthwise convolution:
/// groups == in_channels == out_channels).
struct ConvParams {
  int out_channels = 0;
  int kernel_h = 0;
  int kernel_w = 0;
  int stride = 1;
  int pad_h = 0;
  int pad_w = 0;
  int groups = 1;
};

/// Pooling parameters. `global` pools the full spatial extent to 1x1.
/// `ceil_mode` selects Caffe-style ceil output extents (GoogLeNet) versus
/// floor extents (ResNet, Inception-v4 "valid" pooling).
struct PoolParams {
  PoolType type = PoolType::kMax;
  int kernel = 0;
  int stride = 1;
  int pad = 0;
  bool global = false;
  bool ceil_mode = false;
};

struct Layer {
  LayerId id = kInvalidLayer;
  std::string name;
  /// Network stage / block label ("conv1", "inception_3a", ...); used by the
  /// per-block analyses (paper Fig. 2(b) and Fig. 8).
  std::string stage;
  LayerKind kind = LayerKind::kConv;

  /// Main data input value.
  ValueId input = kInvalidValue;
  /// Optional fused residual input (conv only): a second feature stream
  /// added element-wise during output write-out.
  ValueId residual = kInvalidValue;
  /// Output value. Several layers may share an output value via concat.
  ValueId output = kInvalidValue;
  /// Channel offset of this layer's slice within the output value
  /// (non-zero only for branches of a concat value).
  int output_channel_offset = 0;

  ConvParams conv;
  PoolParams pool;

  bool is_conv() const { return kind == LayerKind::kConv; }
  bool has_residual() const { return residual != kInvalidValue; }

  /// Number of weight elements (conv: M*C*Kh*Kw; pool: 0).
  /// `in_channels` must be the channel count of the input value.
  std::int64_t weight_elems(int in_channels) const;

  /// Multiply-accumulate count given input/output shapes. Pooling is
  /// counted as one op per window element (it shares the datapath but is
  /// never the bottleneck).
  std::int64_t macs(const FeatureShape& in, const FeatureShape& out) const;
};

/// Output spatial/channel shape of a layer applied to `in`.
/// Throws std::invalid_argument on inconsistent parameters.
FeatureShape infer_output_shape(const Layer& layer, const FeatureShape& in);

std::string to_string(LayerKind kind);

}  // namespace lcmm::graph
