#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace lcmm::graph {

ComputationGraph::ComputationGraph(std::string name) : name_(std::move(name)) {}

ComputationGraph::ComputationGraph(const ComputationGraph& other) {
  *this = other;
}

ComputationGraph& ComputationGraph::operator=(const ComputationGraph& other) {
  if (this == &other) return *this;
  // Lock the source so a copy taken while other threads read (and lazily
  // fill) its caches is race-free; the destination gets a fresh mutex.
  std::lock_guard<std::mutex> lock(other.topo_mutex_);
  name_ = other.name_;
  current_stage_ = other.current_stage_;
  layers_ = other.layers_;
  values_ = other.values_;
  value_alive_ = other.value_alive_;
  own_output_shapes_ = other.own_output_shapes_;
  topo_cache_ = other.topo_cache_;
  step_cache_ = other.step_cache_;
  return *this;
}

ComputationGraph::ComputationGraph(ComputationGraph&& other) noexcept {
  *this = std::move(other);
}

ComputationGraph& ComputationGraph::operator=(ComputationGraph&& other) noexcept {
  if (this == &other) return *this;
  // Moves require exclusive access to `other` (standard move semantics);
  // no lock is taken here. Locking would not make moving a concurrently
  // used graph safe, and std::mutex::lock can throw, which a noexcept
  // operation must not risk.
  name_ = std::move(other.name_);
  current_stage_ = std::move(other.current_stage_);
  layers_ = std::move(other.layers_);
  values_ = std::move(other.values_);
  value_alive_ = std::move(other.value_alive_);
  own_output_shapes_ = std::move(other.own_output_shapes_);
  topo_cache_ = std::move(other.topo_cache_);
  step_cache_ = std::move(other.step_cache_);
  return *this;
}

ValueId ComputationGraph::new_value(std::string name, FeatureShape shape) {
  const ValueId id = static_cast<ValueId>(values_.size());
  values_.push_back(Value{id, std::move(name), shape, {}, {}});
  value_alive_.push_back(true);
  return id;
}

Value& ComputationGraph::mutable_value(ValueId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= values_.size()) {
    throw std::out_of_range("value id " + std::to_string(id) + " out of range");
  }
  if (!value_alive_[static_cast<std::size_t>(id)]) {
    throw std::logic_error("value id " + std::to_string(id) +
                           " was retired by a concat and must not be used");
  }
  return values_[static_cast<std::size_t>(id)];
}

const Value& ComputationGraph::value(ValueId id) const {
  return const_cast<ComputationGraph*>(this)->mutable_value(id);
}

bool ComputationGraph::value_alive(ValueId id) const {
  return id >= 0 && static_cast<std::size_t>(id) < values_.size() &&
         value_alive_[static_cast<std::size_t>(id)];
}

ValueId ComputationGraph::add_input(std::string name, FeatureShape shape) {
  if (shape.channels <= 0 || shape.height <= 0 || shape.width <= 0) {
    throw std::invalid_argument("add_input '" + name + "': bad shape " +
                                shape.to_string());
  }
  return new_value(std::move(name), shape);
}

std::vector<std::string> ComputationGraph::stages() const {
  std::vector<std::string> out;
  for (const Layer& l : layers_) {
    if (out.empty() || out.back() != l.stage) {
      if (std::find(out.begin(), out.end(), l.stage) == out.end()) {
        out.push_back(l.stage);
      }
    }
  }
  return out;
}

LayerId ComputationGraph::append_layer(Layer layer, const FeatureShape& own_out) {
  const LayerId id = static_cast<LayerId>(layers_.size());
  layer.id = id;
  layer.stage = current_stage_;
  mutable_value(layer.input).consumers.push_back(id);
  if (layer.has_residual()) mutable_value(layer.residual).consumers.push_back(id);
  mutable_value(layer.output).producers.push_back(id);
  layers_.push_back(std::move(layer));
  own_output_shapes_.push_back(own_out);
  topo_cache_.clear();
  step_cache_.clear();
  return id;
}

ValueId ComputationGraph::add_conv(std::string name, ValueId input,
                                   ConvParams params, ValueId residual) {
  Layer layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kConv;
  layer.input = input;
  layer.residual = residual;
  layer.conv = params;
  const FeatureShape out = infer_output_shape(layer, value(input).shape);
  if (residual != kInvalidValue && !(value(residual).shape == out)) {
    throw std::invalid_argument("conv '" + layer.name + "': residual shape " +
                                value(residual).shape.to_string() +
                                " != output shape " + out.to_string());
  }
  layer.output = new_value(layer.name + ".out", out);
  append_layer(layer, out);
  return layer.output;
}

ValueId ComputationGraph::add_pool(std::string name, ValueId input,
                                   PoolParams params) {
  Layer layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kPool;
  layer.input = input;
  layer.pool = params;
  const FeatureShape out = infer_output_shape(layer, value(input).shape);
  layer.output = new_value(layer.name + ".out", out);
  append_layer(layer, out);
  return layer.output;
}

ValueId ComputationGraph::add_fc(std::string name, ValueId input, int out_features) {
  const FeatureShape& in = value(input).shape;
  if (in.height != 1 || in.width != 1) {
    throw std::invalid_argument("add_fc '" + name + "': input must be 1x1, got " +
                                in.to_string());
  }
  return add_conv(std::move(name), input,
                  ConvParams{out_features, 1, 1, /*stride=*/1, 0, 0});
}

ValueId ComputationGraph::add_concat(std::string name,
                                     std::span<const ValueId> parts) {
  if (parts.size() < 2) {
    throw std::invalid_argument("add_concat '" + name + "': needs >= 2 parts");
  }
  const FeatureShape& first = value(parts[0]).shape;
  int channels = 0;
  for (ValueId part : parts) {
    const Value& v = value(part);
    if (v.producers.empty()) {
      throw std::invalid_argument("add_concat '" + name +
                                  "': part is a graph input");
    }
    if (!v.consumers.empty()) {
      throw std::invalid_argument("add_concat '" + name + "': part '" + v.name +
                                  "' already has consumers");
    }
    if (v.shape.height != first.height || v.shape.width != first.width) {
      throw std::invalid_argument("add_concat '" + name + "': spatial mismatch " +
                                  v.shape.to_string() + " vs " + first.to_string());
    }
    channels += v.shape.channels;
  }
  const ValueId merged =
      new_value(std::move(name), FeatureShape{channels, first.height, first.width});
  int offset = 0;
  for (ValueId part : parts) {
    Value& v = mutable_value(part);
    for (LayerId producer : v.producers) {
      Layer& layer = layers_[static_cast<std::size_t>(producer)];
      layer.output = merged;
      layer.output_channel_offset += offset;
      values_[static_cast<std::size_t>(merged)].producers.push_back(producer);
    }
    offset += v.shape.channels;
    value_alive_[static_cast<std::size_t>(part)] = false;
  }
  return merged;
}

const Layer& ComputationGraph::layer(LayerId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= layers_.size()) {
    throw std::out_of_range("layer id " + std::to_string(id) + " out of range");
  }
  return layers_[static_cast<std::size_t>(id)];
}

std::vector<ValueId> ComputationGraph::live_values() const {
  std::vector<ValueId> out;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (value_alive_[i]) out.push_back(static_cast<ValueId>(i));
  }
  return out;
}

const std::vector<LayerId>& ComputationGraph::topo_order() const {
  // Serialize the lazy fill; after it, the caches are immutable until the
  // next builder-phase mutation, so the returned reference stays valid for
  // concurrent readers.
  std::lock_guard<std::mutex> lock(topo_mutex_);
  if (!topo_cache_.empty() || layers_.empty()) return topo_cache_;
  // Kahn's algorithm over layer->layer dependencies induced by values.
  std::vector<int> indegree(layers_.size(), 0);
  std::vector<std::vector<LayerId>> succ(layers_.size());
  for (const Layer& layer : layers_) {
    for (ValueId in : {layer.input, layer.residual}) {
      if (in == kInvalidValue) continue;
      for (LayerId producer : values_[static_cast<std::size_t>(in)].producers) {
        succ[static_cast<std::size_t>(producer)].push_back(layer.id);
        ++indegree[static_cast<std::size_t>(layer.id)];
      }
    }
  }
  std::vector<LayerId> ready;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(static_cast<LayerId>(i));
  }
  // Min-id first gives the deterministic builder order.
  std::make_heap(ready.begin(), ready.end(), std::greater<>());
  while (!ready.empty()) {
    std::pop_heap(ready.begin(), ready.end(), std::greater<>());
    const LayerId next = ready.back();
    ready.pop_back();
    topo_cache_.push_back(next);
    for (LayerId s : succ[static_cast<std::size_t>(next)]) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) {
        ready.push_back(s);
        std::push_heap(ready.begin(), ready.end(), std::greater<>());
      }
    }
  }
  if (topo_cache_.size() != layers_.size()) {
    topo_cache_.clear();
    throw std::logic_error("graph '" + name_ + "' contains a cycle");
  }
  step_cache_.assign(layers_.size(), -1);
  for (std::size_t pos = 0; pos < topo_cache_.size(); ++pos) {
    step_cache_[static_cast<std::size_t>(topo_cache_[pos])] = static_cast<int>(pos);
  }
  return topo_cache_;
}

int ComputationGraph::step_of(LayerId id) const {
  topo_order();
  if (id < 0 || static_cast<std::size_t>(id) >= step_cache_.size()) {
    throw std::out_of_range("layer id " + std::to_string(id) + " out of range");
  }
  return step_cache_[static_cast<std::size_t>(id)];
}

const FeatureShape& ComputationGraph::input_shape(LayerId id) const {
  return value(layer(id).input).shape;
}

const FeatureShape& ComputationGraph::own_output_shape(LayerId id) const {
  layer(id);  // bounds check
  return own_output_shapes_[static_cast<std::size_t>(id)];
}

std::int64_t ComputationGraph::layer_macs(LayerId id) const {
  const Layer& l = layer(id);
  return l.macs(input_shape(id), own_output_shape(id));
}

std::int64_t ComputationGraph::layer_weight_elems(LayerId id) const {
  const Layer& l = layer(id);
  return l.weight_elems(input_shape(id).channels);
}

std::int64_t ComputationGraph::total_macs() const {
  std::int64_t total = 0;
  for (const Layer& l : layers_) total += layer_macs(l.id);
  return total;
}

std::int64_t ComputationGraph::total_weight_elems() const {
  std::int64_t total = 0;
  for (const Layer& l : layers_) total += layer_weight_elems(l.id);
  return total;
}

int ComputationGraph::num_conv_layers() const {
  int n = 0;
  for (const Layer& l : layers_) n += l.is_conv() ? 1 : 0;
  return n;
}

void ComputationGraph::validate() const {
  const std::vector<LayerId>& order = topo_order();
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    if (order[pos] != static_cast<LayerId>(pos)) {
      throw std::logic_error("graph '" + name_ +
                             "': builder order is not topological");
    }
  }
  for (const Layer& l : layers_) {
    if (!value_alive(l.input) || !value_alive(l.output)) {
      throw std::logic_error("layer '" + l.name + "' references a retired value");
    }
    const FeatureShape own = infer_output_shape(l, input_shape(l.id));
    if (!(own == own_output_shapes_[static_cast<std::size_t>(l.id)])) {
      throw std::logic_error("layer '" + l.name + "': cached shape mismatch");
    }
    const Value& out = value(l.output);
    if (l.output_channel_offset < 0 ||
        l.output_channel_offset + own.channels > out.shape.channels) {
      throw std::logic_error("layer '" + l.name + "': slice exceeds output value");
    }
  }
  // Concat coverage: producers' slices must exactly tile the value.
  for (ValueId vid : live_values()) {
    const Value& v = value(vid);
    if (v.producers.empty()) continue;
    std::int64_t covered = 0;
    for (LayerId p : v.producers) {
      covered += own_output_shapes_[static_cast<std::size_t>(p)].channels;
    }
    if (covered != v.shape.channels) {
      throw std::logic_error("value '" + v.name + "': producer slices cover " +
                             std::to_string(covered) + " of " +
                             std::to_string(v.shape.channels) + " channels");
    }
  }
}

}  // namespace lcmm::graph
