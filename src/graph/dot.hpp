// Graphviz DOT export of a computation graph, for debugging model builders
// and for visualizing interference/prefetch structures in the examples.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace lcmm::graph {

/// Renders layers as boxes and values as edges labelled with their shapes.
std::string to_dot(const ComputationGraph& graph);

}  // namespace lcmm::graph
