#include "graph/tensor.hpp"

namespace lcmm::graph {

std::string FeatureShape::to_string() const {
  return std::to_string(channels) + "x" + std::to_string(height) + "x" +
         std::to_string(width);
}

}  // namespace lcmm::graph
