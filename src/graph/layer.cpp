#include "graph/layer.hpp"

#include <stdexcept>

namespace lcmm::graph {

std::int64_t Layer::weight_elems(int in_channels) const {
  if (kind != LayerKind::kConv) return 0;
  return static_cast<std::int64_t>(conv.out_channels) *
         (in_channels / conv.groups) * conv.kernel_h * conv.kernel_w;
}

std::int64_t Layer::macs(const FeatureShape& in, const FeatureShape& out) const {
  if (kind == LayerKind::kConv) {
    std::int64_t m = static_cast<std::int64_t>(out.channels) * out.height *
                     out.width * (in.channels / conv.groups) * conv.kernel_h *
                     conv.kernel_w;
    if (has_residual()) m += out.elems();  // fused element-wise add
    return m;
  }
  const std::int64_t window = pool.global
                                  ? static_cast<std::int64_t>(in.height) * in.width
                                  : static_cast<std::int64_t>(pool.kernel) * pool.kernel;
  return out.elems() * window;
}

namespace {
int conv_extent(int in, int pad, int kernel, int stride) {
  const int padded = in + 2 * pad;
  if (padded < kernel) {
    throw std::invalid_argument("conv window larger than padded input (" +
                                std::to_string(padded) + " < " + std::to_string(kernel) + ")");
  }
  return (padded - kernel) / stride + 1;
}
}  // namespace

FeatureShape infer_output_shape(const Layer& layer, const FeatureShape& in) {
  if (in.channels <= 0 || in.height <= 0 || in.width <= 0) {
    throw std::invalid_argument("layer '" + layer.name + "': bad input shape " +
                                in.to_string());
  }
  if (layer.kind == LayerKind::kConv) {
    const ConvParams& p = layer.conv;
    if (p.out_channels <= 0 || p.kernel_h <= 0 || p.kernel_w <= 0 || p.stride <= 0) {
      throw std::invalid_argument("layer '" + layer.name + "': bad conv params");
    }
    if (p.groups <= 0 || in.channels % p.groups != 0 ||
        p.out_channels % p.groups != 0) {
      throw std::invalid_argument(
          "layer '" + layer.name + "': groups=" + std::to_string(p.groups) +
          " must divide in=" + std::to_string(in.channels) +
          " and out=" + std::to_string(p.out_channels) + " channels");
    }
    return FeatureShape{p.out_channels,
                        conv_extent(in.height, p.pad_h, p.kernel_h, p.stride),
                        conv_extent(in.width, p.pad_w, p.kernel_w, p.stride)};
  }
  const PoolParams& p = layer.pool;
  if (p.global) return FeatureShape{in.channels, 1, 1};
  if (p.kernel <= 0 || p.stride <= 0) {
    throw std::invalid_argument("layer '" + layer.name + "': bad pool params");
  }
  const int round_up = p.ceil_mode ? p.stride - 1 : 0;
  const int eh = in.height + 2 * p.pad - p.kernel;
  const int ew = in.width + 2 * p.pad - p.kernel;
  if (eh < 0 || ew < 0) {
    throw std::invalid_argument("layer '" + layer.name +
                                "': pool window larger than padded input");
  }
  return FeatureShape{in.channels, (eh + round_up) / p.stride + 1,
                      (ew + round_up) / p.stride + 1};
}

std::string to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv: return "conv";
    case LayerKind::kPool: return "pool";
  }
  return "?";
}

}  // namespace lcmm::graph
