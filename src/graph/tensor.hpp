// Feature-map values of a DNN computation graph.
//
// Terminology follows the paper: a *value* is one logical feature map
// produced during inference (batch size 1 throughout, CHW layout). The
// allocation passes in core/ later derive per-(node, source) tensor
// entities from these values — e.g. the same value consumed by three
// convolutions appears as three input-feature tensors (f1/f2/f4 in the
// paper's Fig. 3), which is exactly how LCMM's liveness analysis wants it.
//
// A value normally has one producer layer; a value created by add_concat()
// has several (each branch writes its channel slice directly into the
// concatenated buffer, the standard zero-copy concat of FPGA accelerators).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "resil/checked.hpp"

namespace lcmm::graph {

using ValueId = std::int32_t;
using LayerId = std::int32_t;

inline constexpr ValueId kInvalidValue = -1;
inline constexpr LayerId kInvalidLayer = -1;

/// Shape of a feature-map value, batch size 1.
struct FeatureShape {
  int channels = 0;
  int height = 0;
  int width = 0;

  /// Element count, overflow-checked: dims come straight from the text
  /// parser, and a wrapped product would masquerade as a tiny tensor.
  std::int64_t elems() const {
    return resil::checked_mul(
        resil::checked_mul(channels, height, "FeatureShape::elems"), width,
        "FeatureShape::elems");
  }
  bool operator==(const FeatureShape&) const = default;
  std::string to_string() const;
};

/// One feature-map value in the graph.
struct Value {
  ValueId id = kInvalidValue;
  std::string name;
  FeatureShape shape;
  /// Layers writing this value. Empty for graph inputs; >1 for concat
  /// values (each producer owns a channel slice).
  std::vector<LayerId> producers;
  /// Layers reading this value (including reads through a residual input).
  std::vector<LayerId> consumers;

  bool is_graph_input() const { return producers.empty(); }
};

}  // namespace lcmm::graph
