#include "graph/dot.hpp"

#include <sstream>

namespace lcmm::graph {

std::string to_dot(const ComputationGraph& graph) {
  std::ostringstream os;
  os << "digraph \"" << graph.name() << "\" {\n  rankdir=TB;\n"
     << "  node [shape=box, fontname=\"monospace\"];\n";
  for (const Layer& l : graph.layers()) {
    os << "  L" << l.id << " [label=\"" << l.name << "\\n"
       << to_string(l.kind);
    if (l.is_conv()) {
      os << " " << l.conv.kernel_h << "x" << l.conv.kernel_w << "/" << l.conv.stride;
    }
    os << "\"];\n";
  }
  auto emit_edges_into = [&os, &graph](ValueId vid, LayerId consumer,
                                       const char* style) {
    const Value& v = graph.value(vid);
    if (v.producers.empty()) {
      os << "  IN" << vid << " [shape=ellipse, label=\"" << v.name << "\\n"
         << v.shape.to_string() << "\"];\n";
      os << "  IN" << vid << " -> L" << consumer << " [label=\"\"" << style
         << "];\n";
      return;
    }
    for (LayerId p : v.producers) {
      os << "  L" << p << " -> L" << consumer << " [label=\""
         << v.shape.to_string() << "\"" << style << "];\n";
    }
  };
  for (const Layer& l : graph.layers()) {
    emit_edges_into(l.input, l.id, "");
    if (l.has_residual()) emit_edges_into(l.residual, l.id, ", style=dashed");
  }
  os << "}\n";
  return os.str();
}

}  // namespace lcmm::graph
