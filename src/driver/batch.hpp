// Batch compilation driver: the models x designs x precisions sweep the
// paper's evaluation (§4) runs, as one concurrent entry point.
//
// Each BatchJob owns its graph and options, so jobs share no mutable
// state; compile_many() fans them out over lcmm::par and returns outcomes
// in input order. A job that throws reports a structured error (code,
// failing pass, job label) in BatchOutcome instead of tearing down the
// whole sweep; transient failures (injected faults, io flakes) get a
// bounded retry, and each job runs under a soft wall-clock deadline
// checked at phase boundaries. When the calling thread is collecting obs
// telemetry, per-job stats merge back in job order — the collected
// registry is identical whatever the worker count (see
// docs/parallelism.md).
#pragma once

#include <string>
#include <vector>

#include "core/lcmm.hpp"
#include "resil/error.hpp"
#include "sim/report.hpp"
#include "sim/timeline.hpp"

namespace lcmm::driver {

/// One (graph, device, precision, options) compilation unit.
struct BatchJob {
  graph::ComputationGraph graph;
  hw::FpgaDevice device = hw::FpgaDevice::vu9p();
  hw::Precision precision = hw::Precision::kInt16;
  core::LcmmOptions options;
  /// Which designs to produce. LCMM plans are stall-refined the same way
  /// lcmm_compile ships them.
  bool want_umm = true;
  bool want_lcmm = true;
  /// Label echoed in BatchOutcome and error reports ("resnet50/int8");
  /// defaults to the graph name when empty.
  std::string label;
  /// Soft per-job wall-clock budget in seconds (<= 0 = unlimited), checked
  /// at phase boundaries — a running pass is never interrupted mid-flight.
  double timeout_s = 0.0;
  /// Attempts per job: transient failures (resil::is_transient) retry up
  /// to this many times; deterministic failures fail on the first.
  int max_attempts = 2;
};

struct BatchOutcome {
  core::AllocationPlan umm_plan;   ///< Valid when the job wanted UMM.
  core::AllocationPlan lcmm_plan;  ///< Valid when the job wanted LCMM.
  sim::SimResult umm_sim;
  sim::SimResult lcmm_sim;
  sim::DesignReport umm_report;
  sim::DesignReport lcmm_report;
  std::string label;        ///< BatchJob::label (or the graph name).
  std::string error;        ///< Non-empty when the job failed; plan fields empty.
  resil::ErrorInfo error_info;  ///< Structured error (code, pass, entity).
  int attempts = 0;         ///< Attempts consumed (>1 means a retry happened).
  bool timed_out = false;   ///< Failed on the wall-clock deadline.

  bool ok() const { return error.empty(); }
  /// UMM/LCMM latency ratio (requires both designs).
  double speedup() const {
    return lcmm_report.latency_ms > 0
               ? umm_report.latency_ms / lcmm_report.latency_ms
               : 0.0;
  }
};

/// Compiles and simulates every job on up to `workers` threads
/// (0 = par::default_jobs()). Outcomes are in job order and independent of
/// the worker count.
std::vector<BatchOutcome> compile_many(const std::vector<BatchJob>& jobs,
                                       int workers = 0);

}  // namespace lcmm::driver
