#include "driver/batch.hpp"

#include <exception>

#include "par/parallel_for.hpp"

namespace lcmm::driver {

std::vector<BatchOutcome> compile_many(const std::vector<BatchJob>& jobs,
                                       int workers) {
  return par::parallel_map(jobs.size(), workers, [&](std::size_t i) {
    const BatchJob& job = jobs[i];
    BatchOutcome out;
    try {
      const core::LcmmCompiler compiler(job.device, job.precision, job.options);
      if (job.want_umm) {
        out.umm_plan = compiler.compile_umm(job.graph);
        out.umm_sim = sim::simulate(job.graph, out.umm_plan);
        out.umm_report = sim::make_report(job.graph, out.umm_plan, out.umm_sim);
      }
      if (job.want_lcmm) {
        out.lcmm_plan = compiler.compile(job.graph);
        out.lcmm_sim = sim::refine_against_stalls(job.graph, out.lcmm_plan);
        out.lcmm_report =
            sim::make_report(job.graph, out.lcmm_plan, out.lcmm_sim);
      }
    } catch (const std::exception& e) {
      out = BatchOutcome{};
      out.error = e.what();
      if (out.error.empty()) out.error = "unknown error";
    }
    return out;
  });
}

}  // namespace lcmm::driver
