#include "driver/batch.hpp"

#include <exception>

#include "par/parallel_for.hpp"
#include "resil/fault.hpp"
#include "util/logging.hpp"

namespace lcmm::driver {

namespace {

/// One attempt at a job: compile (and simulate) every requested design,
/// checking the deadline at each phase boundary.
void run_job(const BatchJob& job, const resil::Deadline& deadline,
             BatchOutcome& out) {
  resil::fault::hit("driver.job");
  const core::LcmmCompiler compiler(job.device, job.precision, job.options);
  if (job.want_umm) {
    deadline.check("driver.umm");
    out.umm_plan = compiler.compile_umm(job.graph);
    out.umm_sim = sim::simulate(job.graph, out.umm_plan);
    out.umm_report = sim::make_report(job.graph, out.umm_plan, out.umm_sim);
  }
  if (job.want_lcmm) {
    deadline.check("driver.lcmm");
    out.lcmm_plan = compiler.compile(job.graph);
    deadline.check("driver.simulate");
    out.lcmm_sim = sim::refine_against_stalls(job.graph, out.lcmm_plan);
    out.lcmm_report = sim::make_report(job.graph, out.lcmm_plan, out.lcmm_sim);
  }
}

}  // namespace

std::vector<BatchOutcome> compile_many(const std::vector<BatchJob>& jobs,
                                       int workers) {
  return par::parallel_map(jobs.size(), workers, [&](std::size_t i) {
    const BatchJob& job = jobs[i];
    BatchOutcome out;
    out.label = job.label.empty() ? job.graph.name() : job.label;
    // One fault budget for the whole job, spanning retries: a one-shot
    // injected fault fails the first attempt and proves the retry works.
    resil::fault::Scope fault_scope;
    // The deadline also spans retries — a retry is not a budget refill.
    const resil::Deadline deadline(job.timeout_s);
    const int max_attempts = job.max_attempts > 0 ? job.max_attempts : 1;
    for (int attempt = 1;; ++attempt) {
      out.attempts = attempt;
      try {
        run_job(job, deadline, out);
        out.error.clear();
        out.error_info = {};
        out.timed_out = false;
        break;
      } catch (const std::exception& e) {
        const resil::ErrorInfo info = resil::describe(e);
        out = BatchOutcome{};
        out.label = job.label.empty() ? job.graph.name() : job.label;
        out.attempts = attempt;
        out.error = e.what();
        if (out.error.empty()) out.error = "unknown error";
        out.error_info = info;
        out.timed_out = info.code == resil::Code::kJobTimeout;
        if (!out.timed_out && attempt < max_attempts &&
            resil::is_transient(info.code)) {
          LCMM_WARN() << "batch job '" << out.label << "': transient "
                      << resil::code_id(info.code) << ", attempt " << attempt
                      << "/" << max_attempts << " retrying";
          continue;
        }
        break;
      }
    }
    return out;
  });
}

}  // namespace lcmm::driver
