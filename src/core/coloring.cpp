#include "core/coloring.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "obs/scope.hpp"
#include "resil/error.hpp"

namespace lcmm::core {

namespace {

std::int64_t total_size(const InterferenceGraph& graph,
                        const std::vector<int>& color_of, int num_colors) {
  std::vector<std::int64_t> color_max(static_cast<std::size_t>(num_colors), 0);
  for (std::size_t i = 0; i < color_of.size(); ++i) {
    auto& m = color_max[static_cast<std::size_t>(color_of[i])];
    m = std::max(m, graph.entities()[i].bytes);
  }
  return std::accumulate(color_max.begin(), color_max.end(), std::int64_t{0});
}

}  // namespace

ColoringResult color_min_total_size(const InterferenceGraph& graph) {
  LCMM_SPAN("coloring");
  const std::size_t n = graph.size();
  ColoringResult result;
  result.color_of.assign(n, -1);
  if (n == 0) return result;
  std::int64_t candidates_tried = 0;

  // Largest entities first: they define buffer sizes, smaller ones pack in.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return graph.entities()[a].bytes > graph.entities()[b].bytes;
  });

  std::vector<std::int64_t> color_size;           // current max per color
  std::vector<std::vector<std::size_t>> members;  // entities per color

  for (std::size_t e : order) {
    const std::int64_t bytes = graph.entities()[e].bytes;
    int best_color = -1;
    std::int64_t best_cost = std::numeric_limits<std::int64_t>::max();
    std::int64_t best_slack = std::numeric_limits<std::int64_t>::max();
    for (std::size_t c = 0; c < color_size.size(); ++c) {
      ++candidates_tried;
      const bool compatible = std::none_of(
          members[c].begin(), members[c].end(),
          [&](std::size_t other) { return graph.interferes(e, other); });
      if (!compatible) continue;
      const std::int64_t growth = std::max<std::int64_t>(0, bytes - color_size[c]);
      const std::int64_t slack = std::max<std::int64_t>(0, color_size[c] - bytes);
      // Prefer zero growth with the tightest fit; otherwise minimal growth.
      if (growth < best_cost || (growth == best_cost && slack < best_slack)) {
        best_cost = growth;
        best_slack = slack;
        best_color = static_cast<int>(c);
      }
    }
    if (best_color < 0 || best_cost >= bytes) {
      // A fresh color is never worse than growing an existing one by the
      // full entity size.
      best_color = static_cast<int>(color_size.size());
      color_size.push_back(0);
      members.emplace_back();
    }
    result.color_of[e] = best_color;
    members[static_cast<std::size_t>(best_color)].push_back(e);
    auto& cs = color_size[static_cast<std::size_t>(best_color)];
    cs = std::max(cs, bytes);
  }
  result.num_colors = static_cast<int>(color_size.size());
  result.total_bytes = total_size(graph, result.color_of, result.num_colors);
  LCMM_COUNT("entities", static_cast<std::int64_t>(n));
  LCMM_COUNT("colors", result.num_colors);
  LCMM_COUNT("candidates_tried", candidates_tried);
  LCMM_GAUGE("total_bytes", static_cast<double>(result.total_bytes));
  return result;
}

ColoringResult color_optimal_small(const InterferenceGraph& graph,
                                   std::size_t max_entities) {
  const std::size_t n = graph.size();
  if (n > max_entities) {
    throw resil::OptionError(resil::Code::kGraphTooLarge, "pass.coloring",
        "color_optimal_small: graph too large (" +
                                std::to_string(n) + " entities)");
  }
  ColoringResult best;
  if (n == 0) return best;

  std::vector<int> assignment(n, -1);
  std::int64_t best_total = std::numeric_limits<std::int64_t>::max();

  // Restricted-growth enumeration of set partitions with interference pruning.
  auto recurse = [&](auto&& self, std::size_t i, int used_colors) -> void {
    if (i == n) {
      const std::int64_t total = total_size(graph, assignment, used_colors);
      if (total < best_total) {
        best_total = total;
        best.color_of = assignment;
        best.num_colors = used_colors;
        best.total_bytes = total;
      }
      return;
    }
    for (int c = 0; c <= used_colors && c < static_cast<int>(n); ++c) {
      bool ok = true;
      for (std::size_t j = 0; j < i && ok; ++j) {
        if (assignment[j] == c && graph.interferes(i, j)) ok = false;
      }
      if (!ok) continue;
      assignment[i] = c;
      self(self, i + 1, std::max(used_colors, c + 1));
      assignment[i] = -1;
    }
  };
  recurse(recurse, 0, 0);
  return best;
}

bool coloring_is_valid(const InterferenceGraph& graph,
                       const ColoringResult& result) {
  if (result.color_of.size() != graph.size()) return false;
  for (std::size_t a = 0; a < graph.size(); ++a) {
    if (result.color_of[a] < 0 || result.color_of[a] >= result.num_colors) {
      return false;
    }
    for (std::size_t b = a + 1; b < graph.size(); ++b) {
      if (result.color_of[a] == result.color_of[b] && graph.interferes(a, b)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace lcmm::core
