#include "core/pipeline.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "obs/scope.hpp"
#include "sim/timeline.hpp"
#include "util/logging.hpp"
#include "resil/error.hpp"

namespace lcmm::core {

std::vector<int> legal_cut_points(const graph::ComputationGraph& graph) {
  const int steps = static_cast<int>(graph.num_layers());
  // A cut after step s is illegal if some value has producers both at
  // steps <= s and steps > s (its slices would live on two accelerators).
  std::vector<bool> illegal(static_cast<std::size_t>(steps), false);
  for (graph::ValueId vid : graph.live_values()) {
    const graph::Value& v = graph.value(vid);
    if (v.producers.size() < 2) continue;
    int lo = steps, hi = -1;
    for (graph::LayerId p : v.producers) {
      lo = std::min(lo, graph.step_of(p));
      hi = std::max(hi, graph.step_of(p));
    }
    for (int s = lo; s < hi; ++s) illegal[static_cast<std::size_t>(s)] = true;
  }
  std::vector<int> cuts;
  for (int s = 0; s < steps - 1; ++s) {
    if (!illegal[static_cast<std::size_t>(s)]) cuts.push_back(s);
  }
  return cuts;
}

graph::ComputationGraph extract_segment(const graph::ComputationGraph& graph,
                                        int first_step, int last_step) {
  const std::vector<graph::LayerId>& order = graph.topo_order();
  if (first_step < 0 || last_step >= static_cast<int>(order.size()) ||
      first_step > last_step) {
    throw resil::OptionError(resil::Code::kBadArgument, "core.pipeline",
                             "extract_segment: bad step range");
  }
  graph::ComputationGraph segment(graph.name() + "[" +
                                  std::to_string(first_step) + ".." +
                                  std::to_string(last_step) + "]");
  // Old value id -> new value id; external values become inputs.
  std::map<graph::ValueId, graph::ValueId> mapped;
  const auto resolve = [&](graph::ValueId old) {
    const auto it = mapped.find(old);
    if (it != mapped.end()) return it->second;
    const graph::Value& v = graph.value(old);
    for (graph::LayerId p : v.producers) {
      const int s = graph.step_of(p);
      if (s >= first_step && s <= last_step) {
        throw resil::OptionError(
            resil::Code::kBadArgument, "core.pipeline",
            "extract_segment: value '" + v.name +
            "' has producers on both sides of the cut");
      }
    }
    const graph::ValueId fresh = segment.add_input(v.name, v.shape);
    mapped.emplace(old, fresh);
    return fresh;
  };

  // Pending concat groups: old merged value -> emitted member values.
  std::map<graph::ValueId, std::vector<graph::ValueId>> pending_concats;

  std::string stage;
  for (int s = first_step; s <= last_step; ++s) {
    const graph::Layer& l = graph.layer(order[static_cast<std::size_t>(s)]);
    if (l.stage != stage) {
      stage = l.stage;
      segment.set_stage(stage);
    }
    const graph::ValueId input = resolve(l.input);
    graph::ValueId out;
    if (l.kind == graph::LayerKind::kPool) {
      out = segment.add_pool(l.name, input, l.pool);
    } else {
      const graph::ValueId residual =
          l.has_residual() ? resolve(l.residual) : graph::kInvalidValue;
      out = segment.add_conv(l.name, input, l.conv, residual);
    }
    const graph::Value& old_out = graph.value(l.output);
    if (old_out.producers.size() < 2) {
      mapped.emplace(l.output, out);
      continue;
    }
    // Multi-producer value: emit the concat once every producer is placed.
    auto& members = pending_concats[l.output];
    members.push_back(out);
    if (members.size() == old_out.producers.size()) {
      // Order members by the producers' channel offsets.
      std::vector<std::pair<int, graph::ValueId>> ordered;
      std::vector<graph::LayerId> producers = old_out.producers;
      std::sort(producers.begin(), producers.end(),
                [&](graph::LayerId a, graph::LayerId b) {
                  return graph.layer(a).output_channel_offset <
                         graph.layer(b).output_channel_offset;
                });
      std::vector<graph::ValueId> parts;
      for (graph::LayerId p : producers) {
        // Members were pushed in topo order; find the matching emitted
        // value by the producing layer's name.
        for (graph::ValueId candidate : members) {
          const graph::Value& cv = segment.value(candidate);
          if (cv.producers.size() == 1 &&
              segment.layer(cv.producers.front()).name ==
                  graph.layer(p).name) {
            parts.push_back(candidate);
            break;
          }
        }
      }
      if (parts.size() != members.size()) {
        throw resil::CompileError(resil::Code::kInternal, "core.pipeline",
                                  "extract_segment: concat reconstruction failed");
      }
      mapped.emplace(l.output, segment.add_concat(old_out.name, parts));
      pending_concats.erase(l.output);
    }
  }
  if (!pending_concats.empty()) {
    throw resil::OptionError(
        resil::Code::kBadArgument, "core.pipeline",
        "extract_segment: cut splits a concat producer group");
  }
  segment.validate();
  return segment;
}

PipelinePartitioner::PipelinePartitioner(hw::FpgaDevice device,
                                         hw::Precision precision,
                                         LcmmOptions options)
    : device_(std::move(device)), precision_(precision),
      options_(std::move(options)) {}

hw::FpgaDevice PipelinePartitioner::device_slice(int num_segments) const {
  if (num_segments < 1) {
    throw resil::OptionError(resil::Code::kBadArgument, "core.pipeline",
                             "device_slice: num_segments < 1");
  }
  hw::FpgaDevice slice = device_;
  slice.dsp_total /= num_segments;
  slice.bram36_total /= num_segments;
  slice.uram_total /= num_segments;
  // DRAM banks are physical; distribute them (at least one per slice).
  slice.ddr_banks = std::max(1, device_.ddr_banks / num_segments);
  return slice;
}

PipelinePlan PipelinePartitioner::partition(
    const graph::ComputationGraph& graph, int num_segments) const {
  // Named "partition" (not "pipeline"): the LcmmCompiler driver owns the
  // "pipeline" span, and this pass compiles every segment through it.
  LCMM_SPAN("partition");
  const int steps = static_cast<int>(graph.num_layers());
  if (num_segments < 1 || num_segments > steps) {
    throw resil::OptionError(resil::Code::kBadArgument, "core.pipeline",
                             "partition: bad num_segments");
  }
  const hw::FpgaDevice slice = device_slice(num_segments);
  LcmmCompiler compiler(slice, precision_, options_);

  // Cheap per-layer latency estimates on the slice for the boundary DP.
  const hw::Dse dse(slice, precision_, options_.dse);
  const hw::DseResult seed = dse.explore(graph);
  hw::PerfModel model(graph, seed.design);
  std::vector<double> prefix(static_cast<std::size_t>(steps) + 1, 0.0);
  const auto& order = graph.topo_order();
  for (int s = 0; s < steps; ++s) {
    prefix[static_cast<std::size_t>(s) + 1] =
        prefix[static_cast<std::size_t>(s)] +
        model.timing(order[static_cast<std::size_t>(s)]).umm_latency();
  }

  // Candidate boundaries: legal cuts plus the end of the network.
  std::vector<int> cuts = legal_cut_points(graph);
  cuts.push_back(steps - 1);
  const int n = static_cast<int>(cuts.size());
  LCMM_COUNT("legal_cuts", n);
  LCMM_COUNT("dp_cells",
             static_cast<std::int64_t>(num_segments) * n * n);
  if (num_segments > n) {
    throw resil::OptionError(resil::Code::kInfeasiblePartition, "core.pipeline",
        "partition: only " + std::to_string(n) +
                                " legal segments available");
  }

  // DP minimizing the bottleneck: best[k][i] = min over j < i of
  // max(best[k-1][j], cost(j, i]), over cut indices.
  const double kInf = std::numeric_limits<double>::infinity();
  const auto cost = [&](int from_step, int to_cut) {
    // Segment covering steps (from_step .. cuts[to_cut]].
    return prefix[static_cast<std::size_t>(cuts[static_cast<std::size_t>(
               to_cut)]) + 1] -
           prefix[static_cast<std::size_t>(from_step)];
  };
  std::vector<std::vector<double>> best(
      static_cast<std::size_t>(num_segments) + 1,
      std::vector<double>(static_cast<std::size_t>(n), kInf));
  std::vector<std::vector<int>> back(
      static_cast<std::size_t>(num_segments) + 1,
      std::vector<int>(static_cast<std::size_t>(n), -1));
  for (int i = 0; i < n; ++i) best[1][static_cast<std::size_t>(i)] = cost(0, i);
  for (int k = 2; k <= num_segments; ++k) {
    for (int i = k - 1; i < n; ++i) {
      for (int j = k - 2; j < i; ++j) {
        const double candidate =
            std::max(best[static_cast<std::size_t>(k - 1)]
                         [static_cast<std::size_t>(j)],
                     cost(cuts[static_cast<std::size_t>(j)] + 1, i));
        if (candidate < best[static_cast<std::size_t>(k)]
                            [static_cast<std::size_t>(i)]) {
          best[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] =
              candidate;
          back[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] = j;
        }
      }
    }
  }

  // Recover boundaries (cut indices), last segment ends at cuts[n-1].
  std::vector<int> boundary_steps;
  {
    int i = n - 1;
    for (int k = num_segments; k >= 1; --k) {
      boundary_steps.push_back(cuts[static_cast<std::size_t>(i)]);
      i = back[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)];
    }
    std::reverse(boundary_steps.begin(), boundary_steps.end());
  }

  // Compile each segment with LCMM on its slice.
  PipelinePlan plan;
  int from = 0;
  for (int boundary : boundary_steps) {
    PipelineSegment segment;
    segment.first_step = from;
    segment.last_step = boundary;
    segment.subgraph = extract_segment(graph, from, boundary);
    segment.plan = compiler.compile(segment.subgraph);
    const sim::SimResult sim =
        sim::refine_against_stalls(segment.subgraph, segment.plan);
    segment.latency_s = sim.total_s;
    plan.bottleneck_s = std::max(plan.bottleneck_s, segment.latency_s);
    plan.latency_s += segment.latency_s;
    from = boundary + 1;
    LCMM_COUNT("segments", 1);
    plan.segments.push_back(std::move(segment));
  }
  LCMM_INFO() << "pipeline(" << graph.name() << ", K=" << num_segments
              << "): II " << plan.bottleneck_s * 1e3 << " ms, latency "
              << plan.latency_s * 1e3 << " ms";
  return plan;
}

}  // namespace lcmm::core
