#include "core/export.hpp"

#include <sstream>

namespace lcmm::core {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}
}  // namespace

std::string interference_to_dot(const InterferenceGraph& graph) {
  std::ostringstream os;
  os << "graph interference {\n  node [shape=ellipse, fontname=\"monospace\"];\n";
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const TensorEntity& e = graph.entities()[i];
    os << "  t" << i << " [label=\"" << escape(e.name) << "\\n"
       << e.bytes / 1024 << " KiB [" << e.def_step << "," << e.last_use_step
       << "]\"];\n";
  }
  for (std::size_t a = 0; a < graph.size(); ++a) {
    for (std::size_t b = a + 1; b < graph.size(); ++b) {
      if (!graph.interferes(a, b)) continue;
      os << "  t" << a << " -- t" << b;
      if (graph.is_false_edge(a, b)) {
        os << " [style=dashed, color=red, label=\"split\"]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string pdg_to_dot(const graph::ComputationGraph& graph,
                       const PrefetchResult& prefetch) {
  std::ostringstream os;
  os << "digraph pdg {\n  rankdir=LR;\n"
     << "  node [shape=box, fontname=\"monospace\"];\n";
  // Execution order as a spine.
  const auto& order = graph.topo_order();
  for (std::size_t s = 0; s < order.size(); ++s) {
    os << "  n" << s << " [label=\"" << escape(graph.layer(order[s]).name)
       << "\"];\n";
    if (s > 0) os << "  n" << s - 1 << " -> n" << s << " [color=gray];\n";
  }
  for (const PrefetchEdge& e : prefetch.edges()) {
    const int target = graph.step_of(e.target);
    const int start = std::max(0, e.start_step);
    os << "  n" << start << " -> n" << target
       << " [constraint=false, label=\"prefetch "
       << escape(graph.layer(e.target).name) << ".wt\\n"
       << static_cast<long long>(e.load_seconds * 1e6) << " us\""
       << (e.fully_hidden() ? ", color=blue"
                            : ", color=red, penwidth=2") << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string plan_to_dot(const AllocationPlan& plan) {
  std::ostringstream os;
  os << "digraph plan {\n  node [shape=record, fontname=\"monospace\"];\n";
  for (std::size_t b = 0; b < plan.buffers.size(); ++b) {
    const VirtualBuffer& buf = plan.buffers[b];
    os << "  b" << b << " [label=\"{vbuf" << buf.id << " | "
       << buf.bytes / 1024 << " KiB";
    for (std::size_t e : buf.members) {
      os << " | " << escape(plan.entities[e].name);
    }
    os << "}\""
       << (plan.buffer_on_chip[b]
               ? ", style=filled, fillcolor=lightblue"
               : ", style=filled, fillcolor=lightgray")
       << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace lcmm::core
