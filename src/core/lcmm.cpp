#include "core/lcmm.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/scope.hpp"
#include "resil/fault.hpp"
#include "util/logging.hpp"

namespace lcmm::core {

namespace {

AllocatorResult run_allocator(AllocatorKind kind, const InterferenceGraph& ig,
                              const std::vector<VirtualBuffer>& buffers,
                              const LatencyTables& tables,
                              std::int64_t capacity,
                              const AllocatorOptions& options) {
  switch (kind) {
    case AllocatorKind::kDnnk:
      return dnnk_allocate(ig, buffers, tables, capacity, options);
    case AllocatorKind::kGreedy:
      return greedy_allocate(ig, buffers, tables, capacity, options);
    case AllocatorKind::kExact:
      return exact_allocate(ig, buffers, tables, capacity, options);
  }
  throw resil::CompileError(resil::Code::kInternal, "pass.dnnk",
                            "run_allocator: bad allocator kind");
}

/// Grants consumers whose entire value sits on chip a free on-chip read:
/// if every producer slice of a value has its output entity on chip (the
/// buffers persist to the value's last consumer by construction), the data
/// never needs to be re-fetched from DRAM.
void propagate_output_residency(const graph::ComputationGraph& graph,
                                OnChipState& state) {
  for (graph::ValueId vid : graph.live_values()) {
    const graph::Value& v = graph.value(vid);
    if (v.producers.empty()) continue;
    const bool all_on = std::all_of(
        v.producers.begin(), v.producers.end(), [&](graph::LayerId p) {
          return state.is_on({p, TensorSource::kOutput});
        });
    if (!all_on) continue;
    for (graph::LayerId c : v.consumers) {
      const graph::Layer& consumer = graph.layer(c);
      if (consumer.input == vid) state.set({c, TensorSource::kInput}, true);
      if (consumer.residual == vid) state.set({c, TensorSource::kResidual}, true);
    }
  }
}

}  // namespace

bool AllocationPlan::weight_is_resident(graph::LayerId layer) const {
  return std::find(resident_weights.begin(), resident_weights.end(), layer) !=
         resident_weights.end();
}

double AllocationPlan::sram_utilization() const {
  const double used = static_cast<double>(bram_used) * mem::SramPools::kBram36Bytes +
                      static_cast<double>(uram_used) * mem::SramPools::kUramBytes;
  const double total =
      static_cast<double>(bram_total) * mem::SramPools::kBram36Bytes +
      static_cast<double>(uram_total) * mem::SramPools::kUramBytes;
  return total > 0 ? used / total : 0.0;
}

LcmmCompiler::LcmmCompiler(hw::FpgaDevice device, hw::Precision precision,
                           LcmmOptions options)
    : device_(std::move(device)), precision_(precision),
      options_(std::move(options)) {
  if (options_.sram_capacity_fraction <= 0 || options_.sram_capacity_fraction > 1) {
    throw resil::OptionError(resil::Code::kBadOptions, "core.options",
                             "LcmmOptions: bad sram_capacity_fraction");
  }
  if (options_.dse_passes < 1 || options_.dse_passes > 4) {
    throw resil::OptionError(resil::Code::kBadOptions, "core.options",
                             "LcmmOptions: dse_passes must be in [1,4]");
  }
}

void LcmmCompiler::place_physical(AllocationPlan& plan,
                                  const graph::ComputationGraph& graph) const {
  LCMM_SPAN("place");
  resil::fault::hit("pass.place");
  mem::SramPools pools(device_.bram36_total, device_.uram_total);
  plan.tile_buffers =
      hw::tile_buffer_bytes(graph, plan.design.array, plan.design.tile,
                            precision_);
  // Tile buffers live in BRAM (they need banked narrow ports).
  for (std::int64_t bytes :
       {plan.tile_buffers.input, plan.tile_buffers.weight, plan.tile_buffers.output}) {
    if (bytes <= 0) continue;
    if (!pools.allocate(bytes, mem::SramPool::kBram)) {
      throw resil::CompileError(resil::Code::kTileBuffersDontFit, "pass.place",
                                "tile buffers do not fit on the device",
                                graph.name());
    }
  }
  // Tensor buffers prefer URAM; largest first to reduce fragmentation
  // surprises at the block granularity.
  std::vector<std::size_t> order;
  for (std::size_t b = 0; b < plan.buffers.size(); ++b) {
    if (plan.buffer_on_chip[b]) order.push_back(b);
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return plan.buffers[a].bytes > plan.buffers[b].bytes;
  });
  for (std::size_t b : order) {
    auto alloc = pools.allocate(plan.buffers[b].bytes, mem::SramPool::kUram);
    if (!alloc) {
      // Quantization edge: demote the buffer and its tensors.
      LCMM_WARN() << "demoting buffer " << plan.buffers[b].id
                  << " (placement failed)";
      LCMM_COUNT("demoted", 1);
      LCMM_DECIDE("vbuf#" + std::to_string(plan.buffers[b].id),
                  plan.buffers[b].bytes, false, "sram-placement-failed");
      plan.buffer_on_chip[b] = false;
      for (std::size_t e : plan.buffers[b].members) {
        plan.state.set(plan.entities[e].key, false);
      }
      continue;
    }
    LCMM_COUNT("placed", 1);
    plan.physical.push_back(PhysicalBuffer{plan.buffers[b], *alloc});
    plan.tensor_buffer_bytes += plan.buffers[b].bytes;
  }
  // Residency promotion: weights in single-member buffers are already
  // persistent; for window-shared weights, buy exclusive buffers with the
  // leftover URAM so they stop paying a per-inference prefetch.
  if (options_.residency_promotion) {
    std::vector<std::pair<std::int64_t, graph::LayerId>> shared_weights;
    for (std::size_t b = 0; b < plan.buffers.size(); ++b) {
      if (!plan.buffer_on_chip[b]) continue;
      const bool exclusive = plan.buffers[b].members.size() == 1;
      for (std::size_t e : plan.buffers[b].members) {
        const TensorEntity& entity = plan.entities[e];
        if (entity.key.source != TensorSource::kWeight) continue;
        if (exclusive) {
          plan.resident_weights.push_back(entity.key.layer);
        } else {
          shared_weights.emplace_back(entity.bytes, entity.key.layer);
        }
      }
    }
    std::stable_sort(shared_weights.begin(), shared_weights.end(),
                     [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [bytes, layer] : shared_weights) {
      // Promotion is URAM-only and keeps the configured routing margin.
      const int need = mem::SramPools::blocks_needed(bytes, mem::SramPool::kUram);
      const int margin = static_cast<int>(
          (1.0 - options_.sram_capacity_fraction) * pools.uram_total());
      if (pools.uram_used() + need > pools.uram_total() - margin) {
        LCMM_DECIDE(graph.layer(layer).name + ".wt", bytes, false,
                    "uram-margin");
        continue;
      }
      auto alloc = pools.allocate(bytes, mem::SramPool::kUram);
      if (!alloc) {
        LCMM_DECIDE(graph.layer(layer).name + ".wt", bytes, false,
                    "uram-fragmentation");
        continue;
      }
      LCMM_COUNT("promoted_weights", 1);
      LCMM_DECIDE(graph.layer(layer).name + ".wt", bytes, true,
                  "residency-promotion");
      plan.physical.push_back(
          PhysicalBuffer{VirtualBuffer{-1, bytes, {}, 0, 0}, *alloc});
      plan.tensor_buffer_bytes += bytes;
      plan.resident_weights.push_back(layer);
    }
  }
  plan.bram_used = pools.bram_used();
  plan.uram_used = pools.uram_used();
  plan.bram_total = pools.bram_total();
  plan.uram_total = pools.uram_total();
}

AllocationPlan LcmmCompiler::allocate_under_design(
    const graph::ComputationGraph& graph,
    const hw::AcceleratorDesign& design) const {
  LCMM_SPAN("allocate");
  hw::PerfModel model(graph, design);
  LatencyTables tables(model);

  AllocationPlan plan;
  plan.design = design;
  plan.umm_latency_s = model.umm_total_latency();
  for (const graph::Layer& layer : graph.layers()) {
    if (layer.is_conv() && model.timing(layer.id).memory_bound()) {
      ++plan.num_memory_bound_conv;
    }
  }

  // Passes 2+3: entities. Fault sites sit inside the feature gates so the
  // ladder rung that disables a feature also sidesteps its faults.
  std::vector<TensorEntity> entities;
  if (options_.feature_reuse) {
    resil::fault::hit("pass.liveness");
    entities = build_feature_entities(model, options_.liveness);
  }
  if (options_.weight_prefetch) {
    resil::fault::hit("pass.prefetch");
    plan.prefetch = build_prefetch_schedule(model, options_.liveness);
    std::vector<TensorEntity> weights =
        build_weight_entities(model, plan.prefetch);
    entities.insert(entities.end(), std::make_move_iterator(weights.begin()),
                    std::make_move_iterator(weights.end()));
  }

  // Capacity: whatever the tile buffers leave, with a routing margin.
  const hw::TileBufferBytes tiles =
      hw::tile_buffer_bytes(graph, design.array, design.tile, precision_);
  const std::int64_t free_bytes = device_.sram_bytes_total() - tiles.total();
  const std::int64_t capacity = static_cast<std::int64_t>(
      static_cast<double>(std::max<std::int64_t>(0, free_bytes)) *
      options_.sram_capacity_fraction);
  LCMM_GAUGE("capacity_bytes", static_cast<double>(capacity));

  InterferenceGraph ig(std::move(entities));
  resil::fault::hit("pass.coloring");
  resil::fault::hit("pass.dnnk");
  AllocatorResult allocation;
  std::vector<VirtualBuffer> buffers;
  if (options_.buffer_splitting && options_.allocator == AllocatorKind::kDnnk) {
    resil::fault::hit("pass.splitting");
    SplitOutcome outcome = split_and_reallocate(ig, tables, capacity,
                                                options_.alloc, options_.split);
    buffers = std::move(outcome.buffers);
    allocation = std::move(outcome.allocation);
  } else {
    buffers = build_virtual_buffers(ig, color_min_total_size(ig));
    allocation = run_allocator(options_.allocator, ig, buffers, tables,
                               capacity, options_.alloc);
  }

  plan.entities = ig.entities();
  plan.buffers = std::move(buffers);
  plan.buffer_on_chip = std::move(allocation.buffer_on_chip);
  plan.state = std::move(allocation.state);
  LCMM_COUNT("entities", static_cast<std::int64_t>(plan.entities.size()));
  LCMM_COUNT("buffers", static_cast<std::int64_t>(plan.buffers.size()));
  LCMM_COUNT("on_chip_buffers",
             static_cast<std::int64_t>(std::count(
                 plan.buffer_on_chip.begin(), plan.buffer_on_chip.end(), true)));

  place_physical(plan, graph);
  propagate_output_residency(graph, plan.state);
  plan.est_latency_s = tables.total_latency(plan.state);

  for (const graph::Layer& layer : graph.layers()) {
    if (layer.is_conv() && model.timing(layer.id).memory_bound() &&
        plan.state.layer_mask(layer.id) != 0) {
      ++plan.num_benefiting_conv;
    }
  }
  return plan;
}

AllocationPlan LcmmCompiler::compile_with_design(
    const graph::ComputationGraph& graph,
    const hw::AcceleratorDesign& design) const {
  // Caller-fixed designs bypass the ladder (there is no rung to retreat
  // to without re-running DSE); typed errors propagate.
  resil::fault::Scope fault_scope;
  return allocate_under_design(graph, design);
}

LcmmOptions degrade_options(const LcmmOptions& base, resil::Rung rung) {
  LcmmOptions out = base;
  const auto at_least = [&](resil::Rung r) {
    return static_cast<int>(rung) >= static_cast<int>(r);
  };
  if (at_least(resil::Rung::kShrunkDnnk)) {
    // Smaller tile menu, halved DNNK capacity, finer DP granularity: the
    // cheapest retreat — keeps every paper technique, just asks for less.
    out.dse.tile_bram_fraction = std::max(0.02, base.dse.tile_bram_fraction * 0.5);
    out.sram_capacity_fraction =
        std::clamp(base.sram_capacity_fraction * 0.5, 1e-6, 1.0);
    out.alloc.granularity_bytes =
        std::max<std::int64_t>(1024, base.alloc.granularity_bytes / 4);
  }
  if (at_least(resil::Rung::kNoPrefetch)) {
    out.weight_prefetch = false;
  }
  if (at_least(resil::Rung::kNoFeatureReuse)) {
    out.feature_reuse = false;
    out.buffer_splitting = false;
  }
  return out;
}

AllocationPlan LcmmCompiler::compile(const graph::ComputationGraph& graph) const {
  // One pipeline span and one fault budget per top-level compile, no
  // matter how many ladder rungs run inside.
  LCMM_SPAN("pipeline");
  resil::fault::Scope fault_scope;

  if (options_.strict) {
    AllocationPlan plan = compile_full(graph);
    LCMM_DECIDE("ladder", 0, true, resil::rung_name(plan.rung));
    return plan;
  }

  using resil::Rung;
  std::string reason;
  for (Rung rung : {Rung::kFullLcmm, Rung::kShrunkDnnk, Rung::kNoPrefetch,
                    Rung::kNoFeatureReuse}) {
    try {
      AllocationPlan plan =
          rung == Rung::kFullLcmm
              ? compile_full(graph)
              : LcmmCompiler(device_, precision_, degrade_options(options_, rung))
                    .compile_full(graph);
      plan.rung = rung;
      plan.degrade_reason = reason;
      if (rung != Rung::kFullLcmm) {
        LCMM_WARN() << "LCMM(" << graph.name() << "): degraded to rung '"
                    << resil::rung_name(rung) << "' after " << reason;
        LCMM_COUNT("ladder_degraded", 1);
      }
      LCMM_DECIDE("ladder", 0, true, resil::rung_name(rung));
      return plan;
    } catch (const resil::OptionError&) {
      throw;  // caller contract violations are never ladder-recoverable
    } catch (const std::exception& e) {
      const resil::ErrorInfo info = resil::describe(e);
      reason = resil::code_id(info.code) +
               (info.pass.empty() ? std::string() : "@" + info.pass);
      LCMM_WARN() << "LCMM(" << graph.name() << "): rung '"
                  << resil::rung_name(rung) << "' failed with " << reason
                  << ": " << info.message;
      LCMM_COUNT("ladder_rung_failures", 1);
      LCMM_DECIDE("ladder", 0, false,
                  std::string(resil::rung_name(rung)) + ":" + reason);
    }
  }

  // The floor: a semantically valid UMM plan. If even this throws, the
  // error propagates — the ladder degrades no further than UMM.
  AllocationPlan plan = compile_umm(graph);
  plan.is_umm = false;  // mirrors the no-benefit fallback convention
  plan.rung = Rung::kUmm;
  plan.degrade_reason = reason;
  LCMM_WARN() << "LCMM(" << graph.name()
              << "): every LCMM rung failed; shipping the UMM baseline after "
              << reason;
  LCMM_COUNT("ladder_degraded", 1);
  LCMM_DECIDE("ladder", 0, true, resil::rung_name(Rung::kUmm));
  return plan;
}

AllocationPlan LcmmCompiler::compile_full(const graph::ComputationGraph& graph) const {
  hw::DseOptions dse_options = options_.dse;
  dse_options.heavy_uram_use = true;  // LCMM designs lean on URAM
  const hw::Dse dse(device_, precision_, dse_options);

  // Pass 1: best design assuming uniform management.
  hw::DseResult seed = [&] {
    LCMM_SPAN("dse");
    return dse.explore(graph);
  }();
  LCMM_COUNT("dse_rounds", 1);
  AllocationPlan plan = allocate_under_design(graph, seed.design);

  // Pass 2+: re-optimize the design under the allocation's on-chip state;
  // keep whichever (design, allocation) pair estimates fastest.
  for (int pass = 1; pass < options_.dse_passes; ++pass) {
    const OnChipState& state = plan.state;
    const auto objective = [&](const hw::AcceleratorDesign& candidate) {
      hw::PerfModel model(graph, candidate);
      LatencyTables tables(model);
      return tables.total_latency(state);
    };
    hw::DseResult refined = [&] {
      LCMM_SPAN("dse");
      return dse.explore(graph, objective);
    }();
    LCMM_COUNT("dse_rounds", 1);
    if (refined.design.tile == plan.design.tile &&
        refined.design.array == plan.design.array) {
      LCMM_COUNT("dse_converged", 1);
      break;  // converged
    }
    AllocationPlan refined_plan = allocate_under_design(graph, refined.design);
    if (refined_plan.est_latency_s < plan.est_latency_s) {
      LCMM_COUNT("dse_refinements_kept", 1);
      plan = std::move(refined_plan);
    } else {
      break;
    }
  }
  // No-benefit fallback: LCMM designs pay a clock penalty for heavy URAM
  // use. If the allocation gains do not cover it (compute-bound network),
  // ship the uniform design unchanged — a real toolflow would too.
  AllocationPlan baseline = compile_umm(graph);
  if (options_.allow_fallback_to_umm &&
      baseline.est_latency_s < plan.est_latency_s) {
    LCMM_INFO() << "LCMM(" << graph.name()
                << "): allocation gains below the URAM clock penalty; "
                   "keeping the uniform design";
    LCMM_COUNT("fallback_to_umm", 1);
    LCMM_DECIDE(graph.name(), 0, false, "umm-fallback");
    baseline.is_umm = false;
    return baseline;
  }
  LCMM_INFO() << "LCMM(" << graph.name() << "): " << plan.umm_latency_s * 1e3
              << " ms (UMM est) -> " << plan.est_latency_s * 1e3
              << " ms, POL " << plan.pol() * 100 << "%";
  return plan;
}

AllocationPlan LcmmCompiler::compile_umm(const graph::ComputationGraph& graph) const {
  LCMM_SPAN("umm_baseline");
  resil::fault::Scope fault_scope;
  // UMM is the ladder floor, so it gets its own bounded retreat: on a typed
  // failure, retry with a progressively smaller tile BRAM budget.
  static constexpr double kTileScale[] = {1.0, 0.5, 0.25};
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return compile_umm_attempt(graph, kTileScale[attempt]);
    } catch (const resil::OptionError&) {
      throw;
    } catch (const std::exception& e) {
      if (options_.strict || attempt + 1 >= std::size(kTileScale)) throw;
      const resil::ErrorInfo info = resil::describe(e);
      LCMM_WARN() << "UMM(" << graph.name() << "): attempt " << attempt + 1
                  << " failed with " << resil::code_id(info.code)
                  << "; retrying with a smaller tile budget";
      LCMM_COUNT("umm_retries", 1);
    }
  }
}

AllocationPlan LcmmCompiler::compile_umm_attempt(
    const graph::ComputationGraph& graph, double tile_scale) const {
  hw::DseOptions dse_options = options_.dse;
  dse_options.heavy_uram_use = false;
  dse_options.tile_bram_fraction =
      std::max(0.02, dse_options.tile_bram_fraction * tile_scale);
  const hw::Dse dse(device_, precision_, dse_options);
  const hw::DseResult seed = [&] {
    LCMM_SPAN("dse");
    return dse.explore(graph);
  }();

  hw::PerfModel model(graph, seed.design);
  AllocationPlan plan;
  plan.is_umm = true;
  plan.rung = resil::Rung::kUmm;
  plan.design = seed.design;
  plan.state = OnChipState(graph.num_layers());
  plan.umm_latency_s = model.umm_total_latency();
  plan.est_latency_s = plan.umm_latency_s;
  for (const graph::Layer& layer : graph.layers()) {
    if (layer.is_conv() && model.timing(layer.id).memory_bound()) {
      ++plan.num_memory_bound_conv;
    }
  }
  place_physical(plan, graph);
  return plan;
}

}  // namespace lcmm::core
