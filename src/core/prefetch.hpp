// Weight buffer prefetching (paper §3.2, Fig. 6).
//
// Weights, unlike features, are available in DRAM before inference starts,
// so an on-chip weight buffer can be filled ahead of its use. For each
// memory-bound conv node Ck we compute the full-tensor load time T and
// backtrace through the execution order to the node Ck' where the elapsed
// time from Ck' to Ck first covers T. The (Ck', Ck) prefetching edges form
// the prefetching dependence graph; weight tensors whose prefetch windows
// [step(Ck'), step(Ck)] are disjoint may share a buffer, which the regular
// interference-graph coloring discovers.
#pragma once

#include <optional>
#include <vector>

#include "core/entity.hpp"
#include "core/liveness.hpp"
#include "hw/perf_model.hpp"

namespace lcmm::core {

struct PrefetchEdge {
  graph::LayerId target = graph::kInvalidLayer;  // Ck
  /// Step of Ck'. kBeforeExecution when even the full prefix of the
  /// schedule cannot hide the load (w1/w2 in the paper's Fig. 6).
  int start_step = kBeforeExecution;
  /// T: seconds to stream the full weight tensor from DRAM.
  double load_seconds = 0.0;
  /// UMM execution time available between Ck' and Ck.
  double window_seconds = 0.0;

  bool fully_hidden() const { return window_seconds >= load_seconds; }
};

class PrefetchResult {
 public:
  PrefetchResult() = default;
  explicit PrefetchResult(std::vector<PrefetchEdge> edges);

  const std::vector<PrefetchEdge>& edges() const { return edges_; }
  const PrefetchEdge* edge_for(graph::LayerId layer) const;
  int num_fully_hidden() const;

 private:
  std::vector<PrefetchEdge> edges_;  // sorted by target
};

/// Builds prefetch edges for the weights of every eligible conv layer.
PrefetchResult build_prefetch_schedule(const hw::PerfModel& model,
                                       const LivenessOptions& options = {});

/// Builds the weight tensor entities with prefetch-window lifespans.
/// Only layers with a prefetch edge participate.
std::vector<TensorEntity> build_weight_entities(const hw::PerfModel& model,
                                                const PrefetchResult& prefetch);

}  // namespace lcmm::core
