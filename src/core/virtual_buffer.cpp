#include "core/virtual_buffer.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "resil/checked.hpp"

namespace lcmm::core {

std::vector<VirtualBuffer> build_virtual_buffers(const InterferenceGraph& graph,
                                                 const ColoringResult& coloring) {
  if (coloring.color_of.size() != graph.size()) {
    throw resil::OptionError(resil::Code::kBadArgument, "pass.coloring",
                             "build_virtual_buffers: coloring size mismatch");
  }
  std::vector<VirtualBuffer> buffers(static_cast<std::size_t>(coloring.num_colors));
  for (std::size_t c = 0; c < buffers.size(); ++c) {
    buffers[c].id = static_cast<int>(c);
    buffers[c].start_step = std::numeric_limits<int>::max();
    buffers[c].end_step = std::numeric_limits<int>::min();
  }
  for (std::size_t e = 0; e < graph.size(); ++e) {
    const int c = coloring.color_of[e];
    if (c < 0 || c >= coloring.num_colors) {
      throw resil::OptionError(resil::Code::kBadArgument, "pass.coloring",
                               "build_virtual_buffers: bad color");
    }
    VirtualBuffer& buf = buffers[static_cast<std::size_t>(c)];
    const TensorEntity& entity = graph.entities()[e];
    buf.members.push_back(e);
    buf.bytes = std::max(buf.bytes, entity.bytes);
    buf.start_step = std::min(buf.start_step, entity.def_step);
    buf.end_step = std::max(buf.end_step, entity.last_use_step);
  }
  // Drop empty colors (possible after splitting re-runs).
  std::erase_if(buffers, [](const VirtualBuffer& b) { return b.members.empty(); });
  for (std::size_t c = 0; c < buffers.size(); ++c) buffers[c].id = static_cast<int>(c);
  return buffers;
}

std::int64_t total_buffer_bytes(const std::vector<VirtualBuffer>& buffers) {
  std::int64_t total = 0;
  for (const VirtualBuffer& b : buffers) {
    total = resil::checked_add(total, b.bytes, "total_buffer_bytes");
  }
  return total;
}

}  // namespace lcmm::core
