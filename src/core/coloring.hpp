// Buffer-merging graph coloring (paper §3.1).
//
// Unlike register allocation, the objective is not the number of colors but
// the TOTAL SIZE of the resulting buffers: a color's size is the largest
// member tensor, so packing a small tensor into a large buffer is free.
// color_min_total_size() is a best-fit-decreasing heuristic;
// color_optimal_small() enumerates set partitions for test oracles.
#pragma once

#include <cstdint>
#include <vector>

#include "core/interference.hpp"

namespace lcmm::core {

struct ColoringResult {
  /// Color (virtual-buffer index) per entity, dense in [0, num_colors).
  std::vector<int> color_of;
  int num_colors = 0;
  /// Sum over colors of the max member size.
  std::int64_t total_bytes = 0;
};

/// Greedy best-fit-decreasing coloring: entities are placed largest-first
/// into the compatible color whose current size fits them best (free slots
/// preferred, then minimal growth).
ColoringResult color_min_total_size(const InterferenceGraph& graph);

/// Exhaustive minimum-total-size coloring via set-partition enumeration.
/// Only for small graphs (throws std::invalid_argument above `max_entities`).
ColoringResult color_optimal_small(const InterferenceGraph& graph,
                                   std::size_t max_entities = 12);

/// True iff no two entities sharing a color interfere.
bool coloring_is_valid(const InterferenceGraph& graph, const ColoringResult& result);

}  // namespace lcmm::core
