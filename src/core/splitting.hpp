// Buffer splitting (paper §3.4).
//
// Sharing one virtual buffer means one knapsack decision for every member
// tensor: when a shared buffer spills, a small tensor with a large gain is
// dragged off-chip with it ("misspilling"). Splitting adds a FALSE lifespan
// overlap edge between the buffer's size-defining tensor and a neighbor,
// forcing them into different colors; the next DNNK round can then keep the
// valuable part on chip. Iterates greedily from the largest spilled buffer.
#pragma once

#include "core/dnnk.hpp"

namespace lcmm::core {

struct SplitOptions {
  int max_iterations = 8;
  /// Only split when the size-defining tensor is at least this many times
  /// larger than the buffer-mate it is separated from ("variance of sizes
  /// ... exceeds a threshold").
  double size_ratio_threshold = 1.5;
};

struct SplitOutcome {
  std::vector<VirtualBuffer> buffers;  // re-colored buffers
  AllocatorResult allocation;          // best allocation found
  int splits_performed = 0;
};

/// Runs allocate -> split -> re-color -> allocate until no profitable split
/// remains. `graph` accumulates the false edges (mutated in place).
SplitOutcome split_and_reallocate(InterferenceGraph& graph,
                                  const LatencyTables& tables,
                                  std::int64_t capacity_bytes,
                                  const AllocatorOptions& alloc_options = {},
                                  const SplitOptions& split_options = {});

}  // namespace lcmm::core
