#include "core/splitting.hpp"

#include <algorithm>

#include "obs/scope.hpp"
#include "util/logging.hpp"

namespace lcmm::core {

namespace {

/// Picks the (max-tensor, neighbor) pair to separate inside `buffer`, or
/// returns false. The neighbor is the member with the largest standalone
/// latency reduction — the tensor misspilling hurts most.
bool pick_split_pair(const InterferenceGraph& graph, const LatencyTables& tables,
                     const VirtualBuffer& buffer, double size_ratio_threshold,
                     std::size_t& max_entity, std::size_t& neighbor) {
  if (buffer.members.size() < 2) return false;
  max_entity = buffer.members.front();
  for (std::size_t e : buffer.members) {
    if (graph.entities()[e].bytes > graph.entities()[max_entity].bytes) {
      max_entity = e;
    }
  }
  bool found = false;
  double best_gain = 0.0;
  for (std::size_t e : buffer.members) {
    if (e == max_entity) continue;
    const TensorEntity& entity = graph.entities()[e];
    const double ratio = static_cast<double>(graph.entities()[max_entity].bytes) /
                         static_cast<double>(std::max<std::int64_t>(1, entity.bytes));
    if (ratio < size_ratio_threshold) continue;
    if (graph.is_false_edge(max_entity, e)) continue;
    const double gain =
        tables.standalone_reduction(entity.key.layer, entity.key.source);
    if (!found || gain > best_gain) {
      best_gain = gain;
      neighbor = e;
      found = true;
    }
  }
  return found;
}

}  // namespace

SplitOutcome split_and_reallocate(InterferenceGraph& graph,
                                  const LatencyTables& tables,
                                  std::int64_t capacity_bytes,
                                  const AllocatorOptions& alloc_options,
                                  const SplitOptions& split_options) {
  LCMM_SPAN("splitting");
  SplitOutcome outcome;
  outcome.buffers =
      build_virtual_buffers(graph, color_min_total_size(graph));
  outcome.allocation = dnnk_allocate(graph, outcome.buffers, tables,
                                     capacity_bytes, alloc_options);

  for (int iter = 0; iter < split_options.max_iterations; ++iter) {
    LCMM_COUNT("iterations", 1);
    // Largest spilled shared buffer first (the paper's greedy rationale).
    int candidate = -1;
    for (std::size_t b = 0; b < outcome.buffers.size(); ++b) {
      if (outcome.allocation.buffer_on_chip[b]) continue;
      if (outcome.buffers[b].members.size() < 2) continue;
      if (candidate < 0 ||
          outcome.buffers[b].bytes >
              outcome.buffers[static_cast<std::size_t>(candidate)].bytes) {
        candidate = static_cast<int>(b);
      }
    }
    if (candidate < 0) break;

    std::size_t max_entity = 0;
    std::size_t neighbor = 0;
    if (!pick_split_pair(graph, tables,
                         outcome.buffers[static_cast<std::size_t>(candidate)],
                         split_options.size_ratio_threshold, max_entity,
                         neighbor)) {
      break;
    }
    graph.add_false_edge(max_entity, neighbor);

    std::vector<VirtualBuffer> buffers =
        build_virtual_buffers(graph, color_min_total_size(graph));
    AllocatorResult allocation =
        dnnk_allocate(graph, buffers, tables, capacity_bytes, alloc_options);
    ++outcome.splits_performed;
    LCMM_COUNT("false_edges_added", 1);
    LCMM_DEBUG() << "buffer splitting iter " << iter << ": gain "
                 << outcome.allocation.gain_s * 1e3 << " ms -> "
                 << allocation.gain_s * 1e3 << " ms";
    if (allocation.gain_s > outcome.allocation.gain_s) {
      LCMM_COUNT("improvements", 1);
      outcome.buffers = std::move(buffers);
      outcome.allocation = std::move(allocation);
    }
  }
  LCMM_COUNT("splits_performed", outcome.splits_performed);
  return outcome;
}

}  // namespace lcmm::core
