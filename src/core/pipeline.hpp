// Multi-accelerator pipelining — the paper's noted future-work integration
// with TGPA-style heterogeneous designs (§4.2: "LCMM is orthogonal to the
// heterogeneous design methodology which could be integrated ... to further
// improve performance density").
//
// The device is split into K equal slices (DSP, BRAM, URAM, DRAM banks);
// the network is cut into K contiguous pipeline segments, each compiled by
// LCMM on its slice; images stream through the segments, so throughput is
// set by the slowest segment (the initiation interval) while single-image
// latency is the sum.
//
// Segment boundaries are chosen by dynamic programming over per-layer
// latency estimates, restricted to cuts that do not split a concat value's
// producer set across accelerators.
#pragma once

#include "core/lcmm.hpp"

namespace lcmm::core {

struct PipelineSegment {
  /// Topological step range [first_step, last_step], inclusive.
  int first_step = 0;
  int last_step = 0;
  /// The segment's own computation graph (external feeds become inputs).
  graph::ComputationGraph subgraph{"segment"};
  AllocationPlan plan;
  /// Simulated per-image time on this segment.
  double latency_s = 0.0;
};

struct PipelinePlan {
  std::vector<PipelineSegment> segments;
  /// Initiation interval: the slowest segment.
  double bottleneck_s = 0.0;
  /// Single-image end-to-end latency (sum of segments).
  double latency_s = 0.0;

  double throughput_images_per_s() const {
    return bottleneck_s > 0 ? 1.0 / bottleneck_s : 0.0;
  }
};

/// Extracts the contiguous topo-step range [first, last] of `graph` as a
/// standalone graph; values produced before the range become inputs.
/// Throws std::invalid_argument if the cut splits a value's producers.
graph::ComputationGraph extract_segment(const graph::ComputationGraph& graph,
                                        int first_step, int last_step);

/// Steps after which the graph may legally be cut (no multi-producer value
/// straddles the boundary). The last step is never included.
std::vector<int> legal_cut_points(const graph::ComputationGraph& graph);

class PipelinePartitioner {
 public:
  PipelinePartitioner(hw::FpgaDevice device, hw::Precision precision,
                      LcmmOptions options = {});

  /// Partitions into `num_segments` pipeline stages (1 = plain LCMM).
  /// Throws std::invalid_argument if fewer legal segments exist.
  PipelinePlan partition(const graph::ComputationGraph& graph,
                         int num_segments) const;

  /// The per-segment device slice.
  hw::FpgaDevice device_slice(int num_segments) const;

 private:
  hw::FpgaDevice device_;
  hw::Precision precision_;
  LcmmOptions options_;
};

}  // namespace lcmm::core
