#include "core/prefetch.hpp"

#include <algorithm>

#include "obs/scope.hpp"
#include "resil/checked.hpp"

namespace lcmm::core {

namespace {
/// Full weight tensors stream sequentially from DRAM: long bursts.
constexpr double kSequentialBurstBytes = 4096.0;
}  // namespace

PrefetchResult::PrefetchResult(std::vector<PrefetchEdge> edges)
    : edges_(std::move(edges)) {
  std::sort(edges_.begin(), edges_.end(),
            [](const PrefetchEdge& a, const PrefetchEdge& b) {
              return a.target < b.target;
            });
}

const PrefetchEdge* PrefetchResult::edge_for(graph::LayerId layer) const {
  const auto it = std::lower_bound(
      edges_.begin(), edges_.end(), layer,
      [](const PrefetchEdge& e, graph::LayerId id) { return e.target < id; });
  return (it != edges_.end() && it->target == layer) ? &*it : nullptr;
}

int PrefetchResult::num_fully_hidden() const {
  int n = 0;
  for (const PrefetchEdge& e : edges_) n += e.fully_hidden() ? 1 : 0;
  return n;
}

PrefetchResult build_prefetch_schedule(const hw::PerfModel& model,
                                       const LivenessOptions& options) {
  LCMM_SPAN("prefetch");
  std::int64_t backtrace_steps = 0;
  const graph::ComputationGraph& graph = model.graph();
  const std::vector<graph::LayerId>& order = graph.topo_order();
  const int bpe = hw::bytes_per_elem(model.design().precision);

  // UMM latency per execution step, for the backtrace clock.
  std::vector<double> step_latency(order.size());
  for (std::size_t s = 0; s < order.size(); ++s) {
    step_latency[s] = model.timing(order[s]).umm_latency();
  }

  std::vector<PrefetchEdge> edges;
  for (const graph::Layer& layer : graph.layers()) {
    if (!layer.is_conv()) continue;
    const hw::LayerTiming& t = model.timing(layer.id);
    if (!options.include_compute_bound && !t.memory_bound()) continue;
    const std::int64_t bytes = resil::checked_mul(
        graph.layer_weight_elems(layer.id), bpe, "weight bytes");
    if (bytes <= 0) continue;

    PrefetchEdge edge;
    edge.target = layer.id;
    edge.load_seconds = model.ddr().transfer_seconds(
        static_cast<double>(bytes), kSequentialBurstBytes);

    // Backtrace: accumulate elapsed execution time walking backwards until
    // it covers the load time.
    const int k = graph.step_of(layer.id);
    double elapsed = 0.0;
    int start = kBeforeExecution;
    for (int s = k - 1; s >= 0; --s) {
      ++backtrace_steps;
      elapsed += step_latency[static_cast<std::size_t>(s)];
      if (elapsed >= edge.load_seconds) {
        start = s;
        break;
      }
    }
    edge.start_step = start;
    edge.window_seconds = elapsed;
    edges.push_back(edge);
  }
  PrefetchResult result(std::move(edges));
  LCMM_COUNT("edges", static_cast<std::int64_t>(result.edges().size()));
  LCMM_COUNT("fully_hidden", result.num_fully_hidden());
  LCMM_COUNT("backtrace_steps", backtrace_steps);
  return result;
}

std::vector<TensorEntity> build_weight_entities(const hw::PerfModel& model,
                                                const PrefetchResult& prefetch) {
  const graph::ComputationGraph& graph = model.graph();
  const int bpe = hw::bytes_per_elem(model.design().precision);
  std::vector<TensorEntity> entities;
  for (const PrefetchEdge& edge : prefetch.edges()) {
    const graph::Layer& layer = graph.layer(edge.target);
    TensorEntity e;
    e.key = {layer.id, TensorSource::kWeight};
    e.name = layer.name + ".wt";
    e.bytes = resil::checked_mul(graph.layer_weight_elems(layer.id), bpe,
                                 "weight bytes");
    e.def_step = edge.start_step;
    e.last_use_step = graph.step_of(layer.id);
    e.stream_latency_s = model.timing(layer.id).wt_s;
    entities.push_back(std::move(e));
  }
  return entities;
}

}  // namespace lcmm::core
