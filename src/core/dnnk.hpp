// DNNK: the DNN-knapsack on-chip memory allocator (paper §3.3, Alg. 1).
//
// Items are virtual buffers; the capacity is the on-chip memory left after
// the tile buffers; the value of a buffer is the latency reduction of its
// member tensors with pivot compensation — a tensor's gain only counts up
// to the next-larger transfer term of its node that is still off-chip.
// The DP follows the paper: rows are buffers, columns are capacities, the
// compensation term is read from the partial allocation table pbuf_table,
// and the final allocation is recovered by a backtrace.
//
// Two reference allocators share the result type: a value-density greedy
// (ablation baseline) and an exhaustive search (test oracle).
#pragma once

#include <cstdint>
#include <vector>

#include "core/latency_tables.hpp"
#include "core/virtual_buffer.hpp"

namespace lcmm::core {

struct AllocatorOptions {
  /// DP capacity granularity. Defaults to one URAM block, matching the
  /// paper's block-quantized buffer sizes (Tab. 2).
  std::int64_t granularity_bytes = 288 * 1024 / 8;
};

struct AllocatorResult {
  /// Per virtual buffer: allocated physical on-chip memory (y_k).
  std::vector<bool> buffer_on_chip;
  /// Per (layer, source) tensor state implied by the buffer decisions.
  OnChipState state{0};
  /// Sum of allocated buffer sizes, quantized to the DP granularity.
  std::int64_t bytes_used = 0;
  /// TRUE latency reduction vs UMM under the final state (always evaluated
  /// through Eq. 1, independent of the DP's internal approximations).
  double gain_s = 0.0;
};

/// Alg. 1. `capacity_bytes` is R_sram.
AllocatorResult dnnk_allocate(const InterferenceGraph& graph,
                              const std::vector<VirtualBuffer>& buffers,
                              const LatencyTables& tables,
                              std::int64_t capacity_bytes,
                              const AllocatorOptions& options = {});

/// Value-density greedy (gain/size with standalone gains), for ablation.
AllocatorResult greedy_allocate(const InterferenceGraph& graph,
                                const std::vector<VirtualBuffer>& buffers,
                                const LatencyTables& tables,
                                std::int64_t capacity_bytes,
                                const AllocatorOptions& options = {});

/// Exhaustive optimum over buffer subsets (test oracle; throws
/// std::invalid_argument when there are more than `max_buffers` buffers).
AllocatorResult exact_allocate(const InterferenceGraph& graph,
                               const std::vector<VirtualBuffer>& buffers,
                               const LatencyTables& tables,
                               std::int64_t capacity_bytes,
                               const AllocatorOptions& options = {},
                               std::size_t max_buffers = 16);

/// Evaluates the true gain and tensor state of a given buffer selection.
AllocatorResult evaluate_selection(const InterferenceGraph& graph,
                                   const std::vector<VirtualBuffer>& buffers,
                                   const LatencyTables& tables,
                                   const std::vector<bool>& selection,
                                   const AllocatorOptions& options);

/// Quantized size of a buffer in DP units.
std::int64_t quantized_units(std::int64_t bytes, const AllocatorOptions& options);

}  // namespace lcmm::core
