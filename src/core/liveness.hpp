// Liveness analysis over the computation graph (paper §3.1 / §3.2).
//
// Feature entities get closed step intervals:
//   t_if(i)/t_res(i): [max producer step of the value, step(i)]
//                     (graph inputs are live from kBeforeExecution),
//   t_of(i):          [step(i), last consumer step of the value]
//                     (an on-chip output must survive until its last reader).
// Weight entities are produced by the prefetching pass (§3.2), which sets
// their def step to the prefetch start; see core/prefetch.hpp.
#pragma once

#include <vector>

#include "core/entity.hpp"
#include "hw/perf_model.hpp"

namespace lcmm::core {

struct LivenessOptions {
  /// Only tensors of memory-bound layers take part in allocation (the
  /// paper's Fig. 5 excludes computation-bounded tensors). Setting this to
  /// true admits every layer's tensors (useful for stress tests).
  bool include_compute_bound = false;
  /// Whether pooling layers' feature streams participate.
  bool include_pools = true;
};

/// Builds the feature tensor entities (if / res / of) that are candidates
/// for on-chip buffers, with their liveness intervals and UMM stream
/// latencies taken from `model`.
std::vector<TensorEntity> build_feature_entities(const hw::PerfModel& model,
                                                 const LivenessOptions& options = {});

/// Def step of a value: the latest producer's step, or kBeforeExecution for
/// graph inputs.
int value_def_step(const graph::ComputationGraph& graph, graph::ValueId value);

/// Last step at which a value is read, or its def step if never read.
int value_last_use_step(const graph::ComputationGraph& graph, graph::ValueId value);

}  // namespace lcmm::core
