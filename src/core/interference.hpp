// Interference graph over tensor entities (paper Fig. 5(a)).
//
// Two entities interfere when their liveness intervals share an execution
// step — they can then never occupy the same buffer. The buffer-splitting
// pass (§3.4) additionally inserts *false* interference edges to force two
// compatible tensors apart when sharing would cause misspilling.
#pragma once

#include <cstddef>
#include <vector>

#include "core/entity.hpp"

namespace lcmm::core {

class InterferenceGraph {
 public:
  /// Builds interval-overlap interference for `entities`.
  explicit InterferenceGraph(std::vector<TensorEntity> entities);

  const std::vector<TensorEntity>& entities() const { return entities_; }
  std::size_t size() const { return entities_.size(); }

  bool interferes(std::size_t a, std::size_t b) const;
  /// Adds a false lifespan-overlap edge (buffer splitting). Idempotent.
  void add_false_edge(std::size_t a, std::size_t b);
  bool is_false_edge(std::size_t a, std::size_t b) const;
  std::size_t num_false_edges() const { return false_edges_; }

  /// Degree counting both real and false edges.
  std::size_t degree(std::size_t a) const;
  std::size_t num_edges() const;
  /// Cells in the dense upper-triangular adjacency: exactly n*(n-1)/2.
  std::size_t adjacency_cells() const { return adj_.size(); }

 private:
  std::size_t index(std::size_t a, std::size_t b) const;

  std::vector<TensorEntity> entities_;
  /// Dense upper-triangular adjacency: 0 none, 1 real, 2 false.
  std::vector<std::uint8_t> adj_;
  std::size_t false_edges_ = 0;
};

}  // namespace lcmm::core
