#include "core/dnnk.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <stdexcept>

#include "obs/scope.hpp"
#include "resil/error.hpp"

namespace lcmm::core {

namespace {

/// Members of a buffer ordered by descending stream latency, so that the
/// incremental composition of marginal gains is deterministic and matches
/// the paper's largest-term-first accounting.
std::vector<std::size_t> ordered_members(const InterferenceGraph& graph,
                                         const VirtualBuffer& buffer) {
  std::vector<std::size_t> members = buffer.members;
  std::stable_sort(members.begin(), members.end(), [&](std::size_t a, std::size_t b) {
    return graph.entities()[a].stream_latency_s >
           graph.entities()[b].stream_latency_s;
  });
  return members;
}

}  // namespace

std::int64_t quantized_units(std::int64_t bytes, const AllocatorOptions& options) {
  if (options.granularity_bytes <= 0) {
    throw resil::OptionError(resil::Code::kBadOptions, "pass.dnnk",
                             "AllocatorOptions: granularity <= 0");
  }
  return (bytes + options.granularity_bytes - 1) / options.granularity_bytes;
}

AllocatorResult evaluate_selection(const InterferenceGraph& graph,
                                   const std::vector<VirtualBuffer>& buffers,
                                   const LatencyTables& tables,
                                   const std::vector<bool>& selection,
                                   const AllocatorOptions& options) {
  if (selection.size() != buffers.size()) {
    throw resil::OptionError(resil::Code::kBadArgument, "pass.dnnk",
                             "evaluate_selection: selection size mismatch");
  }
  AllocatorResult result;
  result.buffer_on_chip = selection;
  result.state = OnChipState(tables.model().graph().num_layers());
  for (std::size_t b = 0; b < buffers.size(); ++b) {
    if (!selection[b]) continue;
    result.bytes_used += quantized_units(buffers[b].bytes, options) *
                         options.granularity_bytes;
    for (std::size_t e : buffers[b].members) {
      result.state.set(graph.entities()[e].key, true);
    }
  }
  const OnChipState umm(tables.model().graph().num_layers());
  result.gain_s = tables.total_latency(umm) - tables.total_latency(result.state);
  return result;
}

AllocatorResult dnnk_allocate(const InterferenceGraph& graph,
                              const std::vector<VirtualBuffer>& buffers,
                              const LatencyTables& tables,
                              std::int64_t capacity_bytes,
                              const AllocatorOptions& options) {
  LCMM_SPAN("dnnk");
  const std::size_t n = buffers.size();
  const std::int64_t w_cap = capacity_bytes / options.granularity_bytes;
  if (w_cap < 0) {
    throw resil::OptionError(resil::Code::kBadArgument, "pass.dnnk",
                             "dnnk_allocate: negative capacity");
  }
  const std::size_t width = static_cast<std::size_t>(w_cap) + 1;
  LCMM_COUNT("buffers", static_cast<std::int64_t>(n));
  LCMM_COUNT("dp_cells", static_cast<std::int64_t>(n * width));
  LCMM_GAUGE("capacity_bytes", static_cast<double>(capacity_bytes));

  // Lookup: (layer, source) -> owning buffer index, for the compensation
  // reads from pbuf_table.
  const std::size_t num_layers = tables.model().graph().num_layers();
  std::vector<std::array<int, kNumSources>> buffer_of(num_layers,
                                                      {-1, -1, -1, -1});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t e : buffers[b].members) {
      const TensorKey key = graph.entities()[e].key;
      buffer_of[static_cast<std::size_t>(key.layer)]
               [static_cast<int>(key.source)] = static_cast<int>(b);
    }
  }

  // pbuf_table(i, j): was buffer i taken at capacity j during its DP row.
  std::vector<std::vector<std::uint8_t>> pbuf_table(n,
                                                    std::vector<std::uint8_t>(width, 0));
  std::vector<double> prev(width, 0.0);
  std::vector<double> curr(width, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t size_units = quantized_units(buffers[i].bytes, options);
    const std::vector<std::size_t> members = ordered_members(graph, buffers[i]);
    for (std::size_t j = 0; j < width; ++j) {
      if (static_cast<std::int64_t>(j) >= size_units) {
        const double l0 = prev[j];
        // Buffer value with pivot compensation: compose marginal gains of
        // the member tensors on top of the approximate allocation state of
        // their layers, read from pbuf_table at this capacity (Alg. 1,
        // lines 9-12 generalized through Eq. 1 marginal gains).
        double l1 = prev[j - static_cast<std::size_t>(size_units)];
        // Per-layer masks are composed lazily; most buffers touch few layers.
        for (std::size_t m = 0; m < members.size(); ++m) {
          const TensorKey key = graph.entities()[members[m]].key;
          std::uint8_t mask = 0;
          for (int s = 0; s < kNumSources; ++s) {
            const int owner = buffer_of[static_cast<std::size_t>(key.layer)][s];
            if (owner < 0 || static_cast<std::size_t>(owner) >= i) continue;
            if (pbuf_table[static_cast<std::size_t>(owner)][j]) {
              mask = static_cast<std::uint8_t>(mask | (1u << s));
            }
          }
          // Earlier members of this same buffer that share the layer.
          for (std::size_t q = 0; q < m; ++q) {
            const TensorKey other = graph.entities()[members[q]].key;
            if (other.layer == key.layer) {
              mask = static_cast<std::uint8_t>(
                  mask | (1u << static_cast<int>(other.source)));
            }
          }
          l1 += tables.marginal_gain(key.layer, key.source, mask);
        }
        if (l0 > l1) {
          curr[j] = l0;
          pbuf_table[i][j] = 0;
        } else {
          curr[j] = l1;
          pbuf_table[i][j] = 1;
        }
      } else {
        curr[j] = prev[j];
        pbuf_table[i][j] = 0;
      }
    }
    std::swap(prev, curr);
  }

  // Backtrace over pbuf_table.
  std::vector<bool> selection(n, false);
  std::int64_t j = w_cap;
  for (std::size_t i = n; i-- > 0;) {
    if (pbuf_table[i][static_cast<std::size_t>(j)]) {
      selection[i] = true;
      j -= quantized_units(buffers[i].bytes, options);
    }
  }
  if (obs::current()) {
    for (std::size_t b = 0; b < n; ++b) {
      const char* reason =
          selection[b] ? "knapsack-selected"
          : quantized_units(buffers[b].bytes, options) > w_cap
              ? "exceeds-capacity"
              : "knapsack-spill";
      LCMM_COUNT(selection[b] ? "selected" : "spilled", 1);
      LCMM_DECIDE("vbuf#" + std::to_string(buffers[b].id), buffers[b].bytes,
                  selection[b], reason);
    }
  }
  return evaluate_selection(graph, buffers, tables, selection, options);
}

AllocatorResult greedy_allocate(const InterferenceGraph& graph,
                                const std::vector<VirtualBuffer>& buffers,
                                const LatencyTables& tables,
                                std::int64_t capacity_bytes,
                                const AllocatorOptions& options) {
  LCMM_SPAN("greedy");
  const std::size_t n = buffers.size();
  LCMM_COUNT("buffers", static_cast<std::int64_t>(n));
  std::vector<double> value(n, 0.0);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t e : buffers[b].members) {
      const TensorKey key = graph.entities()[e].key;
      value[b] += tables.standalone_reduction(key.layer, key.source);
    }
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = value[a] / static_cast<double>(
                                     std::max<std::int64_t>(1, buffers[a].bytes));
    const double db = value[b] / static_cast<double>(
                                     std::max<std::int64_t>(1, buffers[b].bytes));
    return da > db;
  });
  std::vector<bool> selection(n, false);
  std::int64_t used = 0;
  for (std::size_t b : order) {
    const std::int64_t sz =
        quantized_units(buffers[b].bytes, options) * options.granularity_bytes;
    if (used + sz <= capacity_bytes && value[b] > 0.0) {
      selection[b] = true;
      used += sz;
    }
  }
  return evaluate_selection(graph, buffers, tables, selection, options);
}

AllocatorResult exact_allocate(const InterferenceGraph& graph,
                               const std::vector<VirtualBuffer>& buffers,
                               const LatencyTables& tables,
                               std::int64_t capacity_bytes,
                               const AllocatorOptions& options,
                               std::size_t max_buffers) {
  if (max_buffers > 24) {
    throw resil::OptionError(resil::Code::kBadOptions, "pass.dnnk",
                             "exact_allocate: max_buffers cap is 24");
  }
  const std::size_t n = buffers.size();
  if (n > max_buffers) {
    throw resil::OptionError(resil::Code::kGraphTooLarge, "pass.dnnk",
        "exact_allocate: too many buffers (" +
                                std::to_string(n) + ")");
  }
  LCMM_SPAN("exact");
  LCMM_COUNT("buffers", static_cast<std::int64_t>(n));
  std::vector<bool> selection(n, false);
  AllocatorResult best =
      evaluate_selection(graph, buffers, tables, selection, options);

  auto recurse = [&](auto&& self, std::size_t i, std::int64_t used) -> void {
    if (i == n) {
      LCMM_COUNT("selections_evaluated", 1);
      AllocatorResult candidate =
          evaluate_selection(graph, buffers, tables, selection, options);
      if (candidate.gain_s > best.gain_s) best = std::move(candidate);
      return;
    }
    self(self, i + 1, used);  // skip buffer i
    const std::int64_t sz =
        quantized_units(buffers[i].bytes, options) * options.granularity_bytes;
    if (used + sz <= capacity_bytes) {
      selection[i] = true;
      self(self, i + 1, used + sz);
      selection[i] = false;
    }
  };
  recurse(recurse, 0, 0);
  return best;
}

}  // namespace lcmm::core
