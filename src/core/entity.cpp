#include "core/entity.hpp"

#include <bit>

namespace lcmm::core {

std::string to_string(TensorSource s) {
  switch (s) {
    case TensorSource::kInput: return "if";
    case TensorSource::kResidual: return "res";
    case TensorSource::kWeight: return "wt";
    case TensorSource::kOutput: return "of";
  }
  return "?";
}

int OnChipState::count() const {
  int n = 0;
  for (std::uint8_t m : mask_) n += std::popcount(m);
  return n;
}

}  // namespace lcmm::core
