#include "core/liveness.hpp"

#include <algorithm>

#include "obs/scope.hpp"
#include "resil/checked.hpp"

namespace lcmm::core {

int value_def_step(const graph::ComputationGraph& graph, graph::ValueId value) {
  const graph::Value& v = graph.value(value);
  int def = kBeforeExecution;
  for (graph::LayerId p : v.producers) def = std::max(def, graph.step_of(p));
  return def;
}

int value_last_use_step(const graph::ComputationGraph& graph,
                        graph::ValueId value) {
  const graph::Value& v = graph.value(value);
  int last = value_def_step(graph, value);
  for (graph::LayerId c : v.consumers) last = std::max(last, graph.step_of(c));
  return last;
}

std::vector<TensorEntity> build_feature_entities(const hw::PerfModel& model,
                                                 const LivenessOptions& options) {
  LCMM_SPAN("liveness");
  const graph::ComputationGraph& graph = model.graph();
  std::vector<TensorEntity> entities;
  // Activations scale with the batch; weight entity sizes do not.
  const int bpe =
      hw::bytes_per_elem(model.design().precision) * model.design().batch;

  for (const graph::Layer& layer : graph.layers()) {
    const hw::LayerTiming& t = model.timing(layer.id);
    if (!options.include_compute_bound && !t.memory_bound()) {
      LCMM_COUNT("skipped_compute_bound", 1);
      continue;
    }
    if (!options.include_pools && !layer.is_conv()) {
      LCMM_COUNT("skipped_non_conv", 1);
      continue;
    }
    const int step = graph.step_of(layer.id);

    // t_if(i): the consumed value, live from its production to this read.
    {
      TensorEntity e;
      e.key = {layer.id, TensorSource::kInput};
      e.value = layer.input;
      e.name = graph.value(layer.input).name + "@" + layer.name;
      e.bytes = resil::checked_mul(graph.value(layer.input).shape.elems(),
                                   bpe, "feature bytes");
      e.def_step = value_def_step(graph, layer.input);
      e.last_use_step = step;
      e.stream_latency_s = t.if_s;
      entities.push_back(std::move(e));
    }

    if (layer.has_residual()) {
      TensorEntity e;
      e.key = {layer.id, TensorSource::kResidual};
      e.value = layer.residual;
      e.name = graph.value(layer.residual).name + "@" + layer.name + ".res";
      e.bytes = resil::checked_mul(graph.value(layer.residual).shape.elems(),
                                   bpe, "feature bytes");
      e.def_step = value_def_step(graph, layer.residual);
      e.last_use_step = step;
      e.stream_latency_s = t.res_s;
      entities.push_back(std::move(e));
    }

    // t_of(i): this layer's output slice, live until the value's last read.
    {
      TensorEntity e;
      e.key = {layer.id, TensorSource::kOutput};
      e.value = layer.output;
      e.name = layer.name + ".of";
      e.bytes = resil::checked_mul(graph.own_output_shape(layer.id).elems(),
                                   bpe, "feature bytes");
      e.def_step = step;
      e.last_use_step = value_last_use_step(graph, layer.output);
      e.stream_latency_s = t.of_s;
      entities.push_back(std::move(e));
    }
  }
  LCMM_COUNT("entities", static_cast<std::int64_t>(entities.size()));
  return entities;
}

}  // namespace lcmm::core
