#include "core/validate.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace lcmm::core {

namespace {
std::string entity_label(const TensorEntity& e) {
  return e.name + " (layer " + std::to_string(e.key.layer) + " " +
         to_string(e.key.source) + ")";
}
}  // namespace

std::vector<std::string> validate_plan(const graph::ComputationGraph& graph,
                                       const AllocationPlan& plan) {
  std::vector<std::string> issues;
  const auto complain = [&issues](const std::string& msg) {
    issues.push_back(msg);
  };

  // 1. Shape agreement.
  if (plan.state.num_layers() != graph.num_layers()) {
    complain("state covers " + std::to_string(plan.state.num_layers()) +
             " layers but the graph has " + std::to_string(graph.num_layers()));
    return issues;  // nothing else is meaningful
  }
  if (plan.buffer_on_chip.size() != plan.buffers.size()) {
    complain("buffer_on_chip size mismatch");
    return issues;
  }

  // 2. Buffer bookkeeping.
  std::map<TensorKey, int> owner;
  for (std::size_t b = 0; b < plan.buffers.size(); ++b) {
    const VirtualBuffer& buf = plan.buffers[b];
    std::int64_t max_member = 0;
    for (std::size_t e : buf.members) {
      if (e >= plan.entities.size()) {
        complain("vbuf" + std::to_string(buf.id) + " references entity " +
                 std::to_string(e) + " out of range");
        continue;
      }
      const TensorEntity& entity = plan.entities[e];
      max_member = std::max(max_member, entity.bytes);
      if (!owner.emplace(entity.key, buf.id).second) {
        complain(entity_label(entity) + " belongs to several buffers");
      }
    }
    if (!buf.members.empty() && buf.bytes < max_member) {
      complain("vbuf" + std::to_string(buf.id) + " capacity " +
               std::to_string(buf.bytes) + " below largest member " +
               std::to_string(max_member));
    }
    for (std::size_t i = 0; i < buf.members.size(); ++i) {
      for (std::size_t j = i + 1; j < buf.members.size(); ++j) {
        const TensorEntity& a = plan.entities[buf.members[i]];
        const TensorEntity& c = plan.entities[buf.members[j]];
        if (a.overlaps(c)) {
          complain("vbuf" + std::to_string(buf.id) + ": members " +
                   entity_label(a) + " and " + entity_label(c) +
                   " have overlapping lifespans");
        }
      }
    }
  }

  // 3. State consistency (output-residency propagation may legitimately
  //    set bits without a backing buffer for FEATURE reads; weights never).
  for (std::size_t b = 0; b < plan.buffers.size(); ++b) {
    if (plan.buffer_on_chip[b]) continue;
    for (std::size_t e : plan.buffers[b].members) {
      const TensorEntity& entity = plan.entities[e];
      if (entity.key.source == TensorSource::kWeight &&
          plan.state.is_on(entity.key)) {
        complain(entity_label(entity) +
                 " is on-chip but its buffer was spilled");
      }
    }
  }

  // 4. Resources.
  const hw::FpgaDevice& device = plan.design.device;
  if (plan.bram_used > device.bram36_total) {
    complain("BRAM overcommitted: " + std::to_string(plan.bram_used) + " / " +
             std::to_string(device.bram36_total));
  }
  if (plan.uram_used > device.uram_total) {
    complain("URAM overcommitted: " + std::to_string(plan.uram_used) + " / " +
             std::to_string(device.uram_total));
  }
  std::int64_t placed = 0;
  for (const PhysicalBuffer& pb : plan.physical) {
    if (pb.sram.capacity_bytes < pb.buffer.bytes && pb.buffer.id >= 0) {
      complain("physical buffer for vbuf" + std::to_string(pb.buffer.id) +
               " smaller than its virtual size");
    }
    placed += pb.sram.blocks;
  }
  if (placed > plan.bram_used + plan.uram_used) {
    complain("placed blocks exceed the recorded pool usage");
  }

  // 5. Residency.
  for (graph::LayerId id : plan.resident_weights) {
    if (id < 0 || static_cast<std::size_t>(id) >= graph.num_layers()) {
      complain("resident weight references bad layer " + std::to_string(id));
      continue;
    }
    if (!graph.layer(id).is_conv()) {
      complain("resident weight on non-conv layer '" + graph.layer(id).name +
               "'");
    }
    if (!plan.state.is_on({id, TensorSource::kWeight})) {
      complain("resident weight of '" + graph.layer(id).name +
               "' is not marked on-chip");
    }
  }
  return issues;
}

}  // namespace lcmm::core
