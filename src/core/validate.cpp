#include "core/validate.hpp"

#include "check/check.hpp"

namespace lcmm::core {

std::vector<std::string> validate_plan(const graph::ComputationGraph& graph,
                                       const AllocationPlan& plan) {
  const check::CheckReport report = check::run_checks(graph, plan);
  std::vector<std::string> issues;
  for (const check::Diagnostic& d : report.diagnostics()) {
    if (d.severity != check::Severity::kError) continue;
    issues.push_back(d.message);
  }
  return issues;
}

}  // namespace lcmm::core
