// The Layer Conscious Memory Management driver (paper Fig. 4).
//
// Pipeline per compile():
//   1. DSE picks the accelerator design (PE array + uniform tiles).
//   2. Feature buffer reuse:   liveness -> interference -> coloring (§3.1).
//   3. Weight buffer prefetch: PDG backtrace -> weight entities     (§3.2).
//   4. DNNK knapsack allocation over the virtual buffers            (§3.3).
//   5. Buffer splitting when shared buffers misspill                (§3.4).
//   6. A second DSE pass re-optimizes tiles under the allocation —
//      with the bandwidth bottleneck gone, smaller tiles win back the
//      compute padding waste (§4.1's "reduction of actual operations").
//   7. Physical placement into BRAM/URAM pools.
//
// compile_umm() produces the uniform-memory-management baseline on the
// same machinery (empty allocation), so every comparison is apples to
// apples.
#pragma once

#include "core/prefetch.hpp"
#include "core/splitting.hpp"
#include "hw/dse.hpp"
#include "mem/sram.hpp"
#include "resil/error.hpp"

namespace lcmm::core {

enum class AllocatorKind : std::uint8_t { kDnnk, kGreedy, kExact };

struct LcmmOptions {
  bool feature_reuse = true;      // §3.1 pass (off for the Fig. 8(b) ablation)
  bool weight_prefetch = true;    // §3.2 pass (off for the Fig. 8(a) ablation)
  bool buffer_splitting = true;   // §3.4 pass
  /// Spend leftover URAM to make on-chip weights persistent across
  /// inferences (exclusive buffers instead of window-shared ones).
  bool residency_promotion = true;
  /// Ship the uniform design unchanged when the allocation gains do not
  /// cover the URAM clock penalty. Disable for pass-isolation ablations
  /// (Fig. 8) where the pass's raw effect is the point.
  bool allow_fallback_to_umm = true;
  AllocatorKind allocator = AllocatorKind::kDnnk;
  /// Fail hard: a typed compile failure propagates instead of walking the
  /// resil degradation ladder (the pre-resil throwing behavior; --strict).
  bool strict = false;
  /// 1 = keep the UMM-optimal design; 2 = re-run DSE under the allocation.
  int dse_passes = 2;
  /// Fraction of post-tile-buffer SRAM handed to DNNK as R_sram (the rest
  /// is routing/control margin).
  double sram_capacity_fraction = 0.90;
  hw::DseOptions dse;
  LivenessOptions liveness;
  AllocatorOptions alloc;
  SplitOptions split;
};

/// An on-chip tensor buffer with its physical SRAM placement.
struct PhysicalBuffer {
  VirtualBuffer buffer;
  mem::SramAllocation sram;
};

struct AllocationPlan {
  bool is_umm = false;
  hw::AcceleratorDesign design;

  /// Degradation-ladder rung this plan was produced on. kFullLcmm means no
  /// degradation happened (the paper pipeline ran to completion — which
  /// includes the deliberate no-benefit fallback to the uniform design).
  resil::Rung rung = resil::Rung::kFullLcmm;
  /// Why the ladder moved past full LCMM ("LCMM-E801@pass.dnnk"); empty
  /// when rung == kFullLcmm.
  std::string degrade_reason;

  /// Allocation entities and the virtual buffers over them. `buffers`
  /// indexes into `entities` via VirtualBuffer::members.
  std::vector<TensorEntity> entities;
  std::vector<VirtualBuffer> buffers;
  std::vector<bool> buffer_on_chip;
  std::vector<PhysicalBuffer> physical;
  OnChipState state{0};
  PrefetchResult prefetch;

  /// Weight tensors promoted to persistent residency: their buffer is
  /// never shared, so after the first inference the weights are simply
  /// on-chip — no per-inference prefetch, no stall (steady-state metric).
  std::vector<graph::LayerId> resident_weights;

  hw::TileBufferBytes tile_buffers;
  std::int64_t tensor_buffer_bytes = 0;
  int bram_used = 0, bram_total = 0;
  int uram_used = 0, uram_total = 0;

  /// Eq. 1 latency estimates (prefetch stalls are the simulator's job).
  double est_latency_s = 0.0;
  double umm_latency_s = 0.0;
  int num_memory_bound_conv = 0;
  /// Memory-bound conv layers with at least one on-chip tensor (POL).
  int num_benefiting_conv = 0;

  bool weight_is_resident(graph::LayerId layer) const;

  double speedup_vs_umm() const {
    return est_latency_s > 0 ? umm_latency_s / est_latency_s : 0.0;
  }
  double pol() const {
    return num_memory_bound_conv > 0
               ? static_cast<double>(num_benefiting_conv) / num_memory_bound_conv
               : 0.0;
  }
  double bram_utilization() const {
    return bram_total > 0 ? static_cast<double>(bram_used) / bram_total : 0.0;
  }
  double uram_utilization() const {
    return uram_total > 0 ? static_cast<double>(uram_used) / uram_total : 0.0;
  }
  /// Byte-weighted utilization of all on-chip memory (Tab. 1 SRAM column).
  double sram_utilization() const;
};

class LcmmCompiler {
 public:
  LcmmCompiler(hw::FpgaDevice device, hw::Precision precision,
               LcmmOptions options = {});

  /// Full LCMM compilation.
  AllocationPlan compile(const graph::ComputationGraph& graph) const;
  /// Uniform-memory-management baseline.
  AllocationPlan compile_umm(const graph::ComputationGraph& graph) const;
  /// LCMM with a caller-fixed design (skips DSE; used by design-space scans).
  AllocationPlan compile_with_design(const graph::ComputationGraph& graph,
                                     const hw::AcceleratorDesign& design) const;

  const LcmmOptions& options() const { return options_; }
  const hw::FpgaDevice& device() const { return device_; }
  hw::Precision precision() const { return precision_; }

 private:
  /// One full pipeline attempt (the pre-resil compile body). Throws typed
  /// errors; the ladder in compile() decides what happens next.
  AllocationPlan compile_full(const graph::ComputationGraph& graph) const;
  /// One UMM attempt with the tile BRAM budget scaled by `tile_scale`.
  AllocationPlan compile_umm_attempt(const graph::ComputationGraph& graph,
                                     double tile_scale) const;
  AllocationPlan allocate_under_design(const graph::ComputationGraph& graph,
                                       const hw::AcceleratorDesign& design) const;
  void place_physical(AllocationPlan& plan,
                      const graph::ComputationGraph& graph) const;

  hw::FpgaDevice device_;
  hw::Precision precision_;
  LcmmOptions options_;
};

/// Options for one ladder rung: restrictions are cumulative down the
/// ladder (kShrunkDnnk shrinks tile menu/capacity/granularity; kNoPrefetch
/// additionally disables §3.2; kNoFeatureReuse additionally disables
/// §3.1/§3.4). kFullLcmm returns `base` unchanged.
LcmmOptions degrade_options(const LcmmOptions& base, resil::Rung rung);

}  // namespace lcmm::core
