#include "core/interference.hpp"

#include <cassert>
#include <stdexcept>

#include "obs/scope.hpp"

namespace lcmm::core {

InterferenceGraph::InterferenceGraph(std::vector<TensorEntity> entities)
    : entities_(std::move(entities)) {
  LCMM_SPAN("interference");
  const std::size_t n = entities_.size();
  // Exactly one cell per unordered pair: the strict upper triangle has
  // n*(n-1)/2 cells and index() never addresses past it.
  adj_.assign(n >= 2 ? n * (n - 1) / 2 : 0, 0);
  std::int64_t edges = 0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (entities_[a].overlaps(entities_[b])) {
        adj_[index(a, b)] = 1;
        ++edges;
      }
    }
  }
  LCMM_COUNT("entities", static_cast<std::int64_t>(n));
  LCMM_COUNT("pairs_checked", static_cast<std::int64_t>(n > 0 ? n * (n - 1) / 2 : 0));
  LCMM_COUNT("edges", edges);
}

std::size_t InterferenceGraph::index(std::size_t a, std::size_t b) const {
  if (a == b || a >= entities_.size() || b >= entities_.size()) {
    throw std::out_of_range("InterferenceGraph: bad pair");
  }
  if (a > b) std::swap(a, b);
  // Upper triangle, row-major: row a spans (n-1-a) cells.
  const std::size_t n = entities_.size();
  const std::size_t cell = a * n - a * (a + 1) / 2 + (b - a - 1);
  assert(cell < adj_.size());
  return cell;
}

bool InterferenceGraph::interferes(std::size_t a, std::size_t b) const {
  if (a == b) return true;
  return adj_[index(a, b)] != 0;
}

void InterferenceGraph::add_false_edge(std::size_t a, std::size_t b) {
  std::uint8_t& cell = adj_[index(a, b)];
  if (cell == 0) {
    cell = 2;
    ++false_edges_;
  }
}

bool InterferenceGraph::is_false_edge(std::size_t a, std::size_t b) const {
  if (a == b) return false;
  return adj_[index(a, b)] == 2;
}

std::size_t InterferenceGraph::degree(std::size_t a) const {
  std::size_t d = 0;
  for (std::size_t b = 0; b < entities_.size(); ++b) {
    if (b != a && interferes(a, b)) ++d;
  }
  return d;
}

std::size_t InterferenceGraph::num_edges() const {
  std::size_t e = 0;
  for (std::uint8_t cell : adj_) e += cell != 0;
  return e;
}

}  // namespace lcmm::core
