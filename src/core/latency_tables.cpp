#include "core/latency_tables.hpp"

#include <algorithm>

namespace lcmm::core {

namespace {
bool bit(std::uint8_t mask, TensorSource s) {
  return (mask >> static_cast<int>(s)) & 1u;
}
std::uint8_t with_bit(std::uint8_t mask, TensorSource s) {
  return static_cast<std::uint8_t>(mask | (1u << static_cast<int>(s)));
}
}  // namespace

LatencyTables::LatencyTables(const hw::PerfModel& model) : model_(&model) {}

double LatencyTables::stream_latency(graph::LayerId layer,
                                     TensorSource source) const {
  const hw::LayerTiming& t = model_->timing(layer);
  switch (source) {
    case TensorSource::kInput: return t.if_s;
    case TensorSource::kResidual: return t.res_s;
    case TensorSource::kWeight: return t.wt_s;
    case TensorSource::kOutput: return t.of_s;
  }
  return 0.0;
}

double LatencyTables::node_latency(graph::LayerId layer,
                                   std::uint8_t mask) const {
  const hw::LayerTiming& t = model_->timing(layer);
  // The input-feature interface carries both the main input and the fused
  // residual stream; their off-chip latencies add on that interface.
  const double if_term = (bit(mask, TensorSource::kInput) ? 0.0 : t.if_s) +
                         (bit(mask, TensorSource::kResidual) ? 0.0 : t.res_s);
  const double wt_term = bit(mask, TensorSource::kWeight) ? 0.0 : t.wt_s;
  const double of_term = bit(mask, TensorSource::kOutput) ? 0.0 : t.of_s;
  return std::max({t.compute_s, if_term, wt_term, of_term});
}

double LatencyTables::node_latency_umm(graph::LayerId layer) const {
  return node_latency(layer, 0);
}

double LatencyTables::marginal_gain(graph::LayerId layer, TensorSource source,
                                    std::uint8_t current_mask) const {
  return node_latency(layer, current_mask) -
         node_latency(layer, with_bit(current_mask, source));
}

double LatencyTables::standalone_reduction(graph::LayerId layer,
                                           TensorSource source) const {
  // Mask with every other source on-chip: the remaining max is either this
  // source's latency or the compute floor, so the gain equals Eq. 2's
  // "gap down to the next smaller term" with compute as the final floor.
  std::uint8_t mask = 0x0F;
  mask = static_cast<std::uint8_t>(mask & ~(1u << static_cast<int>(source)));
  return marginal_gain(layer, source, mask);
}

bool LatencyTables::pivot(graph::LayerId layer, std::uint8_t mask,
                          TensorSource& pivot_out) const {
  double best = 0.0;
  bool found = false;
  for (int s = 0; s < kNumSources; ++s) {
    const TensorSource src = static_cast<TensorSource>(s);
    if (bit(mask, src)) continue;
    const double lat = stream_latency(layer, src);
    if (lat > best) {
      best = lat;
      pivot_out = src;
      found = true;
    }
  }
  return found;
}

double LatencyTables::total_latency(const OnChipState& state) const {
  double total = 0.0;
  for (const graph::Layer& layer : model_->graph().layers()) {
    total += node_latency(layer.id, state.layer_mask(layer.id));
  }
  return total;
}

}  // namespace lcmm::core
