// Tensor entities: the allocation units of LCMM.
//
// Following the paper (§3.3, Fig. 7), tensor data are "categorized according
// to the node index in the computation graph, and their data sources": each
// executable layer i contributes up to four entities —
//   t_if(i)  — the input feature map it reads,
//   t_res(i) — the fused residual stream it reads (ResNet blocks),
//   t_wt(i)  — its weights,
//   t_of(i)  — the output slice it writes.
// A value consumed by several layers yields one t_if per consumer (the
// paper's f1/f2/f4 "actually contain the same data"); the producer
// dual-writes into whichever consumer buffers are on chip, which costs no
// DRAM bandwidth. An on-chip t_of skips the DRAM write and is only legal if
// every consumer of the value reads on chip (enforced by a legality pass).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lcmm::core {

enum class TensorSource : std::uint8_t { kInput = 0, kResidual = 1, kWeight = 2, kOutput = 3 };
inline constexpr int kNumSources = 4;

std::string to_string(TensorSource s);

struct TensorKey {
  graph::LayerId layer = graph::kInvalidLayer;
  TensorSource source = TensorSource::kInput;
  auto operator<=>(const TensorKey&) const = default;
};

/// Execution steps are positions in the graph's topological order. A def
/// step of kBeforeExecution marks data available before inference starts
/// (graph inputs; weights loaded from DRAM).
inline constexpr int kBeforeExecution = -1;

struct TensorEntity {
  TensorKey key;
  std::string name;
  /// The feature value behind an if/res/of entity (kInvalidValue for weights).
  graph::ValueId value = graph::kInvalidValue;
  /// Full tensor footprint at the design precision. For t_of this is the
  /// layer's own output slice; for t_if/t_res the whole consumed value.
  std::int64_t bytes = 0;
  /// Closed liveness interval in execution steps.
  int def_step = kBeforeExecution;
  int last_use_step = 0;
  /// UMM transfer latency of this stream for the owning layer (lat_d(i)).
  double stream_latency_s = 0.0;

  bool overlaps(const TensorEntity& other) const {
    return std::max(def_step, other.def_step) <=
           std::min(last_use_step, other.last_use_step);
  }
};

/// Which sources of each layer currently have on-chip tensor buffers.
/// This is the paper's x_d(i) indicator, packed as a per-layer bitmask.
class OnChipState {
 public:
  explicit OnChipState(std::size_t num_layers) : mask_(num_layers, 0) {}

  bool is_on(TensorKey key) const {
    return (mask_.at(static_cast<std::size_t>(key.layer)) >>
            static_cast<int>(key.source)) & 1u;
  }
  void set(TensorKey key, bool on) {
    std::uint8_t& m = mask_.at(static_cast<std::size_t>(key.layer));
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << static_cast<int>(key.source));
    m = on ? static_cast<std::uint8_t>(m | bit) : static_cast<std::uint8_t>(m & ~bit);
  }
  std::uint8_t layer_mask(graph::LayerId layer) const {
    return mask_.at(static_cast<std::size_t>(layer));
  }
  std::size_t num_layers() const { return mask_.size(); }
  int count() const;

 private:
  std::vector<std::uint8_t> mask_;
};

}  // namespace lcmm::core
