// Virtual buffers (paper Fig. 5(b) / Fig. 7(a)): the result of merging
// compatible tensor entities through coloring. Virtual buffers are the items
// the DNNK knapsack allocates physical on-chip memory to; a spilled virtual
// buffer leaves ALL its member tensors in DRAM (the misspilling problem that
// buffer splitting addresses).
#pragma once

#include <cstdint>
#include <vector>

#include "core/coloring.hpp"
#include "core/entity.hpp"
#include "core/interference.hpp"

namespace lcmm::core {

struct VirtualBuffer {
  int id = -1;
  /// Capacity: the largest member entity.
  std::int64_t bytes = 0;
  /// Indices into the owning interference graph's entity vector.
  std::vector<std::size_t> members;
  /// Union liveness span (for the virtual buffer table's Start/End columns).
  int start_step = 0;
  int end_step = 0;
};

/// Groups entities into virtual buffers according to a coloring.
std::vector<VirtualBuffer> build_virtual_buffers(const InterferenceGraph& graph,
                                                 const ColoringResult& coloring);

/// Total bytes across buffers.
std::int64_t total_buffer_bytes(const std::vector<VirtualBuffer>& buffers);

}  // namespace lcmm::core
