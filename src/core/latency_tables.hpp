// Operation latency table and tensor metric table (paper Fig. 7(b),(c)),
// plus the pivot logic of Eq. 2/Eq. 4 in its general form.
//
// The paper defines a tensor's latency reduction L_d(i) as the gap between
// lat_d(i) and the next-lower latency term of node i, and compensates
// ("pivot compensation") when a larger term is still off-chip. Both rules
// are special cases of the marginal gain
//
//     gain(d | S) = node_latency(i, S) - node_latency(i, S + {d})
//
// where S is the set of node i's tensors already on-chip and
// node_latency is Eq. 1. This class evaluates node_latency for arbitrary
// on-chip masks, which also handles layers whose input-feature interface
// carries two streams (fused residual adds).
#pragma once

#include <vector>

#include "core/entity.hpp"
#include "hw/perf_model.hpp"

namespace lcmm::core {

class LatencyTables {
 public:
  explicit LatencyTables(const hw::PerfModel& model);

  const hw::PerfModel& model() const { return *model_; }

  /// Eq. 1 latency of a layer given the per-source on-chip bitmask
  /// (bit k set == source k on-chip, as in OnChipState::layer_mask).
  double node_latency(graph::LayerId layer, std::uint8_t on_chip_mask) const;

  /// UMM latency (nothing on-chip).
  double node_latency_umm(graph::LayerId layer) const;

  /// Marginal latency reduction of moving `source` on-chip for `layer`,
  /// given the layer's current mask. Always >= 0.
  double marginal_gain(graph::LayerId layer, TensorSource source,
                       std::uint8_t current_mask) const;

  /// The paper's L_d(i) (Eq. 2): the gain of `source` assuming every
  /// larger-latency tensor of the node is already on-chip.
  double standalone_reduction(graph::LayerId layer, TensorSource source) const;

  /// The paper's pivot: the largest-latency source of `layer` still
  /// off-chip under `mask`, or kOutput-past-the-end sentinel if none.
  /// Returns true and fills `pivot` when a pivot exists.
  bool pivot(graph::LayerId layer, std::uint8_t mask, TensorSource& pivot) const;

  /// Total Eq. 1 latency over all layers under a full allocation state.
  double total_latency(const OnChipState& state) const;

 private:
  double stream_latency(graph::LayerId layer, TensorSource source) const;

  const hw::PerfModel* model_;
};

}  // namespace lcmm::core
