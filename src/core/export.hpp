// Graphviz DOT exports of LCMM's internal structures, for debugging and
// for the papers-figure walk-throughs (Fig. 5(a): interference graph,
// Fig. 6: prefetching dependence graph).
#pragma once

#include <string>

#include "core/interference.hpp"
#include "core/lcmm.hpp"
#include "core/prefetch.hpp"

namespace lcmm::core {

/// Interference graph: tensor entities as nodes (labelled with size and
/// lifespan), real interference as solid edges, splitting-injected false
/// edges as dashed red edges.
std::string interference_to_dot(const InterferenceGraph& graph);

/// Prefetching dependence graph over the execution order: solid arrows
/// from the prefetch start node to the consuming node, annotated with the
/// load time; unhidden prefetches are highlighted.
std::string pdg_to_dot(const graph::ComputationGraph& graph,
                       const PrefetchResult& prefetch);

/// Allocation plan summary: virtual buffers as record nodes listing member
/// tensors, colored by on-chip/spilled status.
std::string plan_to_dot(const AllocationPlan& plan);

}  // namespace lcmm::core
