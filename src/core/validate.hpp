// Allocation-plan validator — source-compatibility shim over the
// lcmm::check static-analysis subsystem (check/check.hpp). New code should
// call check::run_checks directly and consume typed Diagnostics; this
// wrapper keeps the original string-returning interface for existing
// callers and formats each error-severity diagnostic as one message.
#pragma once

#include <string>
#include <vector>

#include "core/lcmm.hpp"

namespace lcmm::core {

/// Checks `plan` against `graph` by running every registered check pass
/// (structure, liveness, prefetch PDG, memory races, capacity, DNNK
/// consistency — see check/check.hpp). Returns an empty vector when the
/// plan is sound; otherwise one formatted message per error-severity
/// diagnostic. Warnings and notes are dropped — use the diagnostics engine
/// directly when you need them.
std::vector<std::string> validate_plan(const graph::ComputationGraph& graph,
                                       const AllocationPlan& plan);

}  // namespace lcmm::core
