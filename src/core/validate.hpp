// Allocation-plan validator: checks every structural invariant a plan must
// satisfy before it is trusted (by the simulator, by a code generator, or
// by a user embedding the library). Returns human-readable violations
// instead of asserting, so tools can surface them.
#pragma once

#include <string>
#include <vector>

#include "core/lcmm.hpp"

namespace lcmm::core {

/// Checks `plan` against `graph`. Returns an empty vector when the plan is
/// sound; otherwise one message per violation:
///   1. plan/graph shape agreement (state sized to the layer count);
///   2. buffer bookkeeping: every entity belongs to exactly one buffer,
///      buffer capacity = max member size, members never interfere
///      (liveness intervals within a buffer are pairwise disjoint);
///   3. state consistency: a tensor marked on-chip has its buffer
///      allocated, unless it was granted by output-residency propagation;
///   4. resources: physical placements fit the device pools, and the DP
///      capacity respected the configured fraction;
///   5. residency: resident weights are on-chip weight tensors of real
///      conv layers.
std::vector<std::string> validate_plan(const graph::ComputationGraph& graph,
                                       const AllocationPlan& plan);

}  // namespace lcmm::core
