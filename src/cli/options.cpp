#include "cli/options.hpp"

#include <sstream>

#include "models/models.hpp"

namespace lcmm::cli {

namespace {

bool consume_value(const std::vector<std::string>& args, std::size_t& i,
                   const std::string& flag, std::string& out) {
  if (args[i] == flag) {
    if (i + 1 >= args.size()) throw CliError(flag + " needs a value");
    out = args[++i];
    return true;
  }
  const std::string prefix = flag + "=";
  if (args[i].rfind(prefix, 0) == 0) {
    out = args[i].substr(prefix.size());
    return true;
  }
  return false;
}

int to_int(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw CliError(flag + ": expected an integer, got '" + value + "'");
  }
}

double to_double(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw CliError(flag + ": expected a number, got '" + value + "'");
  }
}

}  // namespace

hw::FpgaDevice resolve_device(const std::string& name) {
  if (name == "vu9p") return hw::FpgaDevice::vu9p();
  if (name == "zu9eg") return hw::FpgaDevice::zu9eg();
  if (name == "u250") return hw::FpgaDevice::u250();
  throw CliError("unknown device '" + name + "' (vu9p, zu9eg, u250)");
}

Options parse_cli(const std::vector<std::string>& args) {
  Options opt;
  std::string value;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      opt.show_help = true;
    } else if (arg == "--verbose" || arg == "-v") {
      opt.verbose = true;
    } else if (consume_value(args, i, "--model", value)) {
      opt.model = value;
    } else if (consume_value(args, i, "--graph", value)) {
      opt.graph_file = value;
    } else if (consume_value(args, i, "--precision", value)) {
      if (value == "8") {
        opt.precision = hw::Precision::kInt8;
      } else if (value == "16") {
        opt.precision = hw::Precision::kInt16;
      } else if (value == "32") {
        opt.precision = hw::Precision::kFp32;
      } else {
        throw CliError("--precision must be 8, 16 or 32");
      }
    } else if (consume_value(args, i, "--device", value)) {
      resolve_device(value);  // validate eagerly
      opt.device = value;
    } else if (consume_value(args, i, "--design", value)) {
      if (value == "umm") {
        opt.design = DesignChoice::kUmm;
      } else if (value == "lcmm") {
        opt.design = DesignChoice::kLcmm;
      } else if (value == "both") {
        opt.design = DesignChoice::kBoth;
      } else {
        throw CliError("--design must be umm, lcmm or both");
      }
    } else if (consume_value(args, i, "--format", value)) {
      if (value == "text") {
        opt.format = OutputFormat::kText;
      } else if (value == "json") {
        opt.format = OutputFormat::kJson;
      } else if (value == "csv") {
        opt.format = OutputFormat::kCsv;
      } else {
        throw CliError("--format must be text, json or csv");
      }
    } else if (consume_value(args, i, "--allocator", value)) {
      if (value == "dnnk") {
        opt.lcmm.allocator = core::AllocatorKind::kDnnk;
      } else if (value == "greedy") {
        opt.lcmm.allocator = core::AllocatorKind::kGreedy;
      } else if (value == "exact") {
        opt.lcmm.allocator = core::AllocatorKind::kExact;
      } else {
        throw CliError("--allocator must be dnnk, greedy or exact");
      }
    } else if (consume_value(args, i, "--jobs", value)) {
      opt.jobs = to_int("--jobs", value);
      if (opt.jobs < 1) throw CliError("--jobs must be >= 1");
    } else if (consume_value(args, i, "--dse-passes", value)) {
      opt.lcmm.dse_passes = to_int("--dse-passes", value);
    } else if (consume_value(args, i, "--capacity-fraction", value)) {
      opt.lcmm.sram_capacity_fraction = to_double("--capacity-fraction", value);
    } else if (arg == "--no-feature-reuse") {
      opt.lcmm.feature_reuse = false;
    } else if (arg == "--no-prefetch") {
      opt.lcmm.weight_prefetch = false;
    } else if (arg == "--no-splitting") {
      opt.lcmm.buffer_splitting = false;
    } else if (arg == "--no-promotion") {
      opt.lcmm.residency_promotion = false;
    } else if (arg == "--no-fallback") {
      opt.lcmm.allow_fallback_to_umm = false;
    } else if (arg == "--strict") {
      opt.lcmm.strict = true;
    } else if (consume_value(args, i, "--job-timeout", value)) {
      opt.job_timeout_s = to_double("--job-timeout", value);
      if (opt.job_timeout_s <= 0) throw CliError("--job-timeout must be > 0");
    } else if (consume_value(args, i, "--retries", value)) {
      const int retries = to_int("--retries", value);
      if (retries < 0) throw CliError("--retries must be >= 0");
      opt.job_attempts = retries + 1;
    } else if (arg == "--list-fault-sites") {
      opt.list_fault_sites = true;
    } else if (consume_value(args, i, "--chrome-trace", value)) {
      opt.chrome_trace_path = value;
    } else if (consume_value(args, i, "--stats-json", value)) {
      opt.stats_json_path = value;
    } else if (consume_value(args, i, "--compile-trace", value)) {
      opt.compile_trace_path = value;
    } else if (arg == "--validate") {
      opt.validate = true;
    } else if (arg == "--check") {
      opt.check = true;
    } else if (arg.rfind("--check=", 0) == 0) {
      const std::string mode = arg.substr(std::string("--check=").size());
      if (mode == "strict") {
        opt.check = opt.check_strict = true;
      } else if (mode == "on") {
        opt.check = true;
      } else {
        throw CliError("--check accepts no value, 'on' or 'strict'");
      }
    } else if (arg == "--dot") {
      opt.emit_dot = true;
    } else if (arg == "--emit-graph") {
      opt.emit_graph = true;
    } else if (arg == "--trace") {
      opt.emit_trace = true;
    } else if (arg == "--roofline") {
      opt.emit_roofline = true;
    } else {
      throw CliError("unknown option '" + arg + "' (see --help)");
    }
  }
  if (opt.show_help || opt.list_fault_sites) return opt;
  if (opt.model.empty() == opt.graph_file.empty()) {
    throw CliError("exactly one of --model or --graph is required");
  }
  return opt;
}

std::string usage() {
  std::ostringstream os;
  os << "lcmm_compile — layer conscious memory management for FPGA DNN "
        "accelerators\n\n"
        "usage: lcmm_compile (--model NAME | --graph FILE.lcmm) [options]\n\n"
        "inputs:\n"
        "  --model NAME          built-in model:";
  for (const std::string& name : models::model_names()) os << " " << name;
  os << "\n  --graph FILE          load a .lcmm graph file (see io/text_format.hpp)\n"
        "\ntarget:\n"
        "  --precision 8|16|32   data precision (default 16)\n"
        "  --device vu9p|zu9eg|u250  FPGA device (default vu9p)\n"
        "\ncompilation:\n"
        "  --design umm|lcmm|both  which designs to compile (default both)\n"
        "  --allocator dnnk|greedy|exact\n"
        "  --dse-passes N        DSE refinement passes (default 2)\n"
        "  --capacity-fraction F fraction of free SRAM handed to DNNK\n"
        "  --no-feature-reuse --no-prefetch --no-splitting --no-promotion\n"
        "  --no-fallback         keep the LCMM design even if UMM is faster\n"
        "  --strict              fail hard on the first typed compile error\n"
        "                        instead of walking the resil degradation\n"
        "                        ladder down to UMM (docs/robustness.md)\n"
        "  --job-timeout S       soft per-job wall-clock budget in seconds for\n"
        "                        batch compilation (checked at phase boundaries)\n"
        "  --retries N           retries per batch job for transient failures\n"
        "                        (default 1; deterministic errors never retry)\n"
        "  --list-fault-sites    print the registered LCMM_FAULT injection\n"
        "                        sites and exit\n"
        "  --jobs N              worker threads for DSE candidate evaluation\n"
        "                        and batch compilation (default: LCMM_JOBS or\n"
        "                        the hardware concurrency); plans, reports and\n"
        "                        stats are identical for every N\n"
        "\noutput:\n"
        "  --format text|json|csv  report format (default text)\n"
        "  --trace               print the tensor residency timeline\n"
        "  --chrome-trace PATH   write a chrome://tracing timeline JSON\n"
        "  --stats-json PATH     write compiler pass stats (wall times,\n"
        "                        counters, allocation decisions) as JSON\n"
        "  --compile-trace PATH  write the compiler's own pass spans as a\n"
        "                        chrome://tracing JSON\n"
        "  --check[=strict]      run the static plan checker (lcmm::check) on\n"
        "                        every compiled plan; exit non-zero on errors\n"
        "                        (strict: warnings fail too). See also the\n"
        "                        standalone lcmm_check tool for JSON/SARIF.\n"
        "  --validate            run the plan validator; fail on violations\n"
        "  --roofline            print the per-layer roofline census\n"
        "  --dot                 print the graph in Graphviz DOT\n"
        "  --emit-graph          print the graph in the .lcmm text format\n"
        "  --verbose             debug-level compiler pass logging to stderr\n"
        "                        (LCMM_LOG_LEVEL=debug|info|warn|error|off\n"
        "                        sets the initial threshold)\n";
  return os.str();
}

}  // namespace lcmm::cli
