// Command-line option parsing for the lcmm_compile tool, kept in the
// library so it is unit-testable.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "core/lcmm.hpp"

namespace lcmm::cli {

class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class OutputFormat { kText, kJson, kCsv };
enum class DesignChoice { kUmm, kLcmm, kBoth };

struct Options {
  /// Exactly one of model / graph_file is set.
  std::string model;
  std::string graph_file;

  hw::Precision precision = hw::Precision::kInt16;
  std::string device = "vu9p";
  DesignChoice design = DesignChoice::kBoth;
  OutputFormat format = OutputFormat::kText;

  core::LcmmOptions lcmm;

  /// Worker threads for DSE candidate evaluation and batch compilation.
  /// 0 = auto: LCMM_JOBS when set, else the hardware concurrency. Results
  /// are identical for every value (see docs/parallelism.md).
  int jobs = 0;

  bool emit_dot = false;
  bool emit_graph = false;
  bool emit_trace = false;
  bool emit_roofline = false;
  bool show_help = false;
  bool verbose = false;
  /// When non-empty, write a Chrome trace-event JSON of the last compiled
  /// design's timeline to this path.
  std::string chrome_trace_path;
  /// When non-empty, write the compiler's own stats tree (pass wall times,
  /// counters, allocation decisions) as JSON to this path.
  std::string stats_json_path;
  /// When non-empty, write the compiler pipeline's spans as a Chrome
  /// trace-event JSON to this path.
  std::string compile_trace_path;
  /// Run the plan validator on every compiled plan and fail on violations.
  /// (Legacy flag; --check surfaces the same engine with full diagnostics.)
  bool validate = false;
  /// Run the lcmm::check diagnostics engine on every compiled plan and
  /// exit non-zero on any error-severity diagnostic.
  bool check = false;
  /// --check=strict: warnings gate the exit code too.
  bool check_strict = false;
  /// --list-fault-sites: print the resil fault-injection sites and exit.
  bool list_fault_sites = false;
  /// Per-job wall-clock budget in seconds for batch compilation
  /// (<= 0 = unlimited), checked at phase boundaries.
  double job_timeout_s = 0.0;
  /// Attempts per batch job (transient failures retry; default 2).
  int job_attempts = 2;
};

/// Parses argv (argv[0] is skipped). Throws CliError on bad input.
Options parse_cli(const std::vector<std::string>& args);

/// The --help text.
std::string usage();

/// Resolves Options::device to a device model. Throws CliError.
hw::FpgaDevice resolve_device(const std::string& name);

}  // namespace lcmm::cli
