// Lightweight leveled logging for the LCMM library.
//
// The logger is thread-safe: the threshold is atomic and each emitted line
// is serialized under a mutex, so lines from lcmm::par workers never
// interleave mid-line (their *order* across threads is scheduling-
// dependent, which is why determinism-sensitive output goes through
// obs::CompileStats instead — see docs/parallelism.md). Output goes to
// stderr; benches and examples print their results to stdout so the two
// streams never mix in redirected runs.
//
// The initial threshold comes from the LCMM_LOG_LEVEL environment variable
// (debug|info|warn|error|off; default warn); set_log_level overrides it.
// Every line is prefixed with seconds elapsed since the first log call:
//
//   [    1.042s] [INFO] LCMM(googlenet): 4.1 ms (UMM est) -> 2.3 ms ...
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace lcmm::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold. Messages below this level are discarded.
/// Initialized from LCMM_LOG_LEVEL when the env var is set.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one formatted line ("[level] message") to stderr if enabled.
void log_line(LogLevel level, std::string_view message);

namespace detail {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace lcmm::util

#define LCMM_LOG(level) ::lcmm::util::detail::LogMessage(level)
#define LCMM_DEBUG() LCMM_LOG(::lcmm::util::LogLevel::kDebug)
#define LCMM_INFO() LCMM_LOG(::lcmm::util::LogLevel::kInfo)
#define LCMM_WARN() LCMM_LOG(::lcmm::util::LogLevel::kWarn)
#define LCMM_ERROR() LCMM_LOG(::lcmm::util::LogLevel::kError)
