#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lcmm::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row width " + std::to_string(cells.size()) +
                                " != header width " + std::to_string(header_.size()));
  }
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void Table::add_separator() { pending_separator_ = true; }

namespace {
std::string rule(const std::vector<std::size_t>& widths) {
  std::string line;
  for (std::size_t w : widths) {
    line += '+';
    line.append(w + 2, '-');
  }
  line += "+\n";
  return line;
}

std::string render_row(const std::vector<std::string>& cells,
                       const std::vector<std::size_t>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    line += "| ";
    line += cells[i];
    line.append(widths[i] - cells[i].size() + 1, ' ');
  }
  line += "|\n";
  return line;
}
}  // namespace

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const Row& r : rows_) {
    for (std::size_t i = 0; i < r.cells.size(); ++i) {
      widths[i] = std::max(widths[i], r.cells[i].size());
    }
  }
  std::string out = rule(widths);
  out += render_row(header_, widths);
  out += rule(widths);
  for (const Row& r : rows_) {
    if (r.separator_before) out += rule(widths);
    out += render_row(r.cells, widths);
  }
  out += rule(widths);
  return out;
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << csv_escape(header_[i]);
  }
  os << '\n';
  for (const Row& r : rows_) {
    for (std::size_t i = 0; i < r.cells.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(r.cells[i]);
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_string();
}

std::string fmt_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_pct(double fraction) {
  return std::to_string(static_cast<long long>(std::llround(fraction * 100.0)));
}

std::string fmt_mebibytes(double bytes, int digits) {
  return fmt_fixed(bytes / (1024.0 * 1024.0), digits) + " MB";
}

}  // namespace lcmm::util
