// Minimal JSON value tree + serializer, for machine-readable reports from
// the CLI tool and benches. Write-only by design (we never parse JSON).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace lcmm::util {

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}
  Json(std::int64_t v) : value_(v) {}
  Json(std::size_t v) : value_(static_cast<std::int64_t>(v)) {}
  Json(double v) : value_(v) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}

  static Json object() {
    Json j;
    j.value_ = Object{};
    return j;
  }
  static Json array() {
    Json j;
    j.value_ = Array{};
    return j;
  }

  /// Object access; creates the key. Throws std::logic_error on non-objects.
  Json& operator[](const std::string& key);
  /// Array append. Throws std::logic_error on non-arrays.
  Json& push(Json value);

  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  std::size_t size() const;

  /// Serializes; indent < 0 emits compact single-line JSON.
  std::string dump(int indent = 2) const;

 private:
  using Array = std::vector<Json>;
  // std::map keeps key order deterministic across runs.
  using Object = std::map<std::string, Json>;
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;

  void write(std::string& out, int indent, int depth) const;
};

}  // namespace lcmm::util
