// Minimal JSON value tree, serializer and parser, for machine-readable
// reports from the CLI tools and benches. Originally write-only; the bench
// regression gate (src/bench/diff.hpp) reads recorded runs back, so the
// tree now round-trips: parse(dump(j)) == j for everything we emit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace lcmm::util {

/// Malformed input to Json::parse. `what()` carries a 1-based line:column
/// position and what the parser expected there.
class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  using Array = std::vector<Json>;
  // std::map keeps key order deterministic across runs.
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}
  Json(std::int64_t v) : value_(v) {}
  Json(std::size_t v) : value_(static_cast<std::int64_t>(v)) {}
  Json(double v) : value_(v) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}

  static Json object() {
    Json j;
    j.value_ = Object{};
    return j;
  }
  static Json array() {
    Json j;
    j.value_ = Array{};
    return j;
  }

  /// Parses a complete JSON document (trailing garbage is an error).
  /// Throws JsonParseError on malformed input.
  static Json parse(std::string_view text);

  /// Object access; creates the key. Throws std::logic_error on non-objects.
  Json& operator[](const std::string& key);
  /// Array append. Throws std::logic_error on non-arrays.
  Json& push(Json value);

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  std::size_t size() const;

  /// Typed reads; throw std::logic_error when the value is another type.
  /// as_double accepts integers too (JSON does not distinguish).
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Object lookup. `contains` is false on non-objects; `at` throws
  /// std::out_of_range on a missing key, std::logic_error on non-objects.
  bool contains(const std::string& key) const;
  const Json& at(const std::string& key) const;
  /// Array element access; throws std::out_of_range / std::logic_error.
  const Json& at(std::size_t index) const;

  /// Underlying containers, for iteration. Throw std::logic_error when the
  /// value is not the requested aggregate.
  const Object& object_items() const;
  const Array& array_items() const;

  bool operator==(const Json& other) const { return value_ == other.value_; }

  /// Serializes; indent < 0 emits compact single-line JSON.
  std::string dump(int indent = 2) const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;

  void write(std::string& out, int indent, int depth) const;
};

}  // namespace lcmm::util
