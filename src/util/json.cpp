#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lcmm::util {

Json& Json::operator[](const std::string& key) {
  if (!is_object()) throw std::logic_error("Json: operator[] on a non-object");
  return std::get<Object>(value_)[key];
}

Json& Json::push(Json value) {
  if (!is_array()) throw std::logic_error("Json: push on a non-array");
  std::get<Array>(value_).push_back(std::move(value));
  return std::get<Array>(value_).back();
}

std::size_t Json::size() const {
  if (is_object()) return std::get<Object>(value_).size();
  if (is_array()) return std::get<Array>(value_).size();
  return 0;
}

namespace {
void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}
}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  struct Visitor {
    std::string& out;
    int indent;
    int depth;
    void operator()(std::nullptr_t) const { out += "null"; }
    void operator()(bool b) const { out += b ? "true" : "false"; }
    void operator()(std::int64_t v) const { out += std::to_string(v); }
    void operator()(double v) const {
      if (!std::isfinite(v)) {
        out += "null";  // JSON has no Inf/NaN
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.12g", v);
      out += buf;
    }
    void operator()(const std::string& s) const { write_escaped(out, s); }
    void operator()(const Array& a) const {
      if (a.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const Json& item : a) {
        if (!first) out += ',';
        first = false;
        newline(out, indent, depth + 1);
        item.write(out, indent, depth + 1);
      }
      newline(out, indent, depth);
      out += ']';
    }
    void operator()(const Object& o) const {
      if (o.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : o) {
        if (!first) out += ',';
        first = false;
        newline(out, indent, depth + 1);
        write_escaped(out, key);
        out += indent < 0 ? ":" : ": ";
        value.write(out, indent, depth + 1);
      }
      newline(out, indent, depth);
      out += '}';
    }
  };
  std::visit(Visitor{out, indent, depth}, value_);
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace lcmm::util
