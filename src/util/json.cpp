#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace lcmm::util {

Json& Json::operator[](const std::string& key) {
  if (!is_object()) throw std::logic_error("Json: operator[] on a non-object");
  return std::get<Object>(value_)[key];
}

Json& Json::push(Json value) {
  if (!is_array()) throw std::logic_error("Json: push on a non-array");
  std::get<Array>(value_).push_back(std::move(value));
  return std::get<Array>(value_).back();
}

std::size_t Json::size() const {
  if (is_object()) return std::get<Object>(value_).size();
  if (is_array()) return std::get<Array>(value_).size();
  return 0;
}

bool Json::as_bool() const {
  if (!is_bool()) throw std::logic_error("Json: as_bool on a non-bool");
  return std::get<bool>(value_);
}

std::int64_t Json::as_int() const {
  if (!is_int()) throw std::logic_error("Json: as_int on a non-integer");
  return std::get<std::int64_t>(value_);
}

double Json::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
  if (is_double()) return std::get<double>(value_);
  throw std::logic_error("Json: as_double on a non-number");
}

const std::string& Json::as_string() const {
  if (!is_string()) throw std::logic_error("Json: as_string on a non-string");
  return std::get<std::string>(value_);
}

bool Json::contains(const std::string& key) const {
  return is_object() && std::get<Object>(value_).count(key) > 0;
}

const Json& Json::at(const std::string& key) const {
  if (!is_object()) throw std::logic_error("Json: at(key) on a non-object");
  const Object& o = std::get<Object>(value_);
  const auto it = o.find(key);
  if (it == o.end()) throw std::out_of_range("Json: missing key '" + key + "'");
  return it->second;
}

const Json& Json::at(std::size_t index) const {
  if (!is_array()) throw std::logic_error("Json: at(index) on a non-array");
  const Array& a = std::get<Array>(value_);
  if (index >= a.size()) throw std::out_of_range("Json: index out of range");
  return a[index];
}

const Json::Object& Json::object_items() const {
  if (!is_object()) throw std::logic_error("Json: object_items on a non-object");
  return std::get<Object>(value_);
}

const Json::Array& Json::array_items() const {
  if (!is_array()) throw std::logic_error("Json: array_items on a non-array");
  return std::get<Array>(value_);
}

namespace {
void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}
}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  struct Visitor {
    std::string& out;
    int indent;
    int depth;
    void operator()(std::nullptr_t) const { out += "null"; }
    void operator()(bool b) const { out += b ? "true" : "false"; }
    void operator()(std::int64_t v) const { out += std::to_string(v); }
    void operator()(double v) const {
      if (!std::isfinite(v)) {
        out += "null";  // JSON has no Inf/NaN
        return;
      }
      // Shortest representation that parses back to the same bits, so a
      // dump/parse round trip is lossless (the bench gate compares stored
      // baselines with exact tolerances).
      char buf[32];
      for (int prec : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v) break;
      }
      out += buf;
    }
    void operator()(const std::string& s) const { write_escaped(out, s); }
    void operator()(const Array& a) const {
      if (a.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const Json& item : a) {
        if (!first) out += ',';
        first = false;
        newline(out, indent, depth + 1);
        item.write(out, indent, depth + 1);
      }
      newline(out, indent, depth);
      out += ']';
    }
    void operator()(const Object& o) const {
      if (o.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : o) {
        if (!first) out += ',';
        first = false;
        newline(out, indent, depth + 1);
        write_escaped(out, key);
        out += indent < 0 ? ":" : ": ";
        value.write(out, indent, depth + 1);
      }
      newline(out, indent, depth);
      out += '}';
    }
  };
  std::visit(Visitor{out, indent, depth}, value_);
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over the grammar we emit (RFC 8259 minus the
/// exotica: no surrogate-pair decoding beyond the BMP escapes we write).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("end of input");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 200;

  [[noreturn]] void fail(const std::string& expected) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonParseError("JSON parse error at " + std::to_string(line) + ":" +
                         std::to_string(col) + ": expected " + expected);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("'") + c + "'");
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("shallower nesting");
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (consume_word("true")) return Json(true);
        fail("'true'");
      case 'f':
        if (consume_word("false")) return Json(false);
        fail("'false'");
      case 'n':
        if (consume_word("null")) return Json(nullptr);
        fail("'null'");
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      if (peek() != '"') fail("a string key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value(depth + 1);
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return obj;
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      arr.push(parse_value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("a closing '\"'");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("an escape character");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("4 hex digits");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("a hex digit");
            }
          }
          // UTF-8 encode the BMP code point (we never emit surrogates).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("a valid escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    bool integral = true;
    if (consume('.')) {
      integral = false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("a number");
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<std::int64_t>(v));
      }
      // Out-of-range integer: fall through to double.
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("a number");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace lcmm::util
