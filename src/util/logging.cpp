#include "util/logging.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace lcmm::util {

namespace {

/// Initial threshold: the LCMM_LOG_LEVEL environment variable when set and
/// recognized (debug|info|warn|error|off, case-insensitive), else kWarn.
LogLevel initial_level() {
  const char* env = std::getenv("LCMM_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  std::string name;
  for (const char* p = env; *p != '\0'; ++p) {
    name += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  std::fprintf(stderr, "[WARN] LCMM_LOG_LEVEL='%s' not recognized "
                       "(debug|info|warn|error|off); using warn\n", env);
  return LogLevel::kWarn;
}

LogLevel g_level = initial_level();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// Seconds since the first log call, so long compiles and sweeps can be
/// read as a timeline without external timestamps.
double elapsed_s() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_line(LogLevel level, std::string_view message) {
  if (level < g_level || g_level == LogLevel::kOff) return;
  std::fprintf(stderr, "[%9.3fs] [%s] %.*s\n", elapsed_s(), level_name(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace lcmm::util
