#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace lcmm::util {

namespace {

/// Initial threshold: the LCMM_LOG_LEVEL environment variable when set and
/// recognized (debug|info|warn|error|off, case-insensitive), else kWarn.
LogLevel initial_level() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): runs once during static init,
  // before any lcmm::par worker can exist.
  const char* env = std::getenv("LCMM_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  std::string name;
  for (const char* p = env; *p != '\0'; ++p) {
    name += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  std::fprintf(stderr, "[WARN] LCMM_LOG_LEVEL='%s' not recognized "
                       "(debug|info|warn|error|off); using warn\n", env);
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level = initial_level();

/// Serializes emitted lines so concurrent workers never interleave text.
std::mutex& log_mutex() {
  static std::mutex mutex;
  return mutex;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// Seconds since the first log call, so long compiles and sweeps can be
/// read as a timeline without external timestamps.
double elapsed_s() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view message) {
  const LogLevel threshold = g_level.load(std::memory_order_relaxed);
  if (level < threshold || threshold == LogLevel::kOff) return;
  const double now = elapsed_s();
  std::lock_guard<std::mutex> lock(log_mutex());
  std::fprintf(stderr, "[%9.3fs] [%s] %.*s\n", now, level_name(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace lcmm::util
