// ASCII table / CSV rendering used by the bench harnesses to print the
// paper's tables and figure series in a readable, diffable format.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace lcmm::util {

/// A simple column-aligned text table. Cells are strings; callers format
/// numbers with `fmt_*` helpers below so every bench prints consistently.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal separator line before the next added row.
  void add_separator();

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i].cells; }

  /// Renders with padded columns, `|` separators and a header rule.
  std::string to_string() const;
  /// Renders as RFC-4180-ish CSV (separator rows are skipped).
  std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// Fixed-precision decimal, e.g. fmt_fixed(1.3579, 2) == "1.36".
std::string fmt_fixed(double value, int digits);
/// Percentage without the sign, e.g. fmt_pct(0.856) == "86".
std::string fmt_pct(double fraction);
/// Engineering-style bytes, e.g. "3.98 MB".
std::string fmt_mebibytes(double bytes, int digits = 2);

}  // namespace lcmm::util
