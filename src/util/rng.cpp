#include "util/rng.hpp"

#include <stdexcept>

namespace lcmm::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : state_) s = splitmix64(seed);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return v % bound;
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

}  // namespace lcmm::util
