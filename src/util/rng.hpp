// Deterministic xoshiro256** RNG for property tests and random-graph sweeps.
//
// std::mt19937 would do, but its state is large and its distributions are
// implementation-defined; fixing the generator and distribution here makes
// test sweeps byte-for-byte reproducible across compilers.
#pragma once

#include <cstdint>

namespace lcmm::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();
  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);
  /// Uniform double in [0, 1).
  double next_double();
  /// Bernoulli(p).
  bool next_bool(double p = 0.5);

 private:
  std::uint64_t state_[4];
};

}  // namespace lcmm::util
