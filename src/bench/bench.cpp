#include "bench/bench.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lcmm::bench {

const char* to_string(Direction d) {
  return d == Direction::kHigherIsBetter ? "higher" : "lower";
}

const char* to_string(Kind k) { return k == Kind::kModel ? "model" : "wall"; }

namespace {

Direction direction_from_string(const std::string& s) {
  if (s == "higher") return Direction::kHigherIsBetter;
  if (s == "lower") return Direction::kLowerIsBetter;
  throw std::runtime_error("bench: unknown direction '" + s + "'");
}

Kind kind_from_string(const std::string& s) {
  if (s == "model") return Kind::kModel;
  if (s == "wall") return Kind::kWall;
  throw std::runtime_error("bench: unknown metric kind '" + s + "'");
}

}  // namespace

std::string Metric::key() const {
  if (dims.empty()) return name;
  std::string out = name + "{";
  bool first = true;
  for (const auto& [k, v] : dims) {
    if (!first) out += ',';
    first = false;
    out += k + "=" + v;
  }
  out += '}';
  return out;
}

void BenchRun::add(std::string name, double value, std::string unit,
                   Direction dir, Dims dims, Kind kind) {
  Metric m;
  m.name = std::move(name);
  m.dims = std::move(dims);
  m.value = value;
  m.unit = std::move(unit);
  m.direction = dir;
  m.kind = kind;
  const std::string key = m.key();
  if (!by_key_.emplace(key, metrics_.size()).second) {
    throw std::logic_error("bench: duplicate metric key '" + key + "'");
  }
  metrics_.push_back(std::move(m));
}

void BenchRun::add_wall(std::string name, double seconds, Dims dims) {
  add(std::move(name), seconds, "s", Direction::kLowerIsBetter,
      std::move(dims), Kind::kWall);
}

const Metric* BenchRun::find(const std::string& key) const {
  const auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : &metrics_[it->second];
}

util::Json BenchRun::to_json() const {
  util::Json doc = util::Json::object();
  doc["schema"] = kSchema;
  doc["suite"] = suite_;
  util::Json metrics = util::Json::array();
  for (const Metric& m : metrics_) {
    util::Json entry = util::Json::object();
    entry["name"] = m.name;
    if (!m.dims.empty()) {
      util::Json dims = util::Json::object();
      for (const auto& [k, v] : m.dims) dims[k] = v;
      entry["dims"] = std::move(dims);
    }
    entry["value"] = m.value;
    entry["unit"] = m.unit;
    entry["direction"] = to_string(m.direction);
    entry["kind"] = to_string(m.kind);
    metrics.push(std::move(entry));
  }
  doc["metrics"] = std::move(metrics);
  return doc;
}

BenchRun BenchRun::from_json(const util::Json& doc) {
  if (!doc.is_object() || !doc.contains("schema") ||
      !doc.at("schema").is_string()) {
    throw std::runtime_error("bench: not a bench-run document (no schema tag)");
  }
  if (doc.at("schema").as_string() != kSchema) {
    throw std::runtime_error("bench: unsupported schema '" +
                             doc.at("schema").as_string() + "' (want " +
                             kSchema + ")");
  }
  BenchRun run(doc.at("suite").as_string());
  for (const util::Json& entry : doc.at("metrics").array_items()) {
    Dims dims;
    if (entry.contains("dims")) {
      for (const auto& [k, v] : entry.at("dims").object_items()) {
        dims[k] = v.as_string();
      }
    }
    run.add(entry.at("name").as_string(), entry.at("value").as_double(),
            entry.at("unit").as_string(),
            direction_from_string(entry.at("direction").as_string()),
            std::move(dims), kind_from_string(entry.at("kind").as_string()));
  }
  return run;
}

BenchRun BenchRun::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("bench: cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(util::Json::parse(buffer.str()));
}

void BenchRun::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("bench: cannot write '" + path + "'");
  out << to_json().dump(2) << "\n";
  if (!out) throw std::runtime_error("bench: short write to '" + path + "'");
}

Harness::Harness(int argc, char** argv, std::string suite)
    : run_(std::move(suite)), start_(std::chrono::steady_clock::now()) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path_ = arg.substr(7);
      if (json_path_.empty()) {
        std::fprintf(stderr, "%s: --json needs a path\n", run_.suite().c_str());
        std::exit(2);
      }
    } else if (arg == "--help") {
      std::printf("usage: %s [--json=<path>]\n\n"
                  "Prints the human-readable tables on stdout; with --json,\n"
                  "also writes the %s metric document for lcmm_bench_diff.\n",
                  run_.suite().c_str(), kSchema);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n",
                   run_.suite().c_str(), arg.c_str());
      std::exit(2);
    }
  }
}

int Harness::finish() {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  run_.add_wall("bench_wall_s", wall);
  if (json_path_.empty()) return 0;
  try {
    run_.write_json(json_path_);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", run_.suite().c_str(), e.what());
    return 2;
  }
  return 0;
}

}  // namespace lcmm::bench
