// lcmm::bench — the machine-readable bench harness every bench binary
// links. A bench registers named metrics (simulated latency, speedups,
// DRAM bytes, buffer footprints, allocator-quality ratios, compile wall
// time), tags each with dimensions (net, precision, capacity, ...), and
// the harness emits a stable JSON document ("lcmm-bench-v1") alongside
// the human-readable tables when the binary is run with --json=<path>.
//
// Metrics carry two gate-relevant attributes:
//   direction — whether a larger value is an improvement (speedup, Tops)
//               or a regression (latency, bytes, stalls);
//   kind      — kModel values come from the analytical model / simulator
//               and are bit-deterministic across runs and worker counts,
//               so CI gates on them; kWall values are host wall-clock and
//               are recorded for trend plots but never gate a PR.
//
// The comparator half of the loop lives in bench/diff.hpp; the CI wiring
// is documented in docs/benchmarking.md.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace lcmm::bench {

/// Schema tag of the emitted document; bump only with a migration note in
/// docs/benchmarking.md.
inline constexpr const char* kSchema = "lcmm-bench-v1";

enum class Direction { kHigherIsBetter, kLowerIsBetter };
enum class Kind { kModel, kWall };

const char* to_string(Direction d);
const char* to_string(Kind k);

/// Dimension tags ("net" -> "RN", "precision" -> "int8"). std::map keeps
/// the rendered key order deterministic.
using Dims = std::map<std::string, std::string>;

struct Metric {
  std::string name;  ///< What is measured ("latency_ms", "speedup").
  Dims dims;         ///< Where it was measured ({net, precision, ...}).
  double value = 0.0;
  std::string unit;  ///< "ms", "x", "bytes", "count", "ratio", "s", ...
  Direction direction = Direction::kLowerIsBetter;
  Kind kind = Kind::kModel;

  /// Stable identity within a run: `name{k=v,k=v}` ("latency_ms{net=RN,
  /// precision=int8}"), or just `name` when there are no dims. The diff
  /// tool matches baseline and current metrics on this key.
  std::string key() const;
};

/// One bench invocation's metric registry.
class BenchRun {
 public:
  BenchRun() = default;
  explicit BenchRun(std::string suite) : suite_(std::move(suite)) {}

  const std::string& suite() const { return suite_; }

  /// Registers a metric. Throws std::logic_error on a duplicate key —
  /// two metrics the diff tool cannot tell apart are a bench bug.
  void add(std::string name, double value, std::string unit, Direction dir,
           Dims dims = {}, Kind kind = Kind::kModel);
  /// Wall-clock convenience (seconds, lower-is-better, never gated).
  void add_wall(std::string name, double seconds, Dims dims = {});

  const std::vector<Metric>& metrics() const { return metrics_; }
  /// Lookup by Metric::key(); nullptr when absent.
  const Metric* find(const std::string& key) const;

  util::Json to_json() const;
  /// Inverse of to_json. Throws std::runtime_error on schema violations
  /// (wrong schema tag, missing fields, bad enum strings).
  static BenchRun from_json(const util::Json& doc);
  /// Reads and parses a file. Throws std::runtime_error / JsonParseError.
  static BenchRun load(const std::string& path);

  void write_json(const std::string& path) const;

 private:
  std::string suite_;
  std::vector<Metric> metrics_;
  std::map<std::string, std::size_t> by_key_;
};

/// Bench-binary front end: parses the harness arguments, owns the run,
/// and writes the JSON on finish(). Typical bench main:
///
///   int main(int argc, char** argv) {
///     bench::Harness h(argc, argv, "table1_main");
///     ...
///     h.add("speedup", s, "x", bench::Direction::kHigherIsBetter,
///           {{"net", label}, {"precision", hw::to_string(p)}});
///     ...
///     return h.finish();
///   }
///
/// Recognized arguments: --json=<path>, --help. Anything else is an error
/// (exit 2) so a typo cannot silently drop the JSON a CI gate expects.
/// finish() stamps the whole-process wall time as `bench_wall_s` (kWall).
class Harness {
 public:
  Harness(int argc, char** argv, std::string suite);

  BenchRun& run() { return run_; }
  void add(std::string name, double value, std::string unit, Direction dir,
           Dims dims = {}, Kind kind = Kind::kModel) {
    run_.add(std::move(name), value, std::move(unit), dir, std::move(dims),
             kind);
  }

  /// Writes the JSON when --json was given; returns the process exit code
  /// (0, or 2 when the file cannot be written).
  int finish();

  const std::string& json_path() const { return json_path_; }

 private:
  BenchRun run_;
  std::string json_path_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lcmm::bench
