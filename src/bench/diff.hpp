// Bench-run comparison (the perf-regression gate): takes a recorded
// baseline run and a fresh run of the same suite, applies a per-metric
// tolerance spec, and classifies every metric as improvement / within
// tolerance / regression / missing / new. Model-kind metrics gate (CI
// fails on regression or on a baseline metric that disappeared);
// wall-clock metrics are reported but never gate — shared runners make
// wall time untrustworthy (docs/benchmarking.md).
//
// Tolerance spec: a line-based text format, most-specific rule LAST
// (the last matching rule wins):
//
//   # comment
//   default                          rel=0.02
//   table1_main/latency_ms*          rel=0.05 abs=0.001
//   golden_plans/*                   rel=0 abs=0
//
// A pattern is a glob (`*`, `?`) matched against "<suite>/<metric key>",
// e.g. "table1_main/speedup{net=RN,precision=int8}". `default` replaces
// the built-in fallback tolerance (2% relative).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "bench/bench.hpp"

namespace lcmm::bench {

struct Tolerance {
  double rel = 0.0;  ///< Allowed |delta| as a fraction of |baseline|.
  double abs = 0.0;  ///< Allowed |delta| in the metric's own unit.
};

/// Simple glob: `*` matches any run (including empty), `?` one character.
bool glob_match(std::string_view pattern, std::string_view text);

class ToleranceSpec {
 public:
  struct Rule {
    std::string pattern;
    Tolerance tol;
  };

  /// Parses the text format above. Throws std::runtime_error with a line
  /// number on malformed input.
  static ToleranceSpec parse(std::string_view text);
  static ToleranceSpec load(const std::string& path);

  /// The tolerance for a metric: the last rule whose pattern matches
  /// "<suite>/<key>", else the default (2% relative unless overridden).
  Tolerance lookup(const std::string& suite, const Metric& metric) const;

  const std::vector<Rule>& rules() const { return rules_; }
  const Tolerance& fallback() const { return fallback_; }

 private:
  std::vector<Rule> rules_;
  Tolerance fallback_{0.02, 0.0};
};

enum class Verdict {
  kImprovement,      ///< Beyond tolerance in the better direction.
  kWithinTolerance,  ///< |delta| inside the tolerance envelope.
  kRegression,       ///< Beyond tolerance in the worse direction. Gates.
  kMissing,          ///< In the baseline, absent from the fresh run. Gates.
  kNew,              ///< In the fresh run only; record a new baseline.
};

const char* to_string(Verdict v);

struct MetricDelta {
  std::string key;
  std::string unit;
  Direction direction = Direction::kLowerIsBetter;
  Kind kind = Kind::kModel;
  bool has_base = false, has_current = false;
  double base = 0.0, current = 0.0;
  Tolerance tolerance;
  Verdict verdict = Verdict::kWithinTolerance;
  /// Whether this delta participates in the exit-code gate (model kind,
  /// or wall kind when DiffOptions::include_wall).
  bool gates = false;

  double delta() const { return current - base; }
  /// Relative change vs the baseline; 0 when the baseline is 0 and the
  /// value did not move, otherwise infinity for a from-zero change.
  double rel_change() const;
};

struct DiffOptions {
  bool include_wall = false;    ///< Gate wall-clock metrics too.
  bool fail_on_missing = true;  ///< kMissing fails the gate.
};

struct DiffResult {
  std::string suite;
  std::vector<MetricDelta> deltas;  ///< Baseline order, then new metrics.
  int regressions = 0;  ///< Gating regressions.
  int improvements = 0;
  int missing = 0;  ///< Gating missing metrics.
  int added = 0;
  bool gate_failed = false;
};

/// Compares `current` against `baseline`. Throws std::runtime_error when
/// the two runs come from different suites.
DiffResult diff_runs(const BenchRun& baseline, const BenchRun& current,
                     const ToleranceSpec& spec, const DiffOptions& options = {});

/// Renderers for the delta table. Text goes to terminals/CI logs;
/// Markdown goes to PR summaries ($GITHUB_STEP_SUMMARY) and artifacts.
std::string render_text(const DiffResult& result);
std::string render_markdown(const DiffResult& result);

}  // namespace lcmm::bench
