#include "bench/diff.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/table.hpp"

namespace lcmm::bench {

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative wildcard match with backtracking over the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

namespace {

double parse_tolerance_value(const std::string& token, int line) {
  try {
    std::size_t used = 0;
    const double v = std::stod(token, &used);
    if (used != token.size() || v < 0 || !std::isfinite(v)) {
      throw std::invalid_argument(token);
    }
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("tolerance spec line " + std::to_string(line) +
                             ": bad value '" + token + "'");
  }
}

}  // namespace

ToleranceSpec ToleranceSpec::parse(std::string_view text) {
  ToleranceSpec spec;
  std::istringstream lines{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string pattern;
    if (!(fields >> pattern)) continue;  // blank / comment-only line
    Tolerance tol;
    bool saw_value = false;
    std::string kv;
    while (fields >> kv) {
      const std::size_t eq = kv.find('=');
      const std::string k = kv.substr(0, eq);
      if (eq == std::string::npos || (k != "rel" && k != "abs")) {
        throw std::runtime_error("tolerance spec line " +
                                 std::to_string(lineno) + ": expected rel=… "
                                 "or abs=…, got '" + kv + "'");
      }
      const double v = parse_tolerance_value(kv.substr(eq + 1), lineno);
      (k == "rel" ? tol.rel : tol.abs) = v;
      saw_value = true;
    }
    if (!saw_value) {
      throw std::runtime_error("tolerance spec line " + std::to_string(lineno) +
                               ": rule '" + pattern + "' has no rel=/abs=");
    }
    if (pattern == "default") {
      spec.fallback_ = tol;
    } else {
      spec.rules_.push_back({std::move(pattern), tol});
    }
  }
  return spec;
}

ToleranceSpec ToleranceSpec::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read tolerance spec '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

Tolerance ToleranceSpec::lookup(const std::string& suite,
                                const Metric& metric) const {
  const std::string target = suite + "/" + metric.key();
  Tolerance result = fallback_;
  for (const Rule& rule : rules_) {
    if (glob_match(rule.pattern, target)) result = rule.tol;
  }
  return result;
}

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kImprovement: return "improvement";
    case Verdict::kWithinTolerance: return "ok";
    case Verdict::kRegression: return "REGRESSION";
    case Verdict::kMissing: return "MISSING";
    case Verdict::kNew: return "new";
  }
  return "?";
}

double MetricDelta::rel_change() const {
  if (base != 0.0) return (current - base) / std::fabs(base);
  if (current == base) return 0.0;
  return std::numeric_limits<double>::infinity();
}

DiffResult diff_runs(const BenchRun& baseline, const BenchRun& current,
                     const ToleranceSpec& spec, const DiffOptions& options) {
  if (baseline.suite() != current.suite()) {
    throw std::runtime_error("bench diff: suite mismatch ('" +
                             baseline.suite() + "' vs '" + current.suite() +
                             "')");
  }
  DiffResult result;
  result.suite = current.suite();

  for (const Metric& base : baseline.metrics()) {
    MetricDelta d;
    d.key = base.key();
    d.unit = base.unit;
    d.direction = base.direction;
    d.kind = base.kind;
    d.has_base = true;
    d.base = base.value;
    d.tolerance = spec.lookup(result.suite, base);
    d.gates = base.kind == Kind::kModel || options.include_wall;

    const Metric* cur = current.find(d.key);
    if (cur == nullptr) {
      d.verdict = Verdict::kMissing;
      if (d.gates && options.fail_on_missing) {
        ++result.missing;
        result.gate_failed = true;
      }
      result.deltas.push_back(std::move(d));
      continue;
    }
    d.has_current = true;
    d.current = cur->value;
    const double margin =
        std::max(d.tolerance.abs, d.tolerance.rel * std::fabs(d.base));
    const double delta = d.current - d.base;
    if (std::fabs(delta) <= margin) {
      d.verdict = Verdict::kWithinTolerance;
    } else {
      const bool worse = d.direction == Direction::kLowerIsBetter ? delta > 0
                                                                  : delta < 0;
      d.verdict = worse ? Verdict::kRegression : Verdict::kImprovement;
      if (worse && d.gates) {
        ++result.regressions;
        result.gate_failed = true;
      } else if (!worse && d.gates) {
        ++result.improvements;
      }
    }
    result.deltas.push_back(std::move(d));
  }

  for (const Metric& cur : current.metrics()) {
    if (baseline.find(cur.key()) != nullptr) continue;
    MetricDelta d;
    d.key = cur.key();
    d.unit = cur.unit;
    d.direction = cur.direction;
    d.kind = cur.kind;
    d.has_current = true;
    d.current = cur.value;
    d.tolerance = spec.lookup(result.suite, cur);
    d.verdict = Verdict::kNew;
    ++result.added;
    result.deltas.push_back(std::move(d));
  }
  return result;
}

namespace {

std::string fmt_value(double v) {
  // Enough digits to tell exact-match metrics apart without drowning the
  // table in noise.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string fmt_delta(const MetricDelta& d) {
  if (!d.has_base || !d.has_current) return "-";
  const double rel = d.rel_change();
  std::string out = d.delta() >= 0 ? "+" : "";
  out += fmt_value(d.delta());
  if (std::isfinite(rel)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " (%+.2f%%)", rel * 100.0);
    out += buf;
  }
  return out;
}

std::string fmt_tolerance(const Tolerance& t) {
  std::string out;
  if (t.rel > 0) out += "rel " + fmt_value(t.rel * 100.0) + "%";
  if (t.abs > 0) {
    if (!out.empty()) out += ", ";
    out += "abs " + fmt_value(t.abs);
  }
  return out.empty() ? "exact" : out;
}

std::string summary_line(const DiffResult& r) {
  std::ostringstream out;
  out << "suite " << r.suite << ": " << r.deltas.size() << " metrics, "
      << r.regressions << " regression" << (r.regressions == 1 ? "" : "s")
      << ", " << r.missing << " missing, " << r.improvements
      << " improvement" << (r.improvements == 1 ? "" : "s") << ", " << r.added
      << " new — " << (r.gate_failed ? "GATE FAILED" : "gate passed");
  return out.str();
}

}  // namespace

std::string render_text(const DiffResult& result) {
  util::Table table(
      {"metric", "unit", "baseline", "current", "delta", "tolerance", "verdict"});
  for (const MetricDelta& d : result.deltas) {
    std::string verdict = to_string(d.verdict);
    if (!d.gates && d.kind == Kind::kWall) verdict += " (wall, not gated)";
    table.add_row({d.key, d.unit, d.has_base ? fmt_value(d.base) : "-",
                   d.has_current ? fmt_value(d.current) : "-", fmt_delta(d),
                   fmt_tolerance(d.tolerance), verdict});
  }
  return table.to_string() + summary_line(result) + "\n";
}

std::string render_markdown(const DiffResult& result) {
  std::ostringstream out;
  out << "### Bench delta — `" << result.suite << "`\n\n"
      << (result.gate_failed ? "**GATE FAILED**" : "gate passed") << ": "
      << result.regressions << " regressions, " << result.missing
      << " missing, " << result.improvements << " improvements, "
      << result.added << " new\n\n"
      << "| metric | unit | baseline | current | delta | tolerance | verdict |\n"
      << "|---|---|---:|---:|---:|---|---|\n";
  for (const MetricDelta& d : result.deltas) {
    std::string verdict = to_string(d.verdict);
    if (d.verdict == Verdict::kRegression || d.verdict == Verdict::kMissing) {
      verdict = "**" + verdict + "**";
    }
    if (!d.gates && d.kind == Kind::kWall) verdict += " _(wall)_";
    out << "| `" << d.key << "` | " << d.unit << " | "
        << (d.has_base ? fmt_value(d.base) : "-") << " | "
        << (d.has_current ? fmt_value(d.current) : "-") << " | "
        << fmt_delta(d) << " | " << fmt_tolerance(d.tolerance) << " | "
        << verdict << " |\n";
  }
  return out.str();
}

}  // namespace lcmm::bench
