#include "io/text_format.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "resil/fault.hpp"

namespace lcmm::io {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') break;
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

int parse_int(const std::string& s, int line) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ParseError(line, "expected an integer, got '" + s + "'");
  }
}

/// Parses "AxB" (or a single "A" meaning "AxA").
std::pair<int, int> parse_pair(const std::string& s, int line) {
  const std::size_t x = s.find('x');
  if (x == std::string::npos) {
    const int v = parse_int(s, line);
    return {v, v};
  }
  return {parse_int(s.substr(0, x), line), parse_int(s.substr(x + 1), line)};
}

graph::FeatureShape parse_shape(const std::string& s, int line) {
  const std::size_t a = s.find('x');
  const std::size_t b = a == std::string::npos ? a : s.find('x', a + 1);
  if (a == std::string::npos || b == std::string::npos) {
    throw ParseError(line, "expected CxHxW shape, got '" + s + "'");
  }
  const graph::FeatureShape shape{parse_int(s.substr(0, a), line),
                                  parse_int(s.substr(a + 1, b - a - 1), line),
                                  parse_int(s.substr(b + 1), line)};
  // Validate the element product eagerly: dims whose product wraps int64
  // must die here as a ParseError, not masquerade as a tiny tensor deep in
  // the allocator (elems() is overflow-checked via resil::checked_mul).
  (void)shape.elems();
  return shape;
}

/// key=value arguments plus bare flags.
struct Args {
  std::map<std::string, std::string> kv;
  std::vector<std::string> flags;
  int line;

  bool has(const std::string& key) const { return kv.count(key) != 0; }
  bool flag(const std::string& name) const {
    return std::find(flags.begin(), flags.end(), name) != flags.end();
  }
  std::string get(const std::string& key) const {
    const auto it = kv.find(key);
    if (it == kv.end()) {
      throw ParseError(line, "missing required argument '" + key + "='");
    }
    return it->second;
  }
  std::string get_or(const std::string& key, const std::string& fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
};

Args parse_args(const std::vector<std::string>& tokens, std::size_t from,
                int line) {
  Args args;
  args.line = line;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      args.flags.push_back(tokens[i]);
    } else {
      args.kv[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
    }
  }
  return args;
}

class Parser {
 public:
  graph::ComputationGraph run(std::string_view text) {
    std::optional<graph::ComputationGraph> g;
    std::istringstream stream{std::string(text)};
    std::string raw;
    int line = 0;
    while (std::getline(stream, raw)) {
      ++line;
      const std::vector<std::string> tokens = tokenize(raw);
      if (tokens.empty()) continue;
      const std::string& op = tokens[0];
      if (op == "graph") {
        if (g.has_value()) throw ParseError(line, "duplicate 'graph' line");
        if (tokens.size() != 2) throw ParseError(line, "usage: graph <name>");
        g.emplace(tokens[1]);
        continue;
      }
      if (!g.has_value()) {
        throw ParseError(line, "file must start with 'graph <name>'");
      }
      try {
        dispatch(*g, op, tokens, line);
      } catch (const ParseError&) {
        throw;
      } catch (const resil::CompileError& e) {
        // Preserve the typed code (e.g. kSizeOverflow from checked dims).
        throw ParseError(line, e.code(), e.info().message);
      } catch (const std::exception& e) {
        throw ParseError(line, e.what());
      }
    }
    if (!g.has_value()) throw ParseError(line, "empty file");
    g->validate();
    return std::move(*g);
  }

 private:
  void dispatch(graph::ComputationGraph& g, const std::string& op,
                const std::vector<std::string>& tokens, int line) {
    if (op == "stage") {
      if (tokens.size() != 2) throw ParseError(line, "usage: stage <label>");
      g.set_stage(tokens[1]);
      return;
    }
    if (op == "input") {
      if (tokens.size() != 3) {
        throw ParseError(line, "usage: input <name> CxHxW");
      }
      define(tokens[1], g.add_input(tokens[1], parse_shape(tokens[2], line)),
             line);
      return;
    }
    if (tokens.size() < 3) {
      throw ParseError(line, "usage: " + op + " <name> <input> ...");
    }
    const std::string& name = tokens[1];
    if (op == "conv") {
      const Args args = parse_args(tokens, 3, line);
      graph::ConvParams p;
      p.out_channels = parse_int(args.get("out"), line);
      std::tie(p.kernel_h, p.kernel_w) = parse_pair(args.get("kernel"), line);
      p.stride = parse_int(args.get_or("stride", "1"), line);
      std::tie(p.pad_h, p.pad_w) = parse_pair(args.get_or("pad", "0x0"), line);
      p.groups = parse_int(args.get_or("groups", "1"), line);
      graph::ValueId residual = graph::kInvalidValue;
      if (args.has("residual")) residual = lookup(args.get("residual"), line);
      define(name, g.add_conv(name, lookup(tokens[2], line), p, residual), line);
      return;
    }
    if (op == "fc") {
      const Args args = parse_args(tokens, 3, line);
      define(name,
             g.add_fc(name, lookup(tokens[2], line),
                      parse_int(args.get("out"), line)),
             line);
      return;
    }
    if (op == "pool" || op == "gpool") {
      const Args args = parse_args(tokens, 3, line);
      graph::PoolParams p;
      const std::string type = args.get_or("type", "max");
      if (type == "max") {
        p.type = graph::PoolType::kMax;
      } else if (type == "avg") {
        p.type = graph::PoolType::kAvg;
      } else {
        throw ParseError(line, "pool type must be max or avg");
      }
      if (op == "gpool") {
        p.global = true;
      } else {
        p.kernel = parse_int(args.get("kernel"), line);
        p.stride = parse_int(args.get_or("stride", "1"), line);
        p.pad = parse_int(args.get_or("pad", "0"), line);
        p.ceil_mode = args.flag("ceil");
      }
      define(name, g.add_pool(name, lookup(tokens[2], line), p), line);
      return;
    }
    if (op == "concat") {
      std::vector<graph::ValueId> parts;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        parts.push_back(lookup(tokens[i], line));
      }
      define(name, g.add_concat(name, parts), line);
      return;
    }
    throw ParseError(line, "unknown statement '" + op + "'");
  }

  void define(const std::string& name, graph::ValueId value, int line) {
    if (!values_.emplace(name, value).second) {
      throw ParseError(line, "duplicate name '" + name + "'");
    }
  }

  graph::ValueId lookup(const std::string& name, int line) const {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      throw ParseError(line, "unknown value '" + name + "'");
    }
    return it->second;
  }

  std::map<std::string, graph::ValueId> values_;
};

std::string pair_str(int a, int b) {
  return a == b ? std::to_string(a)
                : std::to_string(a) + "x" + std::to_string(b);
}

}  // namespace

graph::ComputationGraph parse_graph(std::string_view text) {
  resil::fault::Scope fault_scope;
  try {
    resil::fault::hit("io.parse");
    return Parser().run(text);
  } catch (const ParseError&) {
    throw;
  } catch (const resil::CompileError& e) {
    // Injected faults and overflow errors surface as ParseError too, so
    // callers have a single failure type for malformed input.
    throw ParseError(0, e.code(), e.info().message);
  }
}

std::string serialize_graph(const graph::ComputationGraph& graph) {
  std::ostringstream os;
  os << "graph " << graph.name() << "\n";

  // Value reference names: inputs by value name, layer outputs by layer
  // name, multi-producer values by an emitted concat statement.
  std::map<graph::ValueId, std::string> ref;
  for (graph::ValueId v : graph.live_values()) {
    if (graph.value(v).is_graph_input()) {
      ref[v] = graph.value(v).name;
      os << "input " << graph.value(v).name << " "
         << graph.value(v).shape.to_string() << "\n";
    }
  }

  std::string stage;
  std::map<graph::ValueId, int> remaining_producers;
  for (graph::LayerId id : graph.topo_order()) {
    const graph::Layer& l = graph.layer(id);
    if (l.stage != stage) {
      stage = l.stage;
      if (!stage.empty()) os << "stage " << stage << "\n";
    }
    const graph::Value& out = graph.value(l.output);
    const bool merged = out.producers.size() > 1;
    if (l.kind == graph::LayerKind::kPool) {
      const graph::PoolParams& p = l.pool;
      if (p.global) {
        os << "gpool " << l.name << " " << ref.at(l.input)
           << (p.type == graph::PoolType::kAvg ? " type=avg" : " type=max")
           << "\n";
      } else {
        os << "pool " << l.name << " " << ref.at(l.input)
           << (p.type == graph::PoolType::kAvg ? " type=avg" : " type=max")
           << " kernel=" << p.kernel << " stride=" << p.stride;
        if (p.pad != 0) os << " pad=" << p.pad;
        if (p.ceil_mode) os << " ceil";
        os << "\n";
      }
    } else {
      const graph::ConvParams& p = l.conv;
      os << "conv " << l.name << " " << ref.at(l.input)
         << " out=" << graph.own_output_shape(id).channels
         << " kernel=" << pair_str(p.kernel_h, p.kernel_w);
      if (p.stride != 1) os << " stride=" << p.stride;
      if (p.pad_h != 0 || p.pad_w != 0) os << " pad=" << pair_str(p.pad_h, p.pad_w);
      if (p.groups != 1) os << " groups=" << p.groups;
      if (l.has_residual()) os << " residual=" << ref.at(l.residual);
      os << "\n";
    }
    if (!merged) {
      ref[l.output] = l.name;
      continue;
    }
    // Multi-producer value: once the last producer is emitted, emit the
    // concat with parts in channel-offset order.
    auto [it, inserted] = remaining_producers.emplace(
        l.output, static_cast<int>(out.producers.size()));
    (void)inserted;
    if (--it->second > 0) continue;
    std::vector<graph::LayerId> producers = out.producers;
    std::sort(producers.begin(), producers.end(),
              [&](graph::LayerId a, graph::LayerId b) {
                return graph.layer(a).output_channel_offset <
                       graph.layer(b).output_channel_offset;
              });
    os << "concat " << out.name;
    for (graph::LayerId p : producers) os << " " << graph.layer(p).name;
    os << "\n";
    ref[l.output] = out.name;
  }
  return os.str();
}

graph::ComputationGraph load_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw resil::CompileError(resil::Code::kIoError, "io.file",
                              "cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_graph(buffer.str());
}

void save_graph_file(const graph::ComputationGraph& graph,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw resil::CompileError(resil::Code::kIoError, "io.file",
                              "cannot open '" + path + "' for writing");
  }
  out << serialize_graph(graph);
}

}  // namespace lcmm::io
