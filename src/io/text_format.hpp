// Text serialization of computation graphs (".lcmm" files).
//
// The format is line oriented; '#' starts a comment. Values are referenced
// by name: a graph input by its declared name, a layer's output by the
// layer name, a concatenated value by the concat statement's name.
//
//   graph tiny
//   input image 3x224x224
//   stage conv1
//   conv conv1 image out=64 kernel=7x7 stride=2 pad=3x3
//   pool pool1 conv1 type=max kernel=3 stride=2 ceil
//   conv left pool1 out=32 kernel=1x1
//   conv right pool1 out=32 kernel=3x3 pad=1x1
//   concat merged left right
//   conv tail merged out=64 kernel=1x1 residual=pool1   # fused shortcut
//   gpool gap tail type=avg
//   fc classifier gap out=1000
//
// serialize() emits this format; parse() accepts it. Round trips preserve
// the graph structure exactly (names, stages, shapes, topology).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "graph/graph.hpp"
#include "resil/error.hpp"

namespace lcmm::io {

/// Error with 1-based line information. Typed (LCMM-E701 by default) and a
/// CompileError, so batch sweeps report parse failures with code + site
/// like any other compile failure.
class ParseError : public resil::CompileError {
 public:
  ParseError(int line, const std::string& message)
      : ParseError(line, resil::Code::kParseError, message) {}
  ParseError(int line, resil::Code code, const std::string& message)
      : resil::CompileError(
            code, "io.parse",
            (line > 0 ? "line " + std::to_string(line) + ": " : "") + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parses the text format. Throws ParseError on malformed input and
/// std::invalid_argument for semantically invalid graphs.
graph::ComputationGraph parse_graph(std::string_view text);

/// Renders `graph` in the text format (stable, parse-compatible).
std::string serialize_graph(const graph::ComputationGraph& graph);

/// File helpers.
graph::ComputationGraph load_graph_file(const std::string& path);
void save_graph_file(const graph::ComputationGraph& graph,
                     const std::string& path);

}  // namespace lcmm::io
