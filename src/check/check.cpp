#include "check/check.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/dnnk.hpp"
#include "core/latency_tables.hpp"
#include "core/liveness.hpp"
#include "hw/tiling.hpp"
#include "obs/stats.hpp"

namespace lcmm::check {

namespace {

using core::AllocationPlan;
using core::TensorEntity;
using core::TensorSource;

std::string entity_label(const TensorEntity& e) {
  return e.name + " (layer " + std::to_string(e.key.layer) + " " +
         core::to_string(e.key.source) + ")";
}

DiagLocation entity_location(const CheckContext& ctx, const TensorEntity& e,
                             int buffer_id = -1) {
  DiagLocation loc;
  loc.layer = e.key.layer;
  if (e.key.layer >= 0 &&
      static_cast<std::size_t>(e.key.layer) < ctx.graph.num_layers()) {
    loc.layer_name = ctx.graph.layer(e.key.layer).name;
    loc.step = ctx.graph.step_of(e.key.layer);
  }
  loc.tensor = e.name;
  loc.buffer_id = buffer_id;
  return loc;
}

DiagLocation layer_location(const CheckContext& ctx, graph::LayerId id) {
  DiagLocation loc;
  loc.layer = id;
  if (id >= 0 && static_cast<std::size_t>(id) < ctx.graph.num_layers()) {
    loc.layer_name = ctx.graph.layer(id).name;
    loc.step = ctx.graph.step_of(id);
  }
  return loc;
}

/// A closed step interval; the checker's recomputed ground truth.
struct StepInterval {
  int def = core::kBeforeExecution;
  int last = 0;
  bool overlaps(const StepInterval& o) const {
    return std::max(def, o.def) <= std::min(last, o.last);
  }
};

/// Re-derives an entity's liveness interval. Features come from the graph
/// (the §3.1 def-use rules); weights keep their prefetch-window interval,
/// whose truthfulness the prefetch and race passes establish separately.
/// Returns false when the entity's source cannot exist on its layer.
bool rederive_interval(const CheckContext& ctx, const TensorEntity& e,
                       StepInterval& out) {
  if (e.key.layer < 0 ||
      static_cast<std::size_t>(e.key.layer) >= ctx.graph.num_layers()) {
    return false;
  }
  const graph::Layer& layer = ctx.graph.layer(e.key.layer);
  const int step = ctx.graph.step_of(layer.id);
  switch (e.key.source) {
    case TensorSource::kInput:
      out = {core::value_def_step(ctx.graph, layer.input), step};
      return true;
    case TensorSource::kResidual:
      if (!layer.has_residual()) return false;
      out = {core::value_def_step(ctx.graph, layer.residual), step};
      return true;
    case TensorSource::kOutput:
      out = {step, core::value_last_use_step(ctx.graph, layer.output)};
      return true;
    case TensorSource::kWeight:
      out = {e.def_step, e.last_use_step};
      return true;
  }
  return false;
}

/// Re-derives an entity's byte footprint from the graph shapes and the
/// design precision (activations scale with the batch, weights do not).
std::int64_t rederive_bytes(const CheckContext& ctx, const TensorEntity& e) {
  const graph::Layer& layer = ctx.graph.layer(e.key.layer);
  const int bpe = hw::bytes_per_elem(ctx.plan.design.precision);
  const int batch = ctx.plan.design.batch;
  switch (e.key.source) {
    case TensorSource::kInput:
      return ctx.graph.value(layer.input).shape.elems() * bpe * batch;
    case TensorSource::kResidual:
      return ctx.graph.value(layer.residual).shape.elems() * bpe * batch;
    case TensorSource::kOutput:
      return ctx.graph.own_output_shape(layer.id).elems() * bpe * batch;
    case TensorSource::kWeight:
      return ctx.graph.layer_weight_elems(layer.id) * bpe;
  }
  return 0;
}

/// The DNNK capacity budget R_sram, re-derived the way the compiler
/// derives it: SRAM left after the tile buffers, scaled by the fraction.
std::int64_t rederive_capacity(const CheckContext& ctx) {
  const hw::TileBufferBytes tiles =
      hw::tile_buffer_bytes(ctx.graph, ctx.plan.design.array,
                            ctx.plan.design.tile, ctx.plan.design.precision);
  const std::int64_t free_bytes =
      ctx.plan.design.device.sram_bytes_total() - tiles.total();
  return static_cast<std::int64_t>(
      static_cast<double>(std::max<std::int64_t>(0, free_bytes)) *
      ctx.options.sram_capacity_fraction);
}

// ---------------------------------------------------------------------------
// Pass: structure — the bookkeeping invariants every other pass relies on.
// ---------------------------------------------------------------------------
void pass_structure(const CheckContext& ctx, CheckReport& report) {
  const AllocationPlan& plan = ctx.plan;
  if (plan.state.num_layers() != ctx.graph.num_layers()) {
    report.add(Code::kPlanShapeMismatch,
               "state covers " + std::to_string(plan.state.num_layers()) +
                   " layers but the graph has " +
                   std::to_string(ctx.graph.num_layers()));
    return;  // nothing else is meaningful
  }
  if (plan.buffer_on_chip.size() != plan.buffers.size()) {
    report.add(Code::kBufferTableMismatch,
               "buffer_on_chip covers " +
                   std::to_string(plan.buffer_on_chip.size()) +
                   " buffers but the plan has " +
                   std::to_string(plan.buffers.size()));
    return;
  }

  std::vector<bool> owned(plan.entities.size(), false);
  for (std::size_t b = 0; b < plan.buffers.size(); ++b) {
    const core::VirtualBuffer& buf = plan.buffers[b];
    std::int64_t max_member = 0;
    for (std::size_t e : buf.members) {
      if (e >= plan.entities.size()) {
        DiagLocation loc;
        loc.buffer_id = buf.id;
        report.add(Code::kMemberOutOfRange,
                   "vbuf" + std::to_string(buf.id) + " references entity " +
                       std::to_string(e) + " out of range",
                   std::move(loc));
        continue;
      }
      const TensorEntity& entity = plan.entities[e];
      max_member = std::max(max_member, entity.bytes);
      if (owned[e]) {
        report.add(Code::kMultipleOwners,
                   entity_label(entity) + " belongs to several buffers",
                   entity_location(ctx, entity, buf.id));
      }
      owned[e] = true;
    }
    if (!buf.members.empty() && buf.bytes < max_member) {
      DiagLocation loc;
      loc.buffer_id = buf.id;
      report.add(Code::kCapacityBelowMember,
                 "vbuf" + std::to_string(buf.id) + " capacity " +
                     std::to_string(buf.bytes) + " below largest member " +
                     std::to_string(max_member),
                 std::move(loc));
    }
  }

  // A weight marked on-chip must have a granted buffer behind it (feature
  // reads may legitimately be granted by output-residency propagation).
  for (std::size_t b = 0; b < plan.buffers.size(); ++b) {
    if (plan.buffer_on_chip[b]) continue;
    for (std::size_t e : plan.buffers[b].members) {
      const TensorEntity& entity = plan.entities[e];
      if (entity.key.source == TensorSource::kWeight &&
          plan.state.is_on(entity.key)) {
        report.add(Code::kSpilledWeightOnChip,
                   entity_label(entity) +
                       " is on-chip but its buffer was spilled",
                   entity_location(ctx, entity, plan.buffers[b].id));
      }
    }
  }

  for (graph::LayerId id : plan.resident_weights) {
    if (id < 0 || static_cast<std::size_t>(id) >= ctx.graph.num_layers()) {
      report.add(Code::kResidentBadLayer,
                 "resident weight references bad layer " + std::to_string(id));
      continue;
    }
    if (!ctx.graph.layer(id).is_conv()) {
      report.add(Code::kResidentNonConv,
                 "resident weight on non-conv layer '" +
                     ctx.graph.layer(id).name + "'",
                 layer_location(ctx, id));
    }
    if (!plan.state.is_on({id, TensorSource::kWeight})) {
      report.add(Code::kResidentNotOnChip,
                 "resident weight of '" + ctx.graph.layer(id).name +
                     "' is not marked on-chip",
                 layer_location(ctx, id));
    }
  }
}

// ---------------------------------------------------------------------------
// Pass: liveness — §3.1 soundness. Intervals are re-derived from the graph,
// then every shared buffer's members are proven pairwise disjoint.
// ---------------------------------------------------------------------------
void pass_liveness(const CheckContext& ctx, CheckReport& report) {
  const AllocationPlan& plan = ctx.plan;
  std::vector<StepInterval> derived(plan.entities.size());
  for (std::size_t i = 0; i < plan.entities.size(); ++i) {
    const TensorEntity& e = plan.entities[i];
    if (!rederive_interval(ctx, e, derived[i])) {
      report.add(Code::kLivenessIntervalMismatch,
                 entity_label(e) + " cannot exist on its layer",
                 entity_location(ctx, e));
      derived[i] = {e.def_step, e.last_use_step};
      continue;  // bytes are not derivable either
    }
    if (e.key.source != TensorSource::kWeight &&
        (derived[i].def != e.def_step || derived[i].last != e.last_use_step)) {
      report.add(Code::kLivenessIntervalMismatch,
                 entity_label(e) + " records lifespan [" +
                     std::to_string(e.def_step) + ", " +
                     std::to_string(e.last_use_step) +
                     "] but the graph derives [" +
                     std::to_string(derived[i].def) + ", " +
                     std::to_string(derived[i].last) + "]",
                 entity_location(ctx, e));
    }
    const std::int64_t bytes = rederive_bytes(ctx, e);
    if (bytes != e.bytes) {
      report.add(Code::kEntitySizeMismatch,
                 entity_label(e) + " records " + std::to_string(e.bytes) +
                     " bytes but the graph derives " + std::to_string(bytes),
                 entity_location(ctx, e));
    }
  }

  for (const core::VirtualBuffer& buf : plan.buffers) {
    for (std::size_t i = 0; i < buf.members.size(); ++i) {
      for (std::size_t j = i + 1; j < buf.members.size(); ++j) {
        const std::size_t a = buf.members[i];
        const std::size_t c = buf.members[j];
        if (!derived[a].overlaps(derived[c])) continue;
        report.add(Code::kLifespanOverlap,
                   "vbuf" + std::to_string(buf.id) + ": members " +
                       entity_label(plan.entities[a]) + " and " +
                       entity_label(plan.entities[c]) +
                       " have overlapping lifespans",
                   entity_location(ctx, plan.entities[a], buf.id));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass: prefetch — §3.2. Every PDG edge must point backwards in the
// execution order (acyclicity) and its recorded window must equal the UMM
// execution time re-accumulated over the window's steps. On-chip weights
// whose window does not cover the load time T miss their deadline.
// ---------------------------------------------------------------------------
void pass_prefetch(const CheckContext& ctx, CheckReport& report) {
  const std::vector<graph::LayerId>& order = ctx.graph.topo_order();
  for (const core::PrefetchEdge& edge : ctx.plan.prefetch.edges()) {
    if (edge.target < 0 ||
        static_cast<std::size_t>(edge.target) >= ctx.graph.num_layers() ||
        !ctx.graph.layer(edge.target).is_conv() ||
        ctx.graph.layer_weight_elems(edge.target) <= 0) {
      report.add(Code::kPrefetchBadTarget,
                 "prefetch edge targets layer " + std::to_string(edge.target) +
                     ", which is not a weighted convolution",
                 layer_location(ctx, edge.target));
      continue;
    }
    const int target_step = ctx.graph.step_of(edge.target);
    if (edge.start_step != core::kBeforeExecution &&
        (edge.start_step < 0 || edge.start_step >= target_step)) {
      report.add(Code::kPdgCycle,
                 "prefetch edge for '" + ctx.graph.layer(edge.target).name +
                     "' starts at step " + std::to_string(edge.start_step) +
                     " which is not before its target step " +
                     std::to_string(target_step),
                 layer_location(ctx, edge.target));
      continue;
    }

    // Re-accumulate the backtrace window from the UMM step latencies.
    const int first =
        edge.start_step == core::kBeforeExecution ? 0 : edge.start_step;
    double window = 0.0;
    for (int s = first; s < target_step; ++s) {
      window += ctx.model.timing(order[static_cast<std::size_t>(s)])
                    .umm_latency();
    }
    const double tol =
        ctx.options.latency_rel_tol * std::max(window, edge.window_seconds) +
        1e-15;
    if (std::abs(window - edge.window_seconds) > tol) {
      report.add(Code::kPrefetchWindowMismatch,
                 "prefetch edge for '" + ctx.graph.layer(edge.target).name +
                     "' records a window of " +
                     std::to_string(edge.window_seconds * 1e6) +
                     " us but the schedule provides " +
                     std::to_string(window * 1e6) + " us",
                 layer_location(ctx, edge.target));
    }
  }

  // Deadline feasibility for every weight the plan actually streams.
  for (const graph::Layer& layer : ctx.graph.layers()) {
    if (!ctx.plan.state.is_on({layer.id, TensorSource::kWeight})) continue;
    if (ctx.plan.weight_is_resident(layer.id)) continue;
    const core::PrefetchEdge* edge = ctx.plan.prefetch.edge_for(layer.id);
    const double load = edge ? edge->load_seconds : 0.0;
    const double window = edge ? edge->window_seconds : 0.0;
    if (!edge) {
      report.add(Code::kPrefetchDeadlineMissed,
                 "on-chip weight of '" + layer.name +
                     "' has no prefetch edge; its whole load stalls",
                 layer_location(ctx, layer.id));
    } else if (window < load) {
      report.add(Code::kPrefetchDeadlineMissed,
                 "prefetch window of '" + layer.name + "' covers " +
                     std::to_string(window * 1e6) + " us of the " +
                     std::to_string(load * 1e6) +
                     " us load; the remainder stalls",
                 layer_location(ctx, layer.id));
    }
  }
}

// ---------------------------------------------------------------------------
// Pass: race — the memory-race detector. DMA weight loads are replayed
// against the simulated timeline; a DMA write into a shared buffer must
// never overlap a compute access (or another DMA write) of a co-resident
// tensor in wall-clock time. This catches double-buffer hazards that step
// bookkeeping alone can hide, e.g. a prefetch edge starting earlier than
// the window its weight entity claims.
// ---------------------------------------------------------------------------
void pass_race(const CheckContext& ctx, CheckReport& report) {
  if (ctx.sim == nullptr) return;
  const std::vector<sim::LayerExecution>& steps = ctx.sim->layers;
  if (steps.empty()) return;

  // When a step begins occupying the timeline (stall included: the stall IS
  // the tail of the DMA transfer, so the window opens before it).
  const auto step_begin = [&](int s) {
    const auto& e = steps[static_cast<std::size_t>(s)];
    return e.start_s - e.stall_s;
  };
  const auto step_end = [&](int s) {
    return steps[static_cast<std::size_t>(s)].end_s;
  };
  const int last_step = static_cast<int>(steps.size()) - 1;
  const auto clamp_step = [&](int s) { return std::clamp(s, 0, last_step); };

  struct Access {
    double lo = 0.0, hi = 0.0;
    bool dma = false;
    const TensorEntity* entity = nullptr;
  };

  for (std::size_t b = 0; b < ctx.plan.buffers.size(); ++b) {
    if (!ctx.plan.buffer_on_chip[b]) continue;
    const core::VirtualBuffer& buf = ctx.plan.buffers[b];

    std::vector<Access> accesses;
    for (std::size_t e : buf.members) {
      const TensorEntity& entity = ctx.plan.entities[e];
      if (entity.key.layer < 0 ||
          static_cast<std::size_t>(entity.key.layer) >=
              ctx.graph.num_layers()) {
        continue;  // reported by the liveness pass
      }
      if (entity.key.source == TensorSource::kWeight) {
        if (!ctx.plan.state.is_on(entity.key)) continue;  // demoted: no DMA
        if (ctx.plan.weight_is_resident(entity.key.layer)) continue;
        const int target = clamp_step(ctx.graph.step_of(entity.key.layer));
        const core::PrefetchEdge* edge =
            ctx.plan.prefetch.edge_for(entity.key.layer);
        const int start = edge ? edge->start_step : core::kBeforeExecution;
        Access dma;
        dma.lo = start == core::kBeforeExecution ? 0.0
                                                 : step_begin(clamp_step(start));
        dma.hi = steps[static_cast<std::size_t>(target)].start_s;
        dma.dma = true;
        dma.entity = &entity;
        accesses.push_back(dma);
        // The compute read of the weight during its target layer.
        accesses.push_back(
            {steps[static_cast<std::size_t>(target)].start_s,
             steps[static_cast<std::size_t>(target)].end_s, false, &entity});
      } else {
        if (!ctx.plan.state.is_on(entity.key) &&
            entity.key.source != TensorSource::kOutput) {
          // Spilled feature read: streamed from DRAM, buffer unused.
          continue;
        }
        const int def = clamp_step(std::max(0, entity.def_step));
        const int last = clamp_step(entity.last_use_step);
        accesses.push_back({entity.def_step == core::kBeforeExecution
                                ? 0.0
                                : step_begin(def),
                            step_end(last), false, &entity});
      }
    }

    for (std::size_t i = 0; i < accesses.size(); ++i) {
      if (!accesses[i].dma) continue;
      for (std::size_t j = 0; j < accesses.size(); ++j) {
        if (i == j) continue;
        if (accesses[i].entity == accesses[j].entity) continue;
        if (accesses[i].dma && accesses[j].dma && j < i) continue;  // dedup
        const double lo = std::max(accesses[i].lo, accesses[j].lo);
        const double hi = std::min(accesses[i].hi, accesses[j].hi);
        if (hi - lo <= 1e-15) continue;
        const Code code =
            accesses[j].dma ? Code::kDmaDmaRace : Code::kDmaComputeRace;
        report.add(
            code,
            std::string(accesses[j].dma ? "DMA loads of "
                                        : "DMA load of ") +
                entity_label(*accesses[i].entity) +
                (accesses[j].dma ? " and " : " overlaps the live range of ") +
                entity_label(*accesses[j].entity) + " in vbuf" +
                std::to_string(buf.id) + " for " +
                std::to_string((hi - lo) * 1e6) + " us",
            entity_location(ctx, *accesses[i].entity, buf.id));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass: capacity — §3.3 accounting. Pool totals, physical placements and
// the DNNK budget are re-derived; per-step live bytes prove no execution
// point oversubscribes the tensor-buffer capacity.
// ---------------------------------------------------------------------------
void pass_capacity(const CheckContext& ctx, CheckReport& report) {
  const AllocationPlan& plan = ctx.plan;
  const hw::FpgaDevice& device = plan.design.device;
  if (plan.bram_used > device.bram36_total) {
    report.add(Code::kBramOversubscribed,
               "BRAM overcommitted: " + std::to_string(plan.bram_used) +
                   " / " + std::to_string(device.bram36_total));
  }
  if (plan.uram_used > device.uram_total) {
    report.add(Code::kUramOversubscribed,
               "URAM overcommitted: " + std::to_string(plan.uram_used) +
                   " / " + std::to_string(device.uram_total));
  }

  std::int64_t placed = 0;
  for (const core::PhysicalBuffer& pb : plan.physical) {
    if (pb.sram.capacity_bytes < pb.buffer.bytes && pb.buffer.id >= 0) {
      DiagLocation loc;
      loc.buffer_id = pb.buffer.id;
      report.add(Code::kPlacementTooSmall,
                 "physical buffer for vbuf" + std::to_string(pb.buffer.id) +
                     " holds " + std::to_string(pb.sram.capacity_bytes) +
                     " bytes, below its virtual size " +
                     std::to_string(pb.buffer.bytes),
                 std::move(loc));
    }
    placed += pb.sram.blocks;
  }
  if (placed > plan.bram_used + plan.uram_used) {
    report.add(Code::kPoolBookkeepingMismatch,
               "physical placements sum to " + std::to_string(placed) +
                   " blocks but the plan records " +
                   std::to_string(plan.bram_used + plan.uram_used));
  }

  // DNNK budget: the granted virtual buffers, quantized the way the DP
  // quantizes them, must fit the re-derived R_sram.
  const std::int64_t budget = rederive_capacity(ctx);
  const std::int64_t granularity = ctx.options.alloc.granularity_bytes;
  std::int64_t granted = 0;
  for (std::size_t b = 0; b < plan.buffers.size(); ++b) {
    if (!plan.buffer_on_chip[b]) continue;
    granted +=
        core::quantized_units(plan.buffers[b].bytes, ctx.options.alloc) *
        granularity;
  }
  if (granted > budget) {
    report.add(Code::kDnnkCapacityExceeded,
               "on-chip buffers need " + std::to_string(granted) +
                   " bytes (quantized) but R_sram is " +
                   std::to_string(budget));
  }

  // Per-step accounting: what is actually live at each execution point.
  const int steps = static_cast<int>(ctx.graph.num_layers());
  std::vector<std::int64_t> live(static_cast<std::size_t>(steps), 0);
  for (std::size_t b = 0; b < plan.buffers.size(); ++b) {
    if (!plan.buffer_on_chip[b]) continue;
    const core::VirtualBuffer& buf = plan.buffers[b];
    int lo = steps, hi = -1;
    for (std::size_t e : buf.members) {
      StepInterval iv;
      if (!rederive_interval(ctx, plan.entities[e], iv)) continue;
      lo = std::min(lo, std::max(0, iv.def));
      hi = std::max(hi, iv.last);
    }
    const std::int64_t bytes =
        core::quantized_units(buf.bytes, ctx.options.alloc) * granularity;
    for (int s = std::max(0, lo); s <= std::min(hi, steps - 1); ++s) {
      live[static_cast<std::size_t>(s)] += bytes;
    }
  }
  int peak_step = -1;
  std::int64_t peak = 0;
  for (int s = 0; s < steps; ++s) {
    if (live[static_cast<std::size_t>(s)] > peak) {
      peak = live[static_cast<std::size_t>(s)];
      peak_step = s;
    }
  }
  if (peak > budget && peak_step >= 0) {
    DiagLocation loc =
        layer_location(ctx, ctx.graph.topo_order()[static_cast<std::size_t>(
                                peak_step)]);
    report.add(Code::kStepCapacityExceeded,
               "live on-chip tensors need " + std::to_string(peak) +
                   " bytes at step " + std::to_string(peak_step) +
                   " but R_sram is " + std::to_string(budget),
               std::move(loc));
  }
}

// ---------------------------------------------------------------------------
// Pass: dnnk — §3.3 value model consistency. The recorded latencies must
// agree with Eq. 1 re-evaluated from the performance model, and every
// granted tensor's pivot-compensated gain is reported when it is currently
// zero (informational: its pivot is still off-chip).
// ---------------------------------------------------------------------------
void pass_dnnk(const CheckContext& ctx, CheckReport& report) {
  const AllocationPlan& plan = ctx.plan;
  const double umm = ctx.model.umm_total_latency();
  const double tol_umm =
      ctx.options.latency_rel_tol * std::max(umm, plan.umm_latency_s) + 1e-15;
  if (std::abs(plan.umm_latency_s - umm) > tol_umm) {
    report.add(Code::kBaselineLatencyMismatch,
               "plan records a UMM baseline of " +
                   std::to_string(plan.umm_latency_s * 1e3) +
                   " ms but Eq. 1 derives " + std::to_string(umm * 1e3) +
                   " ms");
  }

  const double bound = ctx.tables.total_latency(plan.state);
  if (plan.est_latency_s < bound * (1.0 - ctx.options.latency_rel_tol)) {
    report.add(Code::kLatencyBelowBound,
               "plan estimates " + std::to_string(plan.est_latency_s * 1e3) +
                   " ms, below the Eq. 1 bound " + std::to_string(bound * 1e3) +
                   " ms of its own on-chip state");
  }

  for (const graph::Layer& layer : ctx.graph.layers()) {
    const std::uint8_t mask = plan.state.layer_mask(layer.id);
    if (mask == 0) continue;
    for (int s = 0; s < core::kNumSources; ++s) {
      const std::uint8_t bit = static_cast<std::uint8_t>(1u << s);
      if (!(mask & bit)) continue;
      const double gain =
          ctx.tables.node_latency(layer.id,
                                  static_cast<std::uint8_t>(mask & ~bit)) -
          ctx.tables.node_latency(layer.id, mask);
      if (gain <= 0.0) {
        DiagLocation loc = layer_location(ctx, layer.id);
        loc.tensor = layer.name + "." +
                     core::to_string(static_cast<TensorSource>(s));
        report.add(Code::kZeroGainGrant,
                   "on-chip " + core::to_string(static_cast<TensorSource>(s)) +
                       " tensor of '" + layer.name +
                       "' currently reduces no latency (pivot off-chip)",
                   std::move(loc));
      }
    }
  }
}

constexpr CheckPass kPasses[] = {
    {"structure", "plan/graph bookkeeping invariants", pass_structure},
    {"liveness", "re-derived def-use intervals and buffer sharing (3.1)",
     pass_liveness},
    {"prefetch", "PDG acyclicity and backtrace-window feasibility (3.2)",
     pass_prefetch},
    {"race", "DMA/compute overlap on shared buffers (double buffering)",
     pass_race},
    {"capacity", "SRAM pools and the DNNK capacity budget (3.3)",
     pass_capacity},
    {"dnnk", "Eq. 1 consistency of the granted allocation state (3.3)",
     pass_dnnk},
};

/// Structure findings after which other passes would index out of bounds.
bool fatally_malformed(const CheckReport& report) {
  return report.has(Code::kPlanShapeMismatch) ||
         report.has(Code::kBufferTableMismatch) ||
         report.has(Code::kMemberOutOfRange);
}

/// Runs one pass under an obs span, counting its findings.
void run_pass(const CheckPass& pass, const CheckContext& ctx,
              CheckReport& report) {
  obs::CompileStats* sink = obs::current();
  const int span =
      sink ? sink->begin_span(std::string("check_") + pass.name) : -1;
  const std::size_t before = report.diagnostics().size();
  report.set_pass(pass.name);
  pass.run(ctx, report);
  if (sink) {
    std::int64_t errors = 0, warnings = 0, notes = 0;
    for (std::size_t i = before; i < report.diagnostics().size(); ++i) {
      switch (report.diagnostics()[i].severity) {
        case Severity::kError: ++errors; break;
        case Severity::kWarning: ++warnings; break;
        case Severity::kNote: ++notes; break;
      }
    }
    if (errors) sink->count("errors", errors);
    if (warnings) sink->count("warnings", warnings);
    if (notes) sink->count("notes", notes);
    sink->end_span(span);
  }
}

}  // namespace

std::span<const CheckPass> check_passes() { return kPasses; }

CheckReport run_checks(const graph::ComputationGraph& graph,
                       const core::AllocationPlan& plan,
                       const CheckOptions& options) {
  obs::ScopedSpan outer("check");
  CheckReport report;

  // The structure pass gates everything: a malformed plan cannot even be
  // indexed safely, let alone simulated.
  hw::PerfModel model(graph, plan.design);
  core::LatencyTables tables(model);
  CheckContext ctx{graph, plan, options, model, tables, nullptr};
  run_pass(kPasses[0], ctx, report);
  if (fatally_malformed(report)) return report;

  const sim::SimResult sim = sim::simulate(graph, plan);
  ctx.sim = &sim;
  for (std::size_t p = 1; p < std::size(kPasses); ++p) {
    run_pass(kPasses[p], ctx, report);
  }
  return report;
}

}  // namespace lcmm::check
