// Static plan verification (lcmm::check): independently re-checks the
// compile-time claims an AllocationPlan rests on, instead of trusting the
// allocator's own bookkeeping.
//
// A registry of analysis passes each recomputes its ground truth from the
// computation graph and the performance model:
//   structure — plan/graph bookkeeping invariants (ownership, residency);
//   liveness  — re-derives def-use intervals (§3.1) and proves every shared
//               buffer's members pairwise disjoint;
//   prefetch  — PDG acyclicity and §3.2 backtrace-window feasibility
//               (window re-accumulated from UMM step latencies vs load T);
//   race      — DMA weight loads replayed against the simulated timeline;
//               flags any DMA write overlapping a compute access of a
//               co-resident tensor (double-buffer hazards);
//   capacity  — SRAM pool totals, physical placements and per-step live
//               bytes against the re-derived DNNK budget (§3.3);
//   dnnk      — Eq. 1 consistency of the recorded latencies and the
//               pivot-compensation gain of every granted tensor (§3.3).
//
// Passes report typed Diagnostics (check/diagnostics.hpp) with stable
// codes; emitters (check/emit.hpp) render them as text, JSON or SARIF.
#pragma once

#include <functional>
#include <span>
#include <string>

#include "check/diagnostics.hpp"
#include "core/lcmm.hpp"
#include "sim/timeline.hpp"

namespace lcmm::check {

struct CheckOptions {
  /// Warnings gate the result too (see CheckReport::fails).
  bool strict = false;
  /// Mirrors LcmmOptions::sram_capacity_fraction — the checker re-derives
  /// the DNNK budget from it; pass the value the plan was compiled with.
  double sram_capacity_fraction = 0.90;
  /// DP quantization the capacity accounting replays (LcmmOptions::alloc).
  core::AllocatorOptions alloc;
  /// Relative tolerance for floating-point latency comparisons.
  double latency_rel_tol = 1e-6;

  /// From LcmmOptions, so the checker knows which plan to expect.
  static CheckOptions from(const core::LcmmOptions& lcmm, bool strict = false) {
    CheckOptions o;
    o.strict = strict;
    o.sram_capacity_fraction = lcmm.sram_capacity_fraction;
    o.alloc = lcmm.alloc;
    return o;
  }
};

/// Everything a pass may read. The model, tables and simulation are built
/// by run_checks from the plan's own design, NOT taken from compiler
/// internals — the whole point is an independent recomputation.
struct CheckContext {
  const graph::ComputationGraph& graph;
  const core::AllocationPlan& plan;
  const CheckOptions& options;
  const hw::PerfModel& model;
  const core::LatencyTables& tables;
  /// Simulated timeline of the plan (the race detector's clock). Null when
  /// the structure pass already failed fatally.
  const sim::SimResult* sim = nullptr;
};

struct CheckPass {
  const char* name;
  const char* description;
  void (*run)(const CheckContext&, CheckReport&);
};

/// The registered passes in execution order (structure always first).
std::span<const CheckPass> check_passes();

/// Runs every registered pass over `plan` and returns the merged report.
/// Structure violations that make the plan unreadable (shape mismatches)
/// stop the run early — later passes would index out of bounds.
CheckReport run_checks(const graph::ComputationGraph& graph,
                       const core::AllocationPlan& plan,
                       const CheckOptions& options = {});

}  // namespace lcmm::check
