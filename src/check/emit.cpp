#include "check/emit.hpp"

#include <map>
#include <sstream>

namespace lcmm::check {

namespace {

const char* sarif_level(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "none";
}

}  // namespace

std::string RunLabel::describe() const {
  std::string out = network;
  if (!design.empty()) out += (out.empty() ? "" : "/") + design;
  if (!precision.empty()) out += (out.empty() ? "" : "/") + precision;
  return out;
}

std::string to_text(const CheckReport& report, const RunLabel& label) {
  std::ostringstream os;
  const std::string prefix =
      label.describe().empty() ? "" : label.describe() + ": ";
  for (const Diagnostic& d : report.diagnostics()) {
    os << prefix << code_id(d.code) << " " << to_string(d.severity) << " ["
       << d.pass << "]: " << d.message;
    const std::string where = d.location.describe();
    if (!where.empty()) os << " (" << where << ")";
    os << "\n";
  }
  os << prefix << "check: ";
  if (report.diagnostics().empty()) {
    os << "clean\n";
  } else {
    os << report.num_errors() << " error(s), " << report.num_warnings()
       << " warning(s), " << report.count(Severity::kNote) << " note(s)\n";
  }
  return os.str();
}

util::Json to_json(const CheckReport& report, const RunLabel& label) {
  util::Json out = util::Json::object();
  out["schema"] = "lcmm-check-v1";
  if (!label.network.empty()) out["network"] = label.network;
  if (!label.design.empty()) out["design"] = label.design;
  if (!label.precision.empty()) out["precision"] = label.precision;
  out["errors"] = report.num_errors();
  out["warnings"] = report.num_warnings();
  out["notes"] = report.count(Severity::kNote);
  util::Json diags = util::Json::array();
  for (const Diagnostic& d : report.diagnostics()) {
    util::Json j = util::Json::object();
    j["code"] = code_id(d.code);
    j["rule"] = code_name(d.code);
    j["severity"] = to_string(d.severity);
    j["pass"] = d.pass;
    j["message"] = d.message;
    if (d.location.layer != graph::kInvalidLayer) {
      j["layer"] = static_cast<std::int64_t>(d.location.layer);
    }
    if (!d.location.layer_name.empty()) {
      j["layer_name"] = d.location.layer_name;
    }
    if (!d.location.tensor.empty()) j["tensor"] = d.location.tensor;
    if (d.location.step >= 0) j["step"] = d.location.step;
    if (d.location.buffer_id >= 0) j["buffer"] = d.location.buffer_id;
    diags.push(std::move(j));
  }
  out["diagnostics"] = std::move(diags);
  return out;
}

util::Json to_sarif(std::span<const CheckedPlan> runs) {
  util::Json driver = util::Json::object();
  driver["name"] = "lcmm_check";
  driver["informationUri"] =
      "https://github.com/lcmm/lcmm/blob/main/docs/diagnostics.md";
  driver["version"] = "1.0.0";

  util::Json rules = util::Json::array();
  std::map<std::string, std::int64_t> rule_index;
  for (Code code : all_codes()) {
    util::Json rule = util::Json::object();
    rule["id"] = code_id(code);
    rule["name"] = code_name(code);
    util::Json text = util::Json::object();
    text["text"] = code_summary(code);
    rule["shortDescription"] = std::move(text);
    util::Json config = util::Json::object();
    config["level"] = sarif_level(default_severity(code));
    rule["defaultConfiguration"] = std::move(config);
    if (*code_paper_section(code) != '\0') {
      util::Json props = util::Json::object();
      props["paperSection"] = code_paper_section(code);
      rule["properties"] = std::move(props);
    }
    rule_index[code_id(code)] = static_cast<std::int64_t>(rules.size());
    rules.push(std::move(rule));
  }
  driver["rules"] = std::move(rules);

  util::Json results = util::Json::array();
  for (const CheckedPlan& run : runs) {
    for (const Diagnostic& d : run.report.diagnostics()) {
      util::Json result = util::Json::object();
      result["ruleId"] = code_id(d.code);
      result["ruleIndex"] = rule_index.at(code_id(d.code));
      result["level"] = sarif_level(d.severity);
      util::Json message = util::Json::object();
      message["text"] = run.label.describe().empty()
                            ? d.message
                            : run.label.describe() + ": " + d.message;
      result["message"] = std::move(message);

      // Plans have no source files; locations are logical (model/tensor)
      // with a synthetic artifact URI so viewers have something to group by.
      util::Json logical = util::Json::object();
      std::string fq = run.label.network.empty() ? "plan" : run.label.network;
      if (!d.location.layer_name.empty()) fq += "/" + d.location.layer_name;
      if (!d.location.tensor.empty()) fq += "/" + d.location.tensor;
      logical["fullyQualifiedName"] = fq;
      logical["kind"] = "member";
      util::Json logicals = util::Json::array();
      logicals.push(std::move(logical));
      util::Json artifact = util::Json::object();
      artifact["uri"] =
          "model/" + (run.label.network.empty() ? "plan" : run.label.network);
      util::Json physical = util::Json::object();
      physical["artifactLocation"] = std::move(artifact);
      util::Json location = util::Json::object();
      location["logicalLocations"] = std::move(logicals);
      location["physicalLocation"] = std::move(physical);
      util::Json locations = util::Json::array();
      locations.push(std::move(location));
      result["locations"] = std::move(locations);

      util::Json props = util::Json::object();
      props["pass"] = d.pass;
      if (!run.label.network.empty()) props["network"] = run.label.network;
      if (!run.label.design.empty()) props["design"] = run.label.design;
      if (!run.label.precision.empty()) {
        props["precision"] = run.label.precision;
      }
      if (d.location.step >= 0) props["step"] = d.location.step;
      if (d.location.buffer_id >= 0) props["buffer"] = d.location.buffer_id;
      result["properties"] = std::move(props);
      results.push(std::move(result));
    }
  }

  util::Json tool = util::Json::object();
  tool["driver"] = std::move(driver);
  util::Json run = util::Json::object();
  run["tool"] = std::move(tool);
  run["columnKind"] = "utf16CodeUnits";
  run["results"] = std::move(results);
  util::Json out = util::Json::object();
  out["$schema"] =
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
      "sarif-schema-2.1.0.json";
  out["version"] = "2.1.0";
  util::Json runs_arr = util::Json::array();
  runs_arr.push(std::move(run));
  out["runs"] = std::move(runs_arr);
  return out;
}

}  // namespace lcmm::check
