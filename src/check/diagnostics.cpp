#include "check/diagnostics.hpp"

#include <algorithm>
#include <stdexcept>

namespace lcmm::check {

namespace {

struct CodeInfo {
  Code code;
  Severity severity;
  const char* name;
  const char* summary;
  const char* paper;
};

// One row per code, in id order. The table is the single source of truth
// for ids, names, severities and the docs/SARIF rule metadata.
constexpr CodeInfo kCodeTable[] = {
    {Code::kPlanShapeMismatch, Severity::kError, "plan-shape-mismatch",
     "The plan's on-chip state covers a different number of layers than the "
     "graph it is checked against.",
     ""},
    {Code::kBufferTableMismatch, Severity::kError, "buffer-table-mismatch",
     "The buffer_on_chip table and the virtual buffer list disagree in size.",
     ""},
    {Code::kMemberOutOfRange, Severity::kError, "member-out-of-range",
     "A virtual buffer references a tensor entity index outside the plan's "
     "entity table.",
     ""},
    {Code::kMultipleOwners, Severity::kError, "multiple-owners",
     "A tensor entity belongs to several virtual buffers.", ""},
    {Code::kCapacityBelowMember, Severity::kError, "capacity-below-member",
     "A virtual buffer's capacity is below its largest member tensor.", ""},
    {Code::kSpilledWeightOnChip, Severity::kError, "spilled-weight-on-chip",
     "A weight tensor is marked on-chip although its virtual buffer was "
     "spilled to DRAM.",
     ""},
    {Code::kResidentBadLayer, Severity::kError, "resident-bad-layer",
     "A resident weight references a layer id outside the graph.", ""},
    {Code::kResidentNonConv, Severity::kError, "resident-non-conv",
     "A resident weight is attached to a non-convolution layer.", ""},
    {Code::kResidentNotOnChip, Severity::kError, "resident-not-on-chip",
     "A resident weight's tensor is not marked on-chip in the plan state.",
     ""},
    {Code::kLivenessIntervalMismatch, Severity::kError,
     "liveness-interval-mismatch",
     "A feature entity's recorded liveness interval disagrees with the "
     "def-use interval re-derived from the computation graph.",
     "3.1"},
    {Code::kLifespanOverlap, Severity::kError, "lifespan-overlap",
     "Two tensors sharing a virtual buffer have overlapping lifespans, so "
     "one would corrupt the other.",
     "3.1"},
    {Code::kEntitySizeMismatch, Severity::kError, "entity-size-mismatch",
     "A tensor entity's byte size disagrees with the footprint re-derived "
     "from the graph shapes and design precision.",
     "3.1"},
    {Code::kPdgCycle, Severity::kError, "pdg-cycle",
     "A prefetching dependence edge does not point backwards in the "
     "execution order, which would make the PDG cyclic.",
     "3.2"},
    {Code::kPrefetchWindowMismatch, Severity::kError,
     "prefetch-window-mismatch",
     "A prefetch edge's recorded backtrace window disagrees with the UMM "
     "execution time re-accumulated over the window's steps.",
     "3.2"},
    {Code::kPrefetchBadTarget, Severity::kError, "prefetch-bad-target",
     "A prefetch edge targets a layer that is not a weighted convolution.",
     "3.2"},
    {Code::kPrefetchDeadlineMissed, Severity::kWarning,
     "prefetch-deadline-missed",
     "An on-chip weight's backtrace window does not cover its load time T; "
     "the layer will stall on the remainder.",
     "3.2"},
    {Code::kDmaComputeRace, Severity::kError, "dma-compute-race",
     "A DMA weight load into a shared buffer overlaps in time with a "
     "compute access of a co-resident tensor (double-buffer hazard).",
     "3.2"},
    {Code::kDmaDmaRace, Severity::kError, "dma-dma-race",
     "Two DMA weight loads into the same buffer overlap in time.", "3.2"},
    {Code::kBramOversubscribed, Severity::kError, "bram-oversubscribed",
     "The plan uses more BRAM36 blocks than the device provides.", "3.3"},
    {Code::kUramOversubscribed, Severity::kError, "uram-oversubscribed",
     "The plan uses more URAM blocks than the device provides.", "3.3"},
    {Code::kPoolBookkeepingMismatch, Severity::kError,
     "pool-bookkeeping-mismatch",
     "The physical placements sum to more blocks than the plan's recorded "
     "pool usage.",
     "3.3"},
    {Code::kDnnkCapacityExceeded, Severity::kError, "dnnk-capacity-exceeded",
     "The on-chip virtual buffers oversubscribe the DNNK capacity budget "
     "R_sram re-derived from the device and capacity fraction.",
     "3.3"},
    {Code::kPlacementTooSmall, Severity::kError, "placement-too-small",
     "A physical SRAM placement is smaller than its virtual buffer.", "3.3"},
    {Code::kStepCapacityExceeded, Severity::kError, "step-capacity-exceeded",
     "The tensors live at one execution step oversubscribe the tensor-buffer "
     "capacity.",
     "3.3"},
    {Code::kBaselineLatencyMismatch, Severity::kError,
     "baseline-latency-mismatch",
     "The plan's recorded UMM baseline latency disagrees with the Eq. 1 "
     "total re-derived from the performance model.",
     "3.3"},
    {Code::kLatencyBelowBound, Severity::kError, "latency-below-bound",
     "The plan's estimated latency is below the Eq. 1 lower bound of its "
     "own on-chip state — it claims an impossible speedup.",
     "3.3"},
    {Code::kZeroGainGrant, Severity::kNote, "zero-gain-grant",
     "A granted on-chip tensor currently contributes no latency reduction "
     "(its pivot is still off-chip).",
     "3.3"},
};

const CodeInfo& info(Code code) {
  for (const CodeInfo& row : kCodeTable) {
    if (row.code == code) return row;
  }
  throw std::logic_error("unknown diagnostic code " +
                         std::to_string(static_cast<int>(code)));
}

}  // namespace

std::string to_string(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const std::vector<Code>& all_codes() {
  static const std::vector<Code> codes = [] {
    std::vector<Code> out;
    for (const CodeInfo& row : kCodeTable) out.push_back(row.code);
    return out;
  }();
  return codes;
}

std::string code_id(Code code) {
  const char letter = default_severity(code) == Severity::kError ? 'E'
                      : default_severity(code) == Severity::kWarning ? 'W'
                                                                     : 'N';
  const int number = static_cast<int>(code);
  std::string id = "LCMM-";
  id += letter;
  if (number < 100) id += '0';
  if (number < 10) id += '0';
  return id + std::to_string(number);
}

Severity default_severity(Code code) { return info(code).severity; }
const char* code_name(Code code) { return info(code).name; }
const char* code_summary(Code code) { return info(code).summary; }
const char* code_paper_section(Code code) { return info(code).paper; }

std::string DiagLocation::describe() const {
  std::string out;
  if (layer != graph::kInvalidLayer) {
    out += "layer ";
    if (!layer_name.empty()) {
      out += "'" + layer_name + "'";
    } else {
      out += std::to_string(layer);
    }
  }
  if (!tensor.empty()) {
    if (!out.empty()) out += " ";
    out += "tensor " + tensor;
  }
  if (step >= 0) {
    if (!out.empty()) out += " ";
    out += "step " + std::to_string(step);
  }
  if (buffer_id >= 0) {
    if (!out.empty()) out += ", ";
    out += "vbuf" + std::to_string(buffer_id);
  }
  return out;
}

void CheckReport::add(Code code, std::string message, DiagLocation location) {
  add(code, default_severity(code), std::move(message), std::move(location));
}

void CheckReport::add(Code code, Severity severity, std::string message,
                      DiagLocation location) {
  diagnostics_.push_back(Diagnostic{code, severity, pass_, std::move(message),
                                    std::move(location)});
}

int CheckReport::count(Severity s) const {
  return static_cast<int>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

bool CheckReport::has(Code code) const {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [code](const Diagnostic& d) { return d.code == code; });
}

bool CheckReport::fails(bool strict) const {
  return num_errors() > 0 || (strict && num_warnings() > 0);
}

}  // namespace lcmm::check
