// Diagnostic emitters: render a CheckReport as human-readable text, as a
// machine-readable JSON document, or as SARIF 2.1.0 so CI can surface the
// findings as code-scanning annotations.
#pragma once

#include <span>
#include <string>

#include "check/diagnostics.hpp"
#include "util/json.hpp"

namespace lcmm::check {

/// Which compiled plan a report belongs to (emitted alongside findings so
/// a multi-run document stays attributable).
struct RunLabel {
  std::string network;
  std::string design;     // "umm" / "lcmm"
  std::string precision;  // "int8" / "int16" / "fp32"

  /// "googlenet/lcmm/int16" — empty when nothing is set.
  std::string describe() const;
};

/// A report plus its provenance, for the multi-run emitters.
struct CheckedPlan {
  RunLabel label;
  CheckReport report;
};

/// One line per diagnostic plus a summary line. Notes are included; the
/// summary counts by severity.
std::string to_text(const CheckReport& report, const RunLabel& label = {});

/// "lcmm-check-v1" JSON: label, severity counts and one object per
/// diagnostic with the stable code, rule name, pass and location fields.
util::Json to_json(const CheckReport& report, const RunLabel& label = {});

/// SARIF 2.1.0 with the full rule table (every stable code) and one result
/// per diagnostic across all runs; locations are logical (model/tensor).
util::Json to_sarif(std::span<const CheckedPlan> runs);

}  // namespace lcmm::check
