// Typed diagnostics for the static plan-verification subsystem (lcmm::check).
//
// Every rule the checker enforces has a stable code ("LCMM-E102") that
// tools, tests and CI gates key on; the human-readable message may evolve
// freely but the code, its default severity and its meaning never change.
// Codes are grouped by analysis pass in blocks of one hundred:
//   E0xx structure     — plan/graph bookkeeping invariants
//   E1xx liveness      — re-derived def-use intervals and buffer sharing
//   E2xx prefetch      — PDG shape and §3.2 backtrace-window feasibility
//   E3xx race          — DMA/compute overlap on shared physical buffers
//   E4xx capacity      — SRAM pools and the DNNK capacity budget (§3.3)
//   E5xx dnnk          — latency-table consistency of the granted state
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lcmm::check {

enum class Severity : std::uint8_t { kNote = 0, kWarning = 1, kError = 2 };

std::string to_string(Severity s);

/// Stable diagnostic codes. Enumerator values are part of the contract:
/// never renumber, never reuse a retired value.
enum class Code : std::uint16_t {
  // structure
  kPlanShapeMismatch = 1,       // LCMM-E001
  kBufferTableMismatch = 2,     // LCMM-E002
  kMemberOutOfRange = 3,        // LCMM-E003
  kMultipleOwners = 4,          // LCMM-E004
  kCapacityBelowMember = 5,     // LCMM-E005
  kSpilledWeightOnChip = 6,     // LCMM-E006
  kResidentBadLayer = 7,        // LCMM-E007
  kResidentNonConv = 8,         // LCMM-E008
  kResidentNotOnChip = 9,       // LCMM-E009
  // liveness
  kLivenessIntervalMismatch = 101,  // LCMM-E101
  kLifespanOverlap = 102,           // LCMM-E102
  kEntitySizeMismatch = 103,        // LCMM-E103
  // prefetch
  kPdgCycle = 201,               // LCMM-E201
  kPrefetchWindowMismatch = 202, // LCMM-E202
  kPrefetchBadTarget = 203,      // LCMM-E203
  kPrefetchDeadlineMissed = 204, // LCMM-W204 (warning)
  // race
  kDmaComputeRace = 301,  // LCMM-E301
  kDmaDmaRace = 302,      // LCMM-E302
  // capacity
  kBramOversubscribed = 401,      // LCMM-E401
  kUramOversubscribed = 402,      // LCMM-E402
  kPoolBookkeepingMismatch = 403, // LCMM-E403
  kDnnkCapacityExceeded = 404,    // LCMM-E404
  kPlacementTooSmall = 405,       // LCMM-E405
  kStepCapacityExceeded = 406,    // LCMM-E406
  // dnnk
  kBaselineLatencyMismatch = 501, // LCMM-E501
  kLatencyBelowBound = 502,       // LCMM-E502
  kZeroGainGrant = 503,           // LCMM-N503 (note)
};

/// All codes, in id order (for emitting SARIF rule tables and docs).
const std::vector<Code>& all_codes();

/// "LCMM-E102" — the stable identifier (severity letter + number).
std::string code_id(Code code);
/// The severity a diagnostic with this code carries by default.
Severity default_severity(Code code);
/// Short kebab-case rule name ("lifespan-overlap"), stable like the id.
const char* code_name(Code code);
/// One-line rule description for rule tables (SARIF, docs).
const char* code_summary(Code code);
/// The paper section the rule enforces ("" when purely structural).
const char* code_paper_section(Code code);

/// Where in the plan/graph a diagnostic points. Fields default to "not
/// applicable"; emitters print only what is set.
struct DiagLocation {
  graph::LayerId layer = graph::kInvalidLayer;
  std::string layer_name;
  /// Tensor entity label ("conv3x3.wt") when the finding is per-tensor.
  std::string tensor;
  /// Execution step (position in topo order), -1 when not applicable.
  int step = -1;
  /// Virtual buffer id, -1 when not applicable.
  int buffer_id = -1;

  /// "layer 'conv3x3' step 12, vbuf3" — empty when nothing is set.
  std::string describe() const;
};

struct Diagnostic {
  Code code;
  Severity severity;
  /// Name of the analysis pass that produced the finding.
  std::string pass;
  std::string message;
  DiagLocation location;
};

/// The result of a checker run over one plan.
class CheckReport {
 public:
  void add(Code code, std::string message, DiagLocation location = {});
  /// Adds with an explicit severity override (strict-mode upgrades are the
  /// emit layer's job; this is for passes that downgrade context-dependent
  /// findings).
  void add(Code code, Severity severity, std::string message,
           DiagLocation location = {});

  /// Pass label attached to subsequently added diagnostics.
  void set_pass(std::string pass) { pass_ = std::move(pass); }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  int count(Severity s) const;
  int num_errors() const { return count(Severity::kError); }
  int num_warnings() const { return count(Severity::kWarning); }
  bool has(Code code) const;
  /// True when the report gates a build: any error, or any warning when
  /// `strict`.
  bool fails(bool strict) const;

 private:
  std::string pass_;
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace lcmm::check
