// Instrumentation macros for the compiler passes.
//
// All of them compile down to a load of the global sink pointer and a
// branch when collection is disabled (no StatsSession alive), so hot loops
// in the passes can stay instrumented unconditionally:
//
//   void my_pass(...) {
//     LCMM_SPAN("my_pass");                 // RAII wall-clock span
//     for (...) LCMM_COUNT("cells", 1);     // counter on the open span
//     LCMM_GAUGE("capacity_bytes", cap);    // last-write-wins gauge
//     LCMM_DECIDE(name, bytes, false, "capacity");  // allocation decision
//   }
#pragma once

#include "obs/stats.hpp"

#define LCMM_OBS_CONCAT_INNER(a, b) a##b
#define LCMM_OBS_CONCAT(a, b) LCMM_OBS_CONCAT_INNER(a, b)

/// Opens a named span for the rest of the enclosing scope.
#define LCMM_SPAN(name) \
  ::lcmm::obs::ScopedSpan LCMM_OBS_CONCAT(lcmm_obs_span_, __LINE__)(name)

/// Adds `delta` to counter `name` on the innermost open span.
#define LCMM_COUNT(name, delta)                                \
  do {                                                         \
    if (::lcmm::obs::CompileStats* lcmm_obs_sink_ =            \
            ::lcmm::obs::current()) {                          \
      lcmm_obs_sink_->count((name), (delta));                  \
    }                                                          \
  } while (0)

/// Sets gauge `name` on the innermost open span.
#define LCMM_GAUGE(name, value)                                \
  do {                                                         \
    if (::lcmm::obs::CompileStats* lcmm_obs_sink_ =            \
            ::lcmm::obs::current()) {                          \
      lcmm_obs_sink_->gauge((name), (value));                  \
    }                                                          \
  } while (0)

/// Records an allocation decision (subject, bytes, accepted, reason).
#define LCMM_DECIDE(subject, bytes, accepted, reason)          \
  do {                                                         \
    if (::lcmm::obs::CompileStats* lcmm_obs_sink_ =            \
            ::lcmm::obs::current()) {                          \
      lcmm_obs_sink_->decide((subject), (bytes), (accepted),   \
                             (reason));                        \
    }                                                          \
  } while (0)
