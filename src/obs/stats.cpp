#include "obs/stats.hpp"

#include <stdexcept>

namespace lcmm::obs {

namespace {
thread_local CompileStats* g_current = nullptr;
}  // namespace

CompileStats* current() { return g_current; }

CompileStats* set_current(CompileStats* stats) {
  CompileStats* previous = g_current;
  g_current = stats;
  return previous;
}

CompileStats::CompileStats() : epoch_(Clock::now()) {}

double CompileStats::now_s() const {
  return std::chrono::duration<double>(Clock::now() - epoch_).count();
}

int CompileStats::begin_span(std::string name) {
  Span span;
  span.name = std::move(name);
  span.parent = open_.empty() ? -1 : open_.back();
  span.depth = static_cast<int>(open_.size());
  span.start_s = now_s();
  span.open = true;
  const int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_.push_back(id);
  return id;
}

void CompileStats::end_span(int id) {
  if (id < 0 || id >= static_cast<int>(spans_.size())) {
    throw std::out_of_range("CompileStats::end_span: bad span id");
  }
  // Close everything the span still has open under it (exceptions skipping
  // inner end_span calls must not wedge the stack), then the span itself.
  const double end = now_s();
  while (!open_.empty()) {
    const int top = open_.back();
    open_.pop_back();
    Span& span = spans_[static_cast<std::size_t>(top)];
    span.dur_s = end - span.start_s;
    span.open = false;
    if (top == id) return;
  }
  throw std::logic_error("CompileStats::end_span: span already closed");
}

void CompileStats::count(const std::string& name, std::int64_t delta) {
  if (open_.empty()) {
    root_counters_[name] += delta;
  } else {
    spans_[static_cast<std::size_t>(open_.back())].counters[name] += delta;
  }
}

void CompileStats::gauge(const std::string& name, double value) {
  if (open_.empty()) return;
  spans_[static_cast<std::size_t>(open_.back())].gauges[name] = value;
}

void CompileStats::decide(std::string subject, std::int64_t bytes,
                          bool accepted, std::string reason) {
  Decision d;
  d.pass = std::string(current_span_name());
  d.subject = std::move(subject);
  d.bytes = bytes;
  d.accepted = accepted;
  d.reason = std::move(reason);
  decisions_.push_back(std::move(d));
}

int CompileStats::current_span() const {
  return open_.empty() ? -1 : open_.back();
}

std::string_view CompileStats::current_span_name() const {
  if (open_.empty()) return {};
  return spans_[static_cast<std::size_t>(open_.back())].name;
}

std::int64_t CompileStats::counter(std::string_view name) const {
  // "span.counter" restricts the sum to spans with that name; a bare
  // counter name sums over every span plus the root scope. Counter names
  // themselves never contain dots (enforced by convention at call sites).
  const std::size_t dot = name.find('.');
  const std::string span_filter(dot == std::string_view::npos
                                    ? std::string_view{}
                                    : name.substr(0, dot));
  const std::string key(dot == std::string_view::npos ? name
                                                      : name.substr(dot + 1));
  std::int64_t total = 0;
  for (const Span& span : spans_) {
    if (!span_filter.empty() && span.name != span_filter) continue;
    const auto it = span.counters.find(key);
    if (it != span.counters.end()) total += it->second;
  }
  if (span_filter.empty()) {
    const auto it = root_counters_.find(key);
    if (it != root_counters_.end()) total += it->second;
  }
  return total;
}

double CompileStats::span_seconds(std::string_view name) const {
  double total = 0.0;
  for (const Span& span : spans_) {
    if (span.name == name) total += span.open ? now_s() - span.start_s : span.dur_s;
  }
  return total;
}

int CompileStats::span_count(std::string_view name) const {
  int n = 0;
  for (const Span& span : spans_) n += span.name == name;
  return n;
}

std::map<std::string, std::int64_t> CompileStats::aggregate_counters() const {
  std::map<std::string, std::int64_t> all = root_counters_;
  for (const Span& span : spans_) {
    for (const auto& [name, value] : span.counters) {
      all[span.name + "." + name] += value;
    }
  }
  return all;
}

void CompileStats::merge_child(const CompileStats& child, double start_offset_s) {
  const int base = static_cast<int>(spans_.size());
  const int parent_id = current_span();
  const int depth_base = static_cast<int>(open_.size());
  for (const Span& span : child.spans_) {
    Span copy = span;
    copy.start_s += start_offset_s;
    copy.parent = copy.parent < 0 ? parent_id : copy.parent + base;
    copy.depth += depth_base;
    copy.open = false;
    spans_.push_back(std::move(copy));
  }
  // A serial run would have counted these on whatever span is open here.
  for (const auto& [name, value] : child.root_counters_) count(name, value);
  for (const Decision& decision : child.decisions_) {
    Decision copy = decision;
    if (copy.pass.empty()) copy.pass = std::string(current_span_name());
    decisions_.push_back(std::move(copy));
  }
}

double CompileStats::elapsed_s() const { return now_s(); }

}  // namespace lcmm::obs
