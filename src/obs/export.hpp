// Machine-readable exports of a CompileStats registry:
//   - stats_to_json: the full stats tree (schema "lcmm-compile-stats-v1";
//     see docs/observability.md) for CI regression and DSE sweeps,
//   - stats_to_chrome_trace: the compiler pipeline's own spans in Trace
//     Event Format, viewable in chrome://tracing / Perfetto.
#pragma once

#include <string>

#include "obs/stats.hpp"
#include "util/json.hpp"

namespace lcmm::obs {

/// The known compiler passes, in pipeline order. stats_to_json reports a
/// per-pass aggregate for each of these (plus any other span names seen).
extern const char* const kCorePasses[7];

/// Full stats tree: schema tag, per-pass aggregates (wall time, calls,
/// counters), the raw span tree, and the decision log.
util::Json stats_to_json(const CompileStats& stats);

/// The span tree as Trace Event Format complete events on one track.
util::Json stats_to_chrome_trace(const CompileStats& stats);

/// File writers; throw std::runtime_error when the path is unwritable.
void write_stats_json(const CompileStats& stats, const std::string& path);
void write_compile_trace(const CompileStats& stats, const std::string& path);

}  // namespace lcmm::obs
