#include "obs/export.hpp"

#include <fstream>
#include <map>

#include "sim/chrome_trace.hpp"

namespace lcmm::obs {

const char* const kCorePasses[7] = {"liveness", "interference", "coloring",
                                    "prefetch", "dnnk",         "splitting",
                                    "pipeline"};

namespace {

struct PassAggregate {
  double wall_s = 0.0;
  int calls = 0;
  std::map<std::string, std::int64_t> counters;
};

std::map<std::string, PassAggregate> aggregate_passes(
    const CompileStats& stats) {
  std::map<std::string, PassAggregate> passes;
  for (const char* name : kCorePasses) passes[name];  // stable schema
  for (const Span& span : stats.spans()) {
    PassAggregate& agg = passes[span.name];
    agg.wall_s += span.dur_s;
    ++agg.calls;
    for (const auto& [counter, value] : span.counters) {
      agg.counters[counter] += value;
    }
  }
  return passes;
}

}  // namespace

util::Json stats_to_json(const CompileStats& stats) {
  util::Json root = util::Json::object();
  root["schema"] = "lcmm-compile-stats-v1";
  root["elapsed_s"] = stats.elapsed_s();

  util::Json passes = util::Json::object();
  for (const auto& [name, agg] : aggregate_passes(stats)) {
    util::Json pass = util::Json::object();
    pass["wall_s"] = agg.wall_s;
    pass["calls"] = agg.calls;
    util::Json counters = util::Json::object();
    for (const auto& [counter, value] : agg.counters) counters[counter] = value;
    pass["counters"] = std::move(counters);
    passes[name] = std::move(pass);
  }
  root["passes"] = std::move(passes);

  util::Json spans = util::Json::array();
  for (std::size_t i = 0; i < stats.spans().size(); ++i) {
    const Span& span = stats.spans()[i];
    util::Json s = util::Json::object();
    s["id"] = i;
    s["name"] = span.name;
    s["parent"] = span.parent;
    s["depth"] = span.depth;
    s["start_us"] = span.start_s * 1e6;
    s["dur_us"] = span.dur_s * 1e6;
    if (!span.counters.empty()) {
      util::Json counters = util::Json::object();
      for (const auto& [counter, value] : span.counters) {
        counters[counter] = value;
      }
      s["counters"] = std::move(counters);
    }
    if (!span.gauges.empty()) {
      util::Json gauges = util::Json::object();
      for (const auto& [gauge, value] : span.gauges) gauges[gauge] = value;
      s["gauges"] = std::move(gauges);
    }
    spans.push(std::move(s));
  }
  root["spans"] = std::move(spans);

  if (!stats.root_counters().empty()) {
    util::Json counters = util::Json::object();
    for (const auto& [name, value] : stats.root_counters()) {
      counters[name] = value;
    }
    root["counters"] = std::move(counters);
  }

  util::Json decisions = util::Json::array();
  for (const Decision& d : stats.decisions()) {
    util::Json j = util::Json::object();
    j["pass"] = d.pass;
    j["subject"] = d.subject;
    j["bytes"] = d.bytes;
    j["accepted"] = d.accepted;
    j["reason"] = d.reason;
    decisions.push(std::move(j));
  }
  root["decisions"] = std::move(decisions);
  return root;
}

util::Json stats_to_chrome_trace(const CompileStats& stats) {
  sim::TraceEventWriter writer;
  writer.set_track_name(0, "lcmm compiler");
  for (const Span& span : stats.spans()) {
    writer.add_complete_event(span.name, 0, span.start_s, span.dur_s);
  }
  return std::move(writer).finish();
}

namespace {
void write_file(const util::Json& json, const std::string& path, int indent) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  out << json.dump(indent);
}
}  // namespace

void write_stats_json(const CompileStats& stats, const std::string& path) {
  write_file(stats_to_json(stats), path, 2);
}

void write_compile_trace(const CompileStats& stats, const std::string& path) {
  // Compact: trace viewers stream it, humans do not read it.
  write_file(stats_to_chrome_trace(stats), path, -1);
}

}  // namespace lcmm::obs
