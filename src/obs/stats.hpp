// Compiler observability: pass-level spans, counters and decision records.
//
// The LCMM compiler is a pipeline of analysis passes (liveness ->
// interference/coloring -> prefetch PDG -> DNNK knapsack -> splitting)
// wrapped in a DSE loop, and its own runtime matters: the framework is
// meant to sit inside design-space sweeps compiling many graphs. This
// module gives every pass a wall-clock span, named counters for the work
// it performed (interference edges, DP cells, backtrace steps, ...) and a
// record of every allocation decision with its reject reason, all
// collected into a per-compilation CompileStats registry.
//
// Collection is opt-in: instrumentation macros (obs/scope.hpp) write to a
// thread-local sink pointer that is null unless a StatsSession is alive on
// that thread, so the disabled cost is one pointer load per site. Because
// the sink is per-thread, a registry itself needs no locks: worker threads
// spawned by lcmm::par run against fresh per-task registries, and
// parallel_for merges them back into the spawning thread's registry in
// spawn order (merge_child), so collected stats are deterministic no
// matter how many workers ran (see docs/parallelism.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace lcmm::obs {

/// One timed region of the compiler, e.g. a pass invocation. Spans nest:
/// `parent` indexes into CompileStats::spans() (-1 for roots) and `depth`
/// is the nesting level, so exporters can rebuild the tree without a
/// second pass. Counters and gauges attach to the innermost open span.
struct Span {
  std::string name;
  int parent = -1;
  int depth = 0;
  double start_s = 0.0;  ///< Relative to the registry's epoch.
  double dur_s = 0.0;    ///< 0 while the span is still open.
  bool open = false;
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
};

/// Why a tensor buffer did or did not end up on chip. `pass` is the name
/// of the span that was innermost when the decision was recorded.
struct Decision {
  std::string pass;
  std::string subject;
  std::int64_t bytes = 0;
  bool accepted = false;
  std::string reason;
};

/// Per-compilation registry of spans, counters, gauges and decisions.
/// Instrumented code reaches it through the global sink (current());
/// instantiate a StatsSession to install one.
class CompileStats {
 public:
  CompileStats();

  /// Opens a span nested under the innermost open one; returns its id.
  int begin_span(std::string name);
  /// Closes the span. Out-of-order closes close intervening spans too, so
  /// an early return inside RAII scopes cannot corrupt the stack.
  void end_span(int id);

  /// Adds `delta` to a counter on the innermost open span (or to a
  /// registry-level root scope when no span is open).
  void count(const std::string& name, std::int64_t delta = 1);
  /// Sets a gauge (last write wins) on the innermost open span.
  void gauge(const std::string& name, double value);
  /// Records an allocation decision under the innermost open span's name.
  void decide(std::string subject, std::int64_t bytes, bool accepted,
              std::string reason);

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Decision>& decisions() const { return decisions_; }
  /// Counters recorded outside any span.
  const std::map<std::string, std::int64_t>& root_counters() const {
    return root_counters_;
  }

  /// Innermost open span id, -1 when none.
  int current_span() const;
  /// Name of the innermost open span, "" when none.
  std::string_view current_span_name() const;

  // -- Aggregations (used by tests, benches and the JSON exporter) --

  /// Sum of a counter. A bare name ("dp_cells") sums across every span and
  /// the root scope; a qualified name ("dnnk.dp_cells") restricts the sum
  /// to spans with that name. Counter names contain no dots by convention.
  std::int64_t counter(std::string_view name) const;
  /// Total wall time of all spans with this name (nested same-name spans
  /// are each counted; the compiler never self-nests a pass).
  double span_seconds(std::string_view name) const;
  /// Number of spans with this name.
  int span_count(std::string_view name) const;
  /// All counters summed across spans, keyed "span_name.counter_name"
  /// (root-scope counters keep their bare name).
  std::map<std::string, std::int64_t> aggregate_counters() const;

  /// Appends a child registry produced by a parallel worker: spans are
  /// re-rooted under the currently innermost open span (parents, depths and
  /// start times adjusted; `start_offset_s` is the child's epoch relative
  /// to this registry's), root counters land where a serial run would have
  /// counted them, and decisions recorded outside any child span inherit
  /// the innermost open span's name. lcmm::par calls this in spawn order,
  /// which is what makes collected stats worker-count independent.
  void merge_child(const CompileStats& child, double start_offset_s);

  /// Seconds since this registry was created.
  double elapsed_s() const;

 private:
  using Clock = std::chrono::steady_clock;
  double now_s() const;

  Clock::time_point epoch_;
  std::vector<Span> spans_;
  std::vector<int> open_;  ///< Stack of open span ids.
  std::map<std::string, std::int64_t> root_counters_;
  std::vector<Decision> decisions_;
};

/// The calling thread's sink (null = disabled). The pointer is
/// thread-local: a StatsSession binds to the thread that created it, and
/// lcmm::par installs per-task child registries on its workers.
CompileStats* current();
/// Installs `stats` as the calling thread's sink; returns the previous one.
CompileStats* set_current(CompileStats* stats);

/// RAII collection scope: installs a fresh CompileStats as the calling
/// thread's sink for its lifetime and restores the previous sink on
/// destruction, so sessions nest (an outer bench session is shadowed, not
/// clobbered, by an inner one).
class StatsSession {
 public:
  StatsSession() : previous_(set_current(&stats_)) {}
  ~StatsSession() { set_current(previous_); }
  StatsSession(const StatsSession&) = delete;
  StatsSession& operator=(const StatsSession&) = delete;

  CompileStats& stats() { return stats_; }
  const CompileStats& stats() const { return stats_; }

 private:
  CompileStats stats_;
  CompileStats* previous_;
};

/// RAII span over the current sink; no-op when collection is disabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : sink_(current()), id_(sink_ ? sink_->begin_span(name) : -1) {}
  ~ScopedSpan() {
    if (sink_) sink_->end_span(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  CompileStats* sink_;
  int id_;
};

}  // namespace lcmm::obs
