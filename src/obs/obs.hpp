// Umbrella header for the compiler observability subsystem.
//
//   obs::StatsSession session;              // enable collection
//   auto plan = compiler.compile(graph);    // passes record spans/counters
//   obs::write_stats_json(session.stats(), "stats.json");
//   obs::write_compile_trace(session.stats(), "trace.json");
#pragma once

#include "obs/export.hpp"  // IWYU pragma: export
#include "obs/scope.hpp"   // IWYU pragma: export
#include "obs/stats.hpp"   // IWYU pragma: export
