// Umbrella header for the LCMM library: layer-conscious memory management
// for FPGA-based DNN accelerators (Wei, Liang, Cong — DAC 2019).
//
// Typical use:
//
//   auto net = lcmm::models::build_googlenet();
//   lcmm::core::LcmmCompiler compiler(lcmm::hw::FpgaDevice::vu9p(),
//                                     lcmm::hw::Precision::kInt16);
//   auto umm = compiler.compile_umm(net);
//   auto plan = compiler.compile(net);
//   auto sim = lcmm::sim::refine_against_stalls(net, plan);
//   // sim.total_s vs lcmm::sim::simulate(net, umm).total_s
#pragma once

#include "core/lcmm.hpp"      // IWYU pragma: export
#include "driver/batch.hpp"   // IWYU pragma: export
#include "graph/dot.hpp"      // IWYU pragma: export
#include "graph/graph.hpp"    // IWYU pragma: export
#include "hw/dse.hpp"         // IWYU pragma: export
#include "hw/roofline.hpp"    // IWYU pragma: export
#include "models/models.hpp"  // IWYU pragma: export
#include "obs/obs.hpp"        // IWYU pragma: export
#include "par/par.hpp"        // IWYU pragma: export
#include "resil/resil.hpp"    // IWYU pragma: export
#include "sim/memory_trace.hpp"  // IWYU pragma: export
#include "sim/report.hpp"        // IWYU pragma: export
#include "sim/timeline.hpp"      // IWYU pragma: export
#include "util/table.hpp"        // IWYU pragma: export
