// Off-chip DDR4 bandwidth model.
//
// The paper (§2.2) assumes the VU9P's four DDR4 banks (19.2 GB/s each) are
// split so that each of the three concurrent tensor streams — input
// features, weights, output features — owns one third of the aggregate
// bandwidth (25.6 GB/s theoretical per stream). Real transfers of tile
// data never reach the theoretical number: every burst pays row-activation
// and protocol overhead, so short bursts see much lower efficiency. We model
// that with the standard saturating form
//     efficiency(burst) = burst / (burst + overhead)
// capped by a bank-level ceiling (refresh, bus turnaround).
#pragma once

#include <cstdint>

#include "hw/device.hpp"

namespace lcmm::mem {

struct DdrModelOptions {
  /// Fixed per-burst overhead expressed in equivalent data bytes
  /// (row activation/precharge, address phases, read-write turnaround).
  double burst_overhead_bytes = 512.0;
  /// Upper bound on efficiency (refresh, turnaround, controller overhead).
  /// Tiled accelerator access patterns on DDR4 typically sustain 60-70% of
  /// the pin bandwidth; the paper's motivation (§2.2) depends on streams
  /// falling well short of their 25.6 GB/s theoretical share.
  double max_efficiency = 0.55;
  /// Number of concurrent tensor streams sharing the banks (if/wt/of).
  int streams = 3;
};

class DdrModel {
 public:
  DdrModel(const hw::FpgaDevice& device, DdrModelOptions options = {});

  /// Burst efficiency in (0, max_efficiency] for the given contiguous
  /// burst length in bytes.
  double efficiency(double burst_bytes) const;

  /// Theoretical per-stream bandwidth in bytes/second (the paper's
  /// 25.6 GB/s figure for the VU9P).
  double stream_peak_bytes_per_sec() const;

  /// Effective per-stream bandwidth for transfers with the given burst
  /// length, bytes/second.
  double stream_bytes_per_sec(double burst_bytes) const;

  /// Seconds to move `bytes` on one stream with the given burst length.
  double transfer_seconds(double bytes, double burst_bytes) const;

  const DdrModelOptions& options() const { return options_; }

 private:
  double total_peak_bytes_per_sec_;
  DdrModelOptions options_;
};

}  // namespace lcmm::mem
