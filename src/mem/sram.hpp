// On-chip SRAM pools: block-granular BRAM36 / URAM accounting.
//
// The paper's Tab. 2 reports buffer sizes in URAM blocks ("9 of them
// consuming 32 URAM blocks ... others consume 64, 96, 128 and 288");
// allocation here is correspondingly quantized: a buffer occupies
// ceil(bytes / block_bytes) whole blocks of one pool. Tensor buffers prefer
// URAM (large, single wide port — fine for streaming tensors); tile buffers
// live in BRAM (they need many narrow banks to feed the PE array).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace lcmm::mem {

enum class SramPool : std::uint8_t { kBram, kUram };

struct SramAllocation {
  SramPool pool = SramPool::kBram;
  int blocks = 0;
  std::int64_t capacity_bytes = 0;
};

class SramPools {
 public:
  /// Constructs pools with the given block counts (use the FpgaDevice
  /// totals minus whatever the shell/platform consumes).
  SramPools(int bram36_blocks, int uram_blocks);

  static constexpr std::int64_t kBram36Bytes = 36 * 1024 / 8;
  static constexpr std::int64_t kUramBytes = 288 * 1024 / 8;
  static std::int64_t block_bytes(SramPool pool);
  static int blocks_needed(std::int64_t bytes, SramPool pool);

  /// Reserves `bytes` in the preferred pool, falling back to the other pool
  /// if the preferred one is exhausted. Returns std::nullopt when neither
  /// pool can hold the buffer.
  std::optional<SramAllocation> allocate(std::int64_t bytes, SramPool preferred);
  /// Returns an allocation's blocks to its pool.
  void release(const SramAllocation& alloc);

  int bram_total() const { return bram_total_; }
  int uram_total() const { return uram_total_; }
  int bram_used() const { return bram_used_; }
  int uram_used() const { return uram_used_; }
  std::int64_t free_bytes() const;
  double bram_utilization() const;
  double uram_utilization() const;

 private:
  int bram_total_;
  int uram_total_;
  int bram_used_ = 0;
  int uram_used_ = 0;
};

}  // namespace lcmm::mem
