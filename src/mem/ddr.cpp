#include "mem/ddr.hpp"

#include <stdexcept>
#include "resil/error.hpp"

namespace lcmm::mem {

DdrModel::DdrModel(const hw::FpgaDevice& device, DdrModelOptions options)
    : total_peak_bytes_per_sec_(device.ddr_peak_gbps_total() * 1e9),
      options_(options) {
  if (options_.streams <= 0 || options_.max_efficiency <= 0.0 ||
      options_.max_efficiency > 1.0 || options_.burst_overhead_bytes < 0.0) {
    throw resil::OptionError(resil::Code::kBadOptions, "mem.ddr", "DdrModel: bad options");
  }
  if (total_peak_bytes_per_sec_ <= 0.0) {
    throw resil::OptionError(resil::Code::kBadOptions, "mem.ddr",
                             "DdrModel: device has no DDR bandwidth");
  }
}

double DdrModel::efficiency(double burst_bytes) const {
  if (burst_bytes <= 0.0) return 0.0;
  const double raw = burst_bytes / (burst_bytes + options_.burst_overhead_bytes);
  return raw < options_.max_efficiency ? raw : options_.max_efficiency;
}

double DdrModel::stream_peak_bytes_per_sec() const {
  return total_peak_bytes_per_sec_ / options_.streams;
}

double DdrModel::stream_bytes_per_sec(double burst_bytes) const {
  return stream_peak_bytes_per_sec() * efficiency(burst_bytes);
}

double DdrModel::transfer_seconds(double bytes, double burst_bytes) const {
  if (bytes <= 0.0) return 0.0;
  const double bw = stream_bytes_per_sec(burst_bytes);
  if (bw <= 0.0) throw std::logic_error("DdrModel: zero effective bandwidth");
  return bytes / bw;
}

}  // namespace lcmm::mem
