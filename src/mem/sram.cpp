#include "mem/sram.hpp"

#include <stdexcept>
#include "resil/error.hpp"

namespace lcmm::mem {

SramPools::SramPools(int bram36_blocks, int uram_blocks)
    : bram_total_(bram36_blocks), uram_total_(uram_blocks) {
  if (bram36_blocks < 0 || uram_blocks < 0) {
    throw resil::OptionError(resil::Code::kBadArgument, "mem.sram",
                             "SramPools: negative block count");
  }
}

std::int64_t SramPools::block_bytes(SramPool pool) {
  return pool == SramPool::kBram ? kBram36Bytes : kUramBytes;
}

int SramPools::blocks_needed(std::int64_t bytes, SramPool pool) {
  if (bytes <= 0) {
    throw resil::OptionError(resil::Code::kBadArgument, "mem.sram",
                             "blocks_needed: bytes <= 0");
  }
  return static_cast<int>((bytes + block_bytes(pool) - 1) / block_bytes(pool));
}

std::optional<SramAllocation> SramPools::allocate(std::int64_t bytes,
                                                  SramPool preferred) {
  const SramPool other =
      preferred == SramPool::kBram ? SramPool::kUram : SramPool::kBram;
  for (SramPool pool : {preferred, other}) {
    const int need = blocks_needed(bytes, pool);
    int& used = pool == SramPool::kBram ? bram_used_ : uram_used_;
    const int total = pool == SramPool::kBram ? bram_total_ : uram_total_;
    if (used + need <= total) {
      used += need;
      return SramAllocation{pool, need, need * block_bytes(pool)};
    }
  }
  return std::nullopt;
}

void SramPools::release(const SramAllocation& alloc) {
  int& used = alloc.pool == SramPool::kBram ? bram_used_ : uram_used_;
  if (alloc.blocks < 0 || alloc.blocks > used) {
    throw std::logic_error("SramPools::release: releasing more than allocated");
  }
  used -= alloc.blocks;
}

std::int64_t SramPools::free_bytes() const {
  return static_cast<std::int64_t>(bram_total_ - bram_used_) * kBram36Bytes +
         static_cast<std::int64_t>(uram_total_ - uram_used_) * kUramBytes;
}

double SramPools::bram_utilization() const {
  return bram_total_ == 0 ? 0.0 : static_cast<double>(bram_used_) / bram_total_;
}

double SramPools::uram_utilization() const {
  return uram_total_ == 0 ? 0.0 : static_cast<double>(uram_used_) / uram_total_;
}

}  // namespace lcmm::mem
