// Result reporting: turns (graph, plan, simulation) into the quantities the
// paper's tables report — latency, throughput, clock, and resource
// utilization — so every bench prints from one consistent source.
//
// The CLB/LUT estimate is a documented surrogate (we do not run synthesis):
// a platform-shell base plus per-MAC datapath logic, per-buffer control
// logic and per-memory-block glue, with constants fitted to the paper's
// Tab. 1 utilization columns.
#pragma once

#include <string>

#include "core/lcmm.hpp"
#include "sim/timeline.hpp"
#include "util/json.hpp"

namespace lcmm::sim {

struct DesignReport {
  std::string network;
  hw::Precision precision = hw::Precision::kInt8;
  bool is_umm = false;
  /// Degradation-ladder rung the plan shipped on ("full-lcmm" unless the
  /// resil ladder had to retreat) and why (empty when not degraded).
  std::string rung;
  std::string degrade_reason;

  double latency_ms = 0.0;
  double tops = 0.0;  // nominal ops / latency, in Tera-ops/s
  double freq_mhz = 0.0;

  double dsp_util = 0.0;
  double clb_util = 0.0;
  double sram_util = 0.0;  // byte-weighted BRAM+URAM (Tab. 1 column)
  double bram_util = 0.0;
  double uram_util = 0.0;
  double pol = 0.0;  // fraction of memory-bound conv layers benefiting

  double total_stall_ms = 0.0;
  int num_on_chip_buffers = 0;
  std::int64_t tensor_buffer_bytes = 0;
};

DesignReport make_report(const graph::ComputationGraph& graph,
                         const core::AllocationPlan& plan, const SimResult& sim);

/// LUT-count surrogate used for the CLB column.
std::int64_t estimate_luts(const core::AllocationPlan& plan);

/// Machine-readable forms (CLI --format=json).
util::Json report_to_json(const DesignReport& report);
/// Full plan detail: design point, buffers, residency, per-layer timeline.
util::Json plan_to_json(const graph::ComputationGraph& graph,
                        const core::AllocationPlan& plan, const SimResult& sim);

}  // namespace lcmm::sim
