#include "sim/memory_trace.hpp"

#include <algorithm>
#include <sstream>

namespace lcmm::sim {

MemoryTrace build_memory_trace(const graph::ComputationGraph& graph,
                               const core::AllocationPlan& plan,
                               const SimResult& sim) {
  MemoryTrace trace;
  trace.on_chip_bytes = plan.tile_buffers.total() + plan.tensor_buffer_bytes;
  trace.device_sram_bytes = plan.design.device.sram_bytes_total();

  const int last_step = static_cast<int>(sim.layers.size()) - 1;
  const auto step_start = [&](int step) {
    if (step <= 0) return 0.0;
    if (step > last_step) return sim.total_s;
    return sim.layers[static_cast<std::size_t>(step)].start_s;
  };
  const auto step_end = [&](int step) {
    if (step < 0) return 0.0;
    if (step >= last_step) return sim.total_s;
    return sim.layers[static_cast<std::size_t>(step)].end_s;
  };

  for (std::size_t b = 0; b < plan.buffers.size(); ++b) {
    for (std::size_t e : plan.buffers[b].members) {
      const core::TensorEntity& entity = plan.entities[e];
      TensorResidency r;
      r.name = entity.name;
      r.key = entity.key;
      r.on_chip = plan.state.is_on(entity.key);
      r.virtual_buffer = plan.buffers[b].id;
      r.bytes = entity.bytes;
      r.start_step = entity.def_step;
      r.end_step = entity.last_use_step;
      r.start_s = step_start(entity.def_step);
      r.end_s = step_end(entity.last_use_step);
      trace.records.push_back(std::move(r));
    }
  }
  std::sort(trace.records.begin(), trace.records.end(),
            [](const TensorResidency& a, const TensorResidency& b) {
              if (a.start_step != b.start_step) return a.start_step < b.start_step;
              return a.name < b.name;
            });
  (void)graph;
  return trace;
}

std::string MemoryTrace::ascii_gantt(std::size_t max_rows, int width) const {
  std::ostringstream os;
  int max_step = 1;
  std::size_t name_width = 4;
  for (const TensorResidency& r : records) {
    max_step = std::max(max_step, r.end_step);
    name_width = std::max(name_width, r.name.size());
  }
  name_width = std::min<std::size_t>(name_width, 32);
  const double scale = static_cast<double>(width - 1) / std::max(1, max_step);
  std::size_t shown = 0;
  for (const TensorResidency& r : records) {
    if (shown++ >= max_rows) {
      os << "... (" << records.size() - max_rows << " more)\n";
      break;
    }
    std::string name = r.name.substr(0, name_width);
    name.resize(name_width, ' ');
    std::string bar(static_cast<std::size_t>(width), ' ');
    const int from = static_cast<int>(std::max(0, r.start_step) * scale);
    const int to = static_cast<int>(std::max(0, r.end_step) * scale);
    for (int x = from; x <= to && x < width; ++x) {
      bar[static_cast<std::size_t>(x)] = r.on_chip ? '#' : '.';
    }
    os << name << " |" << bar << "| " << (r.on_chip ? "on " : "off")
       << " vbuf" << r.virtual_buffer << "\n";
  }
  return os.str();
}

}  // namespace lcmm::sim
