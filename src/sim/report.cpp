#include "sim/report.hpp"

#include <algorithm>

#include "obs/scope.hpp"

namespace lcmm::sim {

namespace {
constexpr std::int64_t kShellLuts = 120000;
constexpr std::int64_t kBufferControlLuts = 3000;
constexpr std::int64_t kPerUramLuts = 150;
constexpr std::int64_t kPerBramLuts = 30;

std::int64_t luts_per_mac(hw::Precision p) {
  switch (p) {
    case hw::Precision::kInt8: return 40;
    case hw::Precision::kInt16: return 70;
    case hw::Precision::kFp32: return 700;
  }
  return 0;
}
}  // namespace

std::int64_t estimate_luts(const core::AllocationPlan& plan) {
  std::int64_t luts = kShellLuts;
  luts += plan.design.array.macs_per_cycle() * luts_per_mac(plan.design.precision);
  luts += static_cast<std::int64_t>(plan.physical.size()) * kBufferControlLuts;
  luts += static_cast<std::int64_t>(plan.uram_used) * kPerUramLuts;
  luts += static_cast<std::int64_t>(plan.bram_used) * kPerBramLuts;
  return luts;
}

DesignReport make_report(const graph::ComputationGraph& graph,
                         const core::AllocationPlan& plan, const SimResult& sim) {
  LCMM_SPAN("report");
  LCMM_COUNT("reports", 1);
  DesignReport r;
  r.network = graph.name();
  r.precision = plan.design.precision;
  r.is_umm = plan.is_umm;
  r.rung = resil::rung_name(plan.rung);
  r.degrade_reason = plan.degrade_reason;
  r.latency_ms = sim.total_s * 1e3;
  r.tops = sim.total_s > 0
               ? 2.0 * static_cast<double>(graph.total_macs()) / sim.total_s / 1e12
               : 0.0;
  r.freq_mhz = plan.design.freq_mhz;
  r.dsp_util = static_cast<double>(plan.design.array.dsp_cost(plan.design.precision)) /
               plan.design.device.dsp_total;
  r.clb_util = std::min(1.0, static_cast<double>(estimate_luts(plan)) /
                                 static_cast<double>(plan.design.device.logic_luts_total));
  r.sram_util = plan.sram_utilization();
  r.bram_util = plan.bram_utilization();
  r.uram_util = plan.uram_utilization();
  r.pol = plan.pol();
  r.total_stall_ms = sim.total_stall_s * 1e3;
  r.num_on_chip_buffers = static_cast<int>(plan.physical.size());
  r.tensor_buffer_bytes = plan.tensor_buffer_bytes;
  return r;
}

util::Json report_to_json(const DesignReport& report) {
  util::Json j = util::Json::object();
  j["network"] = report.network;
  j["precision"] = hw::to_string(report.precision);
  j["design"] = report.is_umm ? "UMM" : "LCMM";
  j["rung"] = report.rung;
  j["degrade_reason"] = report.degrade_reason;
  j["latency_ms"] = report.latency_ms;
  j["tops"] = report.tops;
  j["freq_mhz"] = report.freq_mhz;
  j["dsp_util"] = report.dsp_util;
  j["clb_util"] = report.clb_util;
  j["sram_util"] = report.sram_util;
  j["bram_util"] = report.bram_util;
  j["uram_util"] = report.uram_util;
  j["pol"] = report.pol;
  j["stall_ms"] = report.total_stall_ms;
  j["tensor_buffers"] = report.num_on_chip_buffers;
  j["tensor_buffer_bytes"] = report.tensor_buffer_bytes;
  return j;
}

util::Json plan_to_json(const graph::ComputationGraph& graph,
                        const core::AllocationPlan& plan, const SimResult& sim) {
  util::Json j = util::Json::object();
  j["report"] = report_to_json(make_report(graph, plan, sim));

  util::Json design = util::Json::object();
  design["device"] = plan.design.device.name;
  design["array"] = plan.design.array.to_string();
  design["tile"] = plan.design.tile.to_string();
  design["freq_mhz"] = plan.design.freq_mhz;
  j["design"] = std::move(design);

  util::Json buffers = util::Json::array();
  for (std::size_t b = 0; b < plan.buffers.size(); ++b) {
    util::Json buf = util::Json::object();
    buf["id"] = plan.buffers[b].id;
    buf["bytes"] = plan.buffers[b].bytes;
    buf["on_chip"] = static_cast<bool>(plan.buffer_on_chip[b]);
    util::Json members = util::Json::array();
    for (std::size_t e : plan.buffers[b].members) {
      members.push(plan.entities[e].name);
    }
    buf["tensors"] = std::move(members);
    buffers.push(std::move(buf));
  }
  j["virtual_buffers"] = std::move(buffers);

  util::Json residents = util::Json::array();
  for (graph::LayerId id : plan.resident_weights) {
    residents.push(graph.layer(id).name);
  }
  j["resident_weights"] = std::move(residents);

  util::Json layers = util::Json::array();
  for (const LayerExecution& e : sim.layers) {
    util::Json layer = util::Json::object();
    layer["name"] = graph.layer(e.layer).name;
    layer["start_us"] = e.start_s * 1e6;
    layer["latency_us"] = e.latency_s() * 1e6;
    layer["stall_us"] = e.stall_s * 1e6;
    layer["compute_us"] = e.compute_s * 1e6;
    layer["if_us"] = e.if_s * 1e6;
    layer["wt_us"] = e.wt_s * 1e6;
    layer["of_us"] = e.of_s * 1e6;
    layers.push(std::move(layer));
  }
  j["layers"] = std::move(layers);
  return j;
}

}  // namespace lcmm::sim
