// Timeline simulator: executes an AllocationPlan layer by layer.
//
// Per layer, compute and the three DRAM streams overlap via double
// buffering (Eq. 1); on-chip tensors drop their stream terms. Weight
// prefetches are scheduled against the *leftover* weight-stream bandwidth
// of the layers inside their prefetch window, in target order; whatever
// has not arrived when the target layer starts becomes a stall. This is
// where the paper's "weight loading could be hidden by the execution of
// the nodes before Ck" is actually tested rather than assumed.
#pragma once

#include <vector>

#include "core/lcmm.hpp"

namespace lcmm::sim {

struct LayerExecution {
  graph::LayerId layer = graph::kInvalidLayer;
  double start_s = 0.0;
  double end_s = 0.0;
  /// Charged (post-allocation) latency terms.
  double compute_s = 0.0;
  double if_s = 0.0;  // input + residual streams still off-chip
  double wt_s = 0.0;
  double of_s = 0.0;
  /// Prefetch stall paid before this layer could start.
  double stall_s = 0.0;

  double latency_s() const { return end_s - start_s; }
};

struct SimResult {
  double total_s = 0.0;
  double total_stall_s = 0.0;
  /// In execution order.
  std::vector<LayerExecution> layers;
  /// Prefetch bandwidth-time that was successfully hidden.
  double hidden_prefetch_s = 0.0;
};

/// Simulates `plan` on `graph`. The plan must have been produced for the
/// same graph (checked via layer count).
SimResult simulate(const graph::ComputationGraph& graph,
                   const core::AllocationPlan& plan);

/// Steady-state streaming execution of `images` back-to-back inferences.
/// Prefetches for image k may start during image k-1 (weights are the same
/// every inference), so stalls that hit the first image's early layers
/// disappear in steady state — the paper's "weights could be reused for
/// multiple instances of inference".
struct StreamResult {
  int images = 0;
  double total_s = 0.0;
  double first_image_s = 0.0;
  /// Per-image latency once the pipeline has warmed up (last image).
  double steady_image_s = 0.0;
  double total_stall_s = 0.0;
  double throughput_images_per_s() const {
    return total_s > 0 ? images / total_s : 0.0;
  }
};

StreamResult simulate_stream(const graph::ComputationGraph& graph,
                             const core::AllocationPlan& plan, int images);

/// Post-pass: demotes on-chip weight tensors whose prefetch stalls make the
/// layer slower than its UMM latency (rare; early layers with no window),
/// re-simulating until stable. Returns the final simulation.
SimResult refine_against_stalls(const graph::ComputationGraph& graph,
                                core::AllocationPlan& plan,
                                int max_rounds = 4);

}  // namespace lcmm::sim
