#include "sim/chrome_trace.hpp"

#include <fstream>

#include "util/json.hpp"

namespace lcmm::sim {

namespace {
constexpr int kComputeTrack = 0;
constexpr int kIfTrack = 1;
constexpr int kWtTrack = 2;
constexpr int kOfTrack = 3;
constexpr int kStallTrack = 4;

void emit(util::Json& events, const std::string& name, int tid,
          double start_s, double dur_s) {
  if (dur_s <= 0.0) return;
  util::Json e = util::Json::object();
  e["name"] = name;
  e["ph"] = "X";
  e["pid"] = 0;
  e["tid"] = tid;
  e["ts"] = start_s * 1e6;   // microseconds
  e["dur"] = dur_s * 1e6;
  events.push(std::move(e));
}
}  // namespace

std::string to_chrome_trace(const graph::ComputationGraph& graph,
                            const SimResult& sim) {
  util::Json events = util::Json::array();
  // Track name metadata.
  const std::pair<int, const char*> tracks[] = {
      {kComputeTrack, "PE array"},   {kIfTrack, "DRAM: input features"},
      {kWtTrack, "DRAM: weights"},   {kOfTrack, "DRAM: output features"},
      {kStallTrack, "prefetch stalls"}};
  for (const auto& [tid, name] : tracks) {
    util::Json meta = util::Json::object();
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = 0;
    meta["tid"] = tid;
    util::Json args = util::Json::object();
    args["name"] = name;
    meta["args"] = std::move(args);
    events.push(std::move(meta));
  }
  for (const LayerExecution& e : sim.layers) {
    const std::string& name = graph.layer(e.layer).name;
    emit(events, name, kComputeTrack, e.start_s, e.compute_s);
    emit(events, name + ".if", kIfTrack, e.start_s, e.if_s);
    emit(events, name + ".wt", kWtTrack, e.start_s, e.wt_s);
    emit(events, name + ".of", kOfTrack, e.start_s, e.of_s);
    emit(events, name + ".stall", kStallTrack, e.start_s - e.stall_s,
         e.stall_s);
  }
  util::Json root = util::Json::object();
  root["traceEvents"] = std::move(events);
  root["displayTimeUnit"] = "ms";
  return root.dump(-1);
}

void write_chrome_trace(const graph::ComputationGraph& graph,
                        const SimResult& sim, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  out << to_chrome_trace(graph, sim);
}

}  // namespace lcmm::sim
