#include "sim/chrome_trace.hpp"

#include <fstream>

namespace lcmm::sim {

namespace {
constexpr int kComputeTrack = 0;
constexpr int kIfTrack = 1;
constexpr int kWtTrack = 2;
constexpr int kOfTrack = 3;
constexpr int kStallTrack = 4;
}  // namespace

void TraceEventWriter::set_track_name(int tid, const std::string& name) {
  util::Json meta = util::Json::object();
  meta["name"] = "thread_name";
  meta["ph"] = "M";
  meta["pid"] = 0;
  meta["tid"] = tid;
  util::Json args = util::Json::object();
  args["name"] = name;
  meta["args"] = std::move(args);
  events_.push(std::move(meta));
}

void TraceEventWriter::add_complete_event(const std::string& name, int tid,
                                          double start_s, double dur_s) {
  if (dur_s <= 0.0) return;
  util::Json e = util::Json::object();
  e["name"] = name;
  e["ph"] = "X";
  e["pid"] = 0;
  e["tid"] = tid;
  e["ts"] = start_s * 1e6;  // microseconds
  e["dur"] = dur_s * 1e6;
  events_.push(std::move(e));
}

util::Json TraceEventWriter::finish() && {
  util::Json root = util::Json::object();
  root["traceEvents"] = std::move(events_);
  root["displayTimeUnit"] = "ms";
  return root;
}

std::string to_chrome_trace(const graph::ComputationGraph& graph,
                            const SimResult& sim) {
  TraceEventWriter writer;
  const std::pair<int, const char*> tracks[] = {
      {kComputeTrack, "PE array"},   {kIfTrack, "DRAM: input features"},
      {kWtTrack, "DRAM: weights"},   {kOfTrack, "DRAM: output features"},
      {kStallTrack, "prefetch stalls"}};
  for (const auto& [tid, name] : tracks) writer.set_track_name(tid, name);
  for (const LayerExecution& e : sim.layers) {
    const std::string& name = graph.layer(e.layer).name;
    writer.add_complete_event(name, kComputeTrack, e.start_s, e.compute_s);
    writer.add_complete_event(name + ".if", kIfTrack, e.start_s, e.if_s);
    writer.add_complete_event(name + ".wt", kWtTrack, e.start_s, e.wt_s);
    writer.add_complete_event(name + ".of", kOfTrack, e.start_s, e.of_s);
    writer.add_complete_event(name + ".stall", kStallTrack,
                              e.start_s - e.stall_s, e.stall_s);
  }
  return std::move(writer).finish().dump(-1);
}

void write_chrome_trace(const graph::ComputationGraph& graph,
                        const SimResult& sim, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  out << to_chrome_trace(graph, sim);
}

}  // namespace lcmm::sim
