// Chrome trace-event export of a simulated timeline: open the file in
// chrome://tracing or https://ui.perfetto.dev to see per-layer compute and
// the three DRAM streams as parallel tracks, stalls included.
#pragma once

#include <string>

#include "sim/timeline.hpp"

namespace lcmm::sim {

/// Renders the simulation as Trace Event Format JSON (complete events).
/// Tracks: compute, IF stream, WT stream, OF stream, prefetch stalls.
std::string to_chrome_trace(const graph::ComputationGraph& graph,
                            const SimResult& sim);

/// Writes to a file; throws std::runtime_error when the path is unwritable.
void write_chrome_trace(const graph::ComputationGraph& graph,
                        const SimResult& sim, const std::string& path);

}  // namespace lcmm::sim
