// Chrome trace-event export: open the produced JSON in chrome://tracing or
// https://ui.perfetto.dev. Two producers share the machinery:
//   - the simulated accelerator timeline (per-layer compute + DRAM streams),
//   - the compiler's own pass spans (obs/export.hpp).
#pragma once

#include <string>

#include "sim/timeline.hpp"
#include "util/json.hpp"

namespace lcmm::sim {

/// Incremental builder for Trace Event Format JSON (the chrome://tracing
/// interchange format): named tracks, complete ("X") duration events, and
/// the enclosing root object.
class TraceEventWriter {
 public:
  /// Names the track `tid` (rendered as a thread lane).
  void set_track_name(int tid, const std::string& name);
  /// Adds a complete event; zero/negative durations are dropped.
  void add_complete_event(const std::string& name, int tid, double start_s,
                          double dur_s);
  /// The root trace object ({"traceEvents": [...], ...}).
  util::Json finish() &&;

 private:
  util::Json events_ = util::Json::array();
};

/// Renders the simulation as Trace Event Format JSON (complete events).
/// Tracks: compute, IF stream, WT stream, OF stream, prefetch stalls.
std::string to_chrome_trace(const graph::ComputationGraph& graph,
                            const SimResult& sim);

/// Writes to a file; throws std::runtime_error when the path is unwritable.
void write_chrome_trace(const graph::ComputationGraph& graph,
                        const SimResult& sim, const std::string& path);

}  // namespace lcmm::sim
