// First-order energy model (extension beyond the paper's evaluation).
//
// LCMM's whole effect is replacing DRAM traffic with on-chip accesses, and
// DRAM bytes cost two orders of magnitude more energy than SRAM bytes, so
// the latency optimization doubles as an energy optimization. The model
// charges:
//   * DRAM energy per byte actually moved off-chip (post-allocation
//     streams + non-resident weight prefetch loads),
//   * SRAM energy per byte entering/leaving the PE array (every operand is
//     staged through on-chip memory regardless of its home),
//   * compute energy per MAC (precision dependent),
//   * static power over the execution time.
// Constants are typical published 16 nm FPGA/DDR4 figures and are knobs.
#pragma once

#include "core/lcmm.hpp"
#include "sim/timeline.hpp"

namespace lcmm::sim {

struct EnergyModelOptions {
  double dram_pj_per_byte = 160.0;  // DDR4 incl. PHY + controller
  double sram_pj_per_byte = 1.5;    // BRAM/URAM access
  double mac_pj_int8 = 0.3;
  double mac_pj_int16 = 0.8;
  double mac_pj_fp32 = 4.5;
  double static_watts = 12.0;       // shell, clocks, leakage

  double mac_pj(hw::Precision p) const;
};

struct EnergyReport {
  double dram_mj = 0.0;     // millijoules per image
  double sram_mj = 0.0;
  double compute_mj = 0.0;
  double static_mj = 0.0;
  double dram_bytes = 0.0;  // off-chip bytes actually moved

  double total_mj() const { return dram_mj + sram_mj + compute_mj + static_mj; }
  /// Energy efficiency in Gops/J for the given nominal work.
  double gops_per_joule(double nominal_ops) const {
    return total_mj() > 0 ? nominal_ops / (total_mj() * 1e-3) / 1e9 : 0.0;
  }
};

/// Estimates the per-image energy of an executed plan.
EnergyReport estimate_energy(const graph::ComputationGraph& graph,
                             const core::AllocationPlan& plan,
                             const SimResult& sim,
                             const EnergyModelOptions& options = {});

}  // namespace lcmm::sim
