// Memory footprint trace (paper Fig. 3): where every tensor lives (on-chip
// tensor buffer vs off-chip DRAM) and for how long, against the simulated
// execution timeline.
#pragma once

#include <string>
#include <vector>

#include "core/lcmm.hpp"
#include "sim/timeline.hpp"

namespace lcmm::sim {

struct TensorResidency {
  std::string name;
  core::TensorKey key;
  bool on_chip = false;
  int virtual_buffer = -1;  // -1 when spilled / not an allocation candidate
  std::int64_t bytes = 0;
  int start_step = 0;
  int end_step = 0;
  double start_s = 0.0;
  double end_s = 0.0;
};

struct MemoryTrace {
  std::vector<TensorResidency> records;
  /// Static on-chip footprint: tile buffers + allocated tensor buffers.
  std::int64_t on_chip_bytes = 0;
  std::int64_t device_sram_bytes = 0;

  /// Text Gantt chart of tensor residencies over execution steps
  /// ('#' on-chip, '.' off-chip).
  std::string ascii_gantt(std::size_t max_rows = 32, int width = 64) const;
};

MemoryTrace build_memory_trace(const graph::ComputationGraph& graph,
                               const core::AllocationPlan& plan,
                               const SimResult& sim);

}  // namespace lcmm::sim
