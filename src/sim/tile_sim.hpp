// Tile-level event-driven simulator.
//
// The analytical model (hw::PerfModel) applies Eq. 1 at layer granularity:
// latency = max(compute, per-stream transfer totals), assuming perfect
// double buffering. This simulator executes the actual tile schedule of the
// Fig. 1 loop nest — every (m, h, w, c) tile becomes load-IF / load-WT /
// compute / store-OF events on four contended resources with a two-deep
// (ping-pong) buffer dependence pattern — and therefore measures the
// pipeline fill, drain and coupling effects the closed form ignores.
//
// Its role is cross-validation: tests assert the two models agree within a
// small tolerance on real layers, which is what justifies using the fast
// closed form inside the DNNK/DSE loops.
#pragma once

#include "core/entity.hpp"
#include "hw/perf_model.hpp"

namespace lcmm::sim {

struct TileSimResult {
  double latency_s = 0.0;
  std::int64_t num_tiles = 0;
  /// Busy time per resource, for utilization analysis.
  double compute_busy_s = 0.0;
  double if_busy_s = 0.0;
  double wt_busy_s = 0.0;
  double of_busy_s = 0.0;
};

/// Simulates one layer's tile schedule under the per-source on-chip mask
/// (bit k == TensorSource k has an on-chip tensor buffer, so its DRAM
/// stream disappears).
TileSimResult simulate_layer_tiles(const hw::PerfModel& model,
                                   graph::LayerId layer,
                                   std::uint8_t on_chip_mask = 0);

/// Sum of per-layer tile simulations over the whole graph (no inter-layer
/// overlap, matching the sequential execution of the timeline simulator).
double tile_sim_total_latency(const hw::PerfModel& model,
                              const core::OnChipState& state);

}  // namespace lcmm::sim
