#include "sim/timeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/latency_tables.hpp"
#include "obs/scope.hpp"

namespace lcmm::sim {

namespace {

struct PrefetchRequest {
  graph::LayerId target = graph::kInvalidLayer;
  std::int64_t target_abs = 0;  // absolute step across the image stream
  std::int64_t start_abs = 0;   // earliest absolute step the load may begin
  double remaining_s = 0.0;
};

bool bit(std::uint8_t mask, core::TensorSource s) {
  return (mask >> static_cast<int>(s)) & 1u;
}

struct TimelineOutput {
  std::vector<LayerExecution> layers;  // all images, execution order
  double total_s = 0.0;
  double total_stall_s = 0.0;
  double hidden_prefetch_s = 0.0;
  std::vector<double> image_end_s;  // per image
};

/// Core timeline over `images` back-to-back inferences. Weight prefetches
/// are granted the leftover weight-stream bandwidth of the layers inside
/// their window, earliest target first; for image k > 0 a window that the
/// paper's backtrace could not fit (start == kBeforeExecution) extends
/// into image k-1.
TimelineOutput run_timeline(const graph::ComputationGraph& graph,
                            const core::AllocationPlan& plan,
                            const hw::PerfModel& model, int images) {
  const std::vector<graph::LayerId>& order = graph.topo_order();
  const std::int64_t steps = static_cast<std::int64_t>(order.size());

  std::vector<PrefetchRequest> requests;
  for (int img = 0; img < images; ++img) {
    const std::int64_t base = static_cast<std::int64_t>(img) * steps;
    for (const graph::Layer& layer : graph.layers()) {
      if (!plan.state.is_on({layer.id, core::TensorSource::kWeight})) continue;
      // Resident weights are persistent: loaded once before the stream.
      if (plan.weight_is_resident(layer.id)) continue;
      PrefetchRequest r;
      r.target = layer.id;
      r.target_abs = base + graph.step_of(layer.id);
      double load = 0.0;
      int start_step = core::kBeforeExecution;
      if (const core::PrefetchEdge* edge = plan.prefetch.edge_for(layer.id)) {
        start_step = edge->start_step;
        load = edge->load_seconds;
      } else {
        load = model.ddr().transfer_seconds(
            static_cast<double>(graph.layer_weight_elems(layer.id)) *
                hw::bytes_per_elem(plan.design.precision),
            4096.0);
      }
      if (start_step == core::kBeforeExecution) {
        // The window does not fit inside one image: extend into the
        // previous one (or clamp to the stream start for the first image).
        r.start_abs = std::max<std::int64_t>(0, base - steps);
      } else {
        r.start_abs = base + start_step;
      }
      r.remaining_s = load;
      requests.push_back(r);
    }
  }
  std::sort(requests.begin(), requests.end(),
            [](const PrefetchRequest& a, const PrefetchRequest& b) {
              return a.target_abs < b.target_abs;
            });

  TimelineOutput out;
  out.image_end_s.resize(static_cast<std::size_t>(images), 0.0);
  double t = 0.0;
  for (std::int64_t abs = 0; abs < steps * images; ++abs) {
    const graph::LayerId id = order[static_cast<std::size_t>(abs % steps)];
    const hw::LayerTiming& timing = model.timing(id);
    const std::uint8_t mask = plan.state.layer_mask(id);

    LayerExecution exec;
    exec.layer = id;
    exec.compute_s = timing.compute_s;
    exec.if_s = (bit(mask, core::TensorSource::kInput) ? 0.0 : timing.if_s) +
                (bit(mask, core::TensorSource::kResidual) ? 0.0 : timing.res_s);
    exec.wt_s = bit(mask, core::TensorSource::kWeight) ? 0.0 : timing.wt_s;
    exec.of_s = bit(mask, core::TensorSource::kOutput) ? 0.0 : timing.of_s;
    const double base =
        std::max({exec.compute_s, exec.if_s, exec.wt_s, exec.of_s});

    // Prefetches targeting this step must have completed; the remainder
    // stalls the layer while the weight stream finishes the load.
    for (PrefetchRequest& r : requests) {
      if (r.target_abs == abs && r.remaining_s > 0.0) {
        exec.stall_s += r.remaining_s;
        r.remaining_s = 0.0;
      }
    }

    exec.start_s = t + exec.stall_s;
    exec.end_s = exec.start_s + base;
    out.total_stall_s += exec.stall_s;

    // Grant this layer's leftover weight-stream time to in-window
    // prefetches, earliest target first. (Stall time is excluded: the
    // stream spends it finishing this layer's own late load.)
    double free_wt = std::max(0.0, base - exec.wt_s);
    for (PrefetchRequest& r : requests) {
      if (free_wt <= 0.0) break;
      if (r.remaining_s <= 0.0) continue;
      if (r.target_abs <= abs) continue;
      if (r.start_abs > abs) continue;
      const double granted = std::min(free_wt, r.remaining_s);
      r.remaining_s -= granted;
      free_wt -= granted;
      out.hidden_prefetch_s += granted;
    }

    t = exec.end_s;
    if ((abs + 1) % steps == 0) {
      out.image_end_s[static_cast<std::size_t>(abs / steps)] = t;
    }
    out.layers.push_back(exec);
  }
  out.total_s = t;
  return out;
}

}  // namespace

SimResult simulate(const graph::ComputationGraph& graph,
                   const core::AllocationPlan& plan) {
  LCMM_SPAN("simulate");
  if (plan.state.num_layers() != graph.num_layers()) {
    throw std::invalid_argument("simulate: plan does not match graph");
  }
  LCMM_COUNT("layers", static_cast<std::int64_t>(graph.num_layers()));
  hw::PerfModel model(graph, plan.design);
  TimelineOutput out = run_timeline(graph, plan, model, 1);
  SimResult result;
  result.total_s = out.total_s;
  result.total_stall_s = out.total_stall_s;
  result.hidden_prefetch_s = out.hidden_prefetch_s;
  result.layers = std::move(out.layers);
  return result;
}

StreamResult simulate_stream(const graph::ComputationGraph& graph,
                             const core::AllocationPlan& plan, int images) {
  if (plan.state.num_layers() != graph.num_layers()) {
    throw std::invalid_argument("simulate_stream: plan does not match graph");
  }
  if (images < 1) throw std::invalid_argument("simulate_stream: images < 1");
  hw::PerfModel model(graph, plan.design);
  const TimelineOutput out = run_timeline(graph, plan, model, images);
  StreamResult result;
  result.images = images;
  result.total_s = out.total_s;
  result.total_stall_s = out.total_stall_s;
  result.first_image_s = out.image_end_s.front();
  result.steady_image_s =
      images == 1 ? out.image_end_s.front()
                  : out.image_end_s[static_cast<std::size_t>(images - 1)] -
                        out.image_end_s[static_cast<std::size_t>(images - 2)];
  return result;
}

SimResult refine_against_stalls(const graph::ComputationGraph& graph,
                                core::AllocationPlan& plan, int max_rounds) {
  LCMM_SPAN("refine_stalls");
  hw::PerfModel model(graph, plan.design);
  SimResult sim = simulate(graph, plan);
  for (int round = 0; round < max_rounds; ++round) {
    LCMM_COUNT("rounds", 1);
    bool changed = false;
    for (const LayerExecution& exec : sim.layers) {
      if (exec.stall_s <= 0.0) continue;
      const double umm = model.timing(exec.layer).umm_latency();
      if (exec.latency_s() + exec.stall_s > umm &&
          plan.state.is_on({exec.layer, core::TensorSource::kWeight})) {
        plan.state.set({exec.layer, core::TensorSource::kWeight}, false);
        LCMM_COUNT("demoted_weights", 1);
        LCMM_DECIDE(graph.layer(exec.layer).name + ".wt", 0, false,
                    "prefetch-stall-regression");
        changed = true;
      }
    }
    if (!changed) break;
    sim = simulate(graph, plan);
  }
  plan.est_latency_s = sim.total_s;
  return sim;
}

}  // namespace lcmm::sim
