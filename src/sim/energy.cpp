#include "sim/energy.hpp"

#include <stdexcept>

namespace lcmm::sim {

double EnergyModelOptions::mac_pj(hw::Precision p) const {
  switch (p) {
    case hw::Precision::kInt8: return mac_pj_int8;
    case hw::Precision::kInt16: return mac_pj_int16;
    case hw::Precision::kFp32: return mac_pj_fp32;
  }
  return 0.0;
}

EnergyReport estimate_energy(const graph::ComputationGraph& graph,
                             const core::AllocationPlan& plan,
                             const SimResult& sim,
                             const EnergyModelOptions& options) {
  if (plan.state.num_layers() != graph.num_layers()) {
    throw std::invalid_argument("estimate_energy: plan does not match graph");
  }
  hw::PerfModel model(graph, plan.design);
  const int bpe = hw::bytes_per_elem(plan.design.precision);

  EnergyReport report;
  double sram_bytes = 0.0;
  double macs = 0.0;
  for (const graph::Layer& layer : graph.layers()) {
    const hw::LayerTiming& t = model.timing(layer.id);
    const std::uint8_t mask = plan.state.layer_mask(layer.id);
    const auto on = [&](core::TensorSource s) {
      return (mask >> static_cast<int>(s)) & 1u;
    };
    // Off-chip streams that remain after allocation.
    if (!on(core::TensorSource::kInput)) report.dram_bytes += t.if_bytes;
    if (!on(core::TensorSource::kResidual)) report.dram_bytes += t.res_bytes;
    if (!on(core::TensorSource::kWeight)) report.dram_bytes += t.wt_bytes;
    if (!on(core::TensorSource::kOutput)) report.dram_bytes += t.of_bytes;
    // Non-resident on-chip weights are re-streamed once per image.
    if (on(core::TensorSource::kWeight) &&
        !plan.weight_is_resident(layer.id)) {
      report.dram_bytes +=
          static_cast<double>(graph.layer_weight_elems(layer.id)) * bpe;
    }
    // Every operand is staged through SRAM regardless of its home.
    sram_bytes += t.if_bytes + t.res_bytes + t.wt_bytes + t.of_bytes;
    macs += static_cast<double>(t.nominal_macs);
  }

  report.dram_mj = report.dram_bytes * options.dram_pj_per_byte * 1e-9;
  report.sram_mj = sram_bytes * options.sram_pj_per_byte * 1e-9;
  report.compute_mj = macs * options.mac_pj(plan.design.precision) * 1e-9;
  report.static_mj = options.static_watts * sim.total_s * 1e3;
  return report;
}

}  // namespace lcmm::sim
