#include "sim/tile_sim.hpp"

#include <algorithm>

#include "obs/scope.hpp"

namespace lcmm::sim {

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

bool bit(std::uint8_t mask, core::TensorSource s) {
  return (mask >> static_cast<int>(s)) & 1u;
}

/// Pipeline state for the four contended resources plus the two-deep
/// ping-pong buffer dependence (loads for tile t reuse the buffer freed by
/// the compute of tile t-2).
struct Pipeline {
  double if_free = 0.0;
  double wt_free = 0.0;
  double of_free = 0.0;
  double comp_free = 0.0;
  double comp_end_minus1 = 0.0;
  double comp_end_minus2 = 0.0;
  double makespan = 0.0;

  TileSimResult* stats;

  double run_tile(double if_dur, double wt_dur, double comp_dur,
                  double res_dur, double of_dur) {
    const double load_gate = comp_end_minus2;  // buffer recycling
    const double if_done = if_dur > 0
                               ? (if_free = std::max(if_free, load_gate) + if_dur)
                               : load_gate;
    const double wt_done = wt_dur > 0
                               ? (wt_free = std::max(wt_free, load_gate) + wt_dur)
                               : load_gate;
    const double comp_start =
        std::max({if_done, wt_done, comp_free});
    const double comp_end = comp_start + comp_dur;
    comp_free = comp_end;
    comp_end_minus2 = comp_end_minus1;
    comp_end_minus1 = comp_end;
    stats->if_busy_s += if_dur;
    stats->wt_busy_s += wt_dur;
    stats->compute_busy_s += comp_dur;
    double end = comp_end;
    // The fused residual is read on the input-feature interface during
    // write-out and must complete before the store can merge.
    double store_gate = comp_end;
    if (res_dur > 0) {
      if_free = std::max(if_free, comp_end) + res_dur;
      stats->if_busy_s += res_dur;
      store_gate = if_free;
      end = if_free;
    }
    if (of_dur > 0) {
      of_free = std::max(of_free, store_gate) + of_dur;
      stats->of_busy_s += of_dur;
      end = of_free;
    }
    ++stats->num_tiles;
    makespan = std::max(makespan, end);
    return end;
  }
};

}  // namespace

TileSimResult simulate_layer_tiles(const hw::PerfModel& model,
                                   graph::LayerId id,
                                   std::uint8_t on_chip_mask) {
  const graph::ComputationGraph& graph = model.graph();
  const graph::Layer& layer = graph.layer(id);
  const graph::FeatureShape& in = graph.input_shape(id);
  const graph::FeatureShape& out = graph.own_output_shape(id);
  const hw::AcceleratorDesign& design = model.design();
  const hw::SystolicArrayConfig& array = design.array;
  const hw::TileConfig& tile = design.tile;
  const int bpe = hw::bytes_per_elem(design.precision);
  const double cycle_s = 1.0 / (design.freq_mhz * 1e6);
  const mem::DdrModel& ddr = model.ddr();

  TileSimResult result;
  Pipeline pipe;
  pipe.stats = &result;

  const bool if_off = !bit(on_chip_mask, core::TensorSource::kInput);
  const bool res_off = !bit(on_chip_mask, core::TensorSource::kResidual);
  const bool wt_off = !bit(on_chip_mask, core::TensorSource::kWeight);
  const bool of_off = !bit(on_chip_mask, core::TensorSource::kOutput);

  if (!layer.is_conv()) {
    // Pooling: a single streaming pass.
    const hw::LayerTiming& t = model.timing(id);
    pipe.run_tile(if_off ? t.if_s : 0.0, 0.0, t.compute_s, 0.0,
                  of_off ? t.of_s : 0.0);
    result.latency_s = pipe.makespan;
    return result;
  }

  const hw::LayerTileGeometry geom =
      layer_tile_geometry(graph, id, array, tile);
  const std::int64_t kk =
      static_cast<std::int64_t>(layer.conv.kernel_h) * layer.conv.kernel_w;

  // Bursts as in the analytical traffic model.
  const int stride = layer.conv.stride;
  const int in_tile_cols =
      std::min((tile.tw - 1) * stride + layer.conv.kernel_w, in.width);
  const double if_burst =
      static_cast<double>(std::min(tile.tc, in.channels)) * in_tile_cols * bpe;
  const double wt_burst = static_cast<double>(array.rows) *
                          std::min(tile.tc, geom.group_channels) * kk * bpe;
  const double of_burst =
      static_cast<double>(std::min(array.rows, out.channels)) * tile.tw * bpe;

  for (int m0 = 0; m0 < out.channels; m0 += array.rows) {
    const int m_t = std::min(array.rows, out.channels - m0);
    for (int h0 = 0; h0 < out.height; h0 += tile.th) {
      const int th_t = std::min(tile.th, out.height - h0);
      // Offset-aware halo clipping: padding rows/cols are generated on
      // chip and never fetched (matches hw::layer_tile_geometry).
      const int in_r0 = std::max(0, h0 * stride - layer.conv.pad_h);
      const int in_r1 = std::min(in.height - 1, (h0 + th_t - 1) * stride -
                                                    layer.conv.pad_h +
                                                    layer.conv.kernel_h - 1);
      const int in_rows = std::max(0, in_r1 - in_r0 + 1);
      for (int w0 = 0; w0 < out.width; w0 += tile.tw) {
        const int tw_t = std::min(tile.tw, out.width - w0);
        const int in_c0 = std::max(0, w0 * stride - layer.conv.pad_w);
        const int in_c1 = std::min(in.width - 1, (w0 + tw_t - 1) * stride -
                                                     layer.conv.pad_w +
                                                     layer.conv.kernel_w - 1);
        const int in_cols = std::max(0, in_c1 - in_c0 + 1);
        const std::int64_t px_steps =
            ceil_div(static_cast<std::int64_t>(th_t) * tw_t,
                     array.effective_cols());
        for (int c0 = 0; c0 < geom.group_channels; c0 += tile.tc) {
          const int c_t = std::min(tile.tc, geom.group_channels - c0);
          const bool last_c = c0 + tile.tc >= geom.group_channels;

          double if_dur = 0.0;
          if (if_off) {
            // Grouped convs fetch each covered group's slice: scale the
            // per-group channel tile by the groups this m-tile spans.
            const double group_factor =
                static_cast<double>(geom.channels_per_mtile) /
                geom.group_channels;
            const double bytes = static_cast<double>(c_t) * group_factor *
                                 in_rows * in_cols * bpe;
            if_dur = ddr.transfer_seconds(bytes, if_burst);
          }
          double wt_dur = 0.0;
          if (wt_off) {
            const double bytes = static_cast<double>(m_t) * c_t * kk * bpe;
            wt_dur = ddr.transfer_seconds(bytes, wt_burst);
          }
          const double comp_dur =
              static_cast<double>(px_steps * ceil_div(c_t * kk, array.simd) +
                                  array.rows + array.cols + array.simd) *
              cycle_s;
          double of_dur = 0.0;
          double res_dur = 0.0;
          if (last_c) {
            const double slice_bytes =
                static_cast<double>(m_t) * th_t * tw_t * bpe;
            if (of_off) of_dur = ddr.transfer_seconds(slice_bytes, of_burst);
            if (layer.has_residual() && res_off) {
              res_dur = ddr.transfer_seconds(slice_bytes, of_burst);
            }
          }
          pipe.run_tile(if_dur, wt_dur, comp_dur, res_dur, of_dur);
        }
      }
    }
  }
  result.latency_s = pipe.makespan;
  return result;
}

double tile_sim_total_latency(const hw::PerfModel& model,
                              const core::OnChipState& state) {
  LCMM_SPAN("tile_sim");
  double total = 0.0;
  std::int64_t tiles = 0;
  for (const graph::Layer& layer : model.graph().layers()) {
    const TileSimResult r =
        simulate_layer_tiles(model, layer.id, state.layer_mask(layer.id));
    total += r.latency_s;
    tiles += r.num_tiles;
  }
  LCMM_COUNT("layers", static_cast<std::int64_t>(model.graph().num_layers()));
  LCMM_COUNT("tiles", tiles);
  return total;
}

}  // namespace lcmm::sim
