#include "models/models.hpp"
#include "util/rng.hpp"

namespace lcmm::models {

graph::ComputationGraph random_graph(std::uint64_t seed,
                                     const RandomGraphOptions& options) {
  util::Rng rng(seed);
  graph::ComputationGraph g("random_" + std::to_string(seed));
  int h = options.min_extent +
          4 * static_cast<int>(rng.next_below(
                  static_cast<std::uint64_t>(
                      (options.max_extent - options.min_extent) / 4 + 1)));
  const int c0 = 16 << rng.next_below(3);
  graph::ValueId x = g.add_input("in", {c0, h, h});
  const int steps =
      options.min_layers +
      static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
          options.max_layers - options.min_layers + 1)));
  int id = 0;
  for (int s = 0; s < steps; ++s) {
    const auto roll = rng.next_below(10);
    const std::string n = "l" + std::to_string(id++);
    const int out_c = 16 << rng.next_below(4);
    if (roll < 5) {  // plain conv, occasionally strided
      const int k = rng.next_bool(0.5) ? 1 : 3;
      const int stride = (h >= 8 && rng.next_bool(0.2)) ? 2 : 1;
      x = g.add_conv(n, x, {out_c, k, k, stride, k / 2, k / 2, 1});
    } else if (roll < 7 && h >= 4) {  // pool
      x = g.add_pool(n, x, {graph::PoolType::kMax, 2, 2, 0});
    } else {  // branch + concat
      const int branches = 2 + static_cast<int>(rng.next_below(2));
      std::vector<graph::ValueId> parts;
      for (int b = 0; b < branches; ++b) {
        const int k = rng.next_bool(0.5) ? 1 : 3;
        parts.push_back(g.add_conv(n + "_b" + std::to_string(b), x,
                                   {out_c / 2 + 8, k, k, 1, k / 2, k / 2, 1}));
      }
      x = g.add_concat(n + "_cat", parts);
    }
    h = g.value(x).shape.height;
  }
  g.validate();
  return g;
}

}  // namespace lcmm::models
