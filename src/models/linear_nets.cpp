#include "models/models.hpp"

namespace lcmm::models {

using graph::ComputationGraph;
using graph::ConvParams;
using graph::FeatureShape;
using graph::PoolParams;
using graph::PoolType;
using graph::ValueId;

graph::ComputationGraph build_alexnet() {
  ComputationGraph g("alexnet");
  g.set_stage("features");
  ValueId x = g.add_input("image", FeatureShape{3, 227, 227});
  x = g.add_conv("conv1", x, ConvParams{96, 11, 11, 4, 0, 0});
  x = g.add_pool("pool1", x, PoolParams{PoolType::kMax, 3, 2, 0});
  x = g.add_conv("conv2", x, ConvParams{256, 5, 5, 1, 2, 2});
  x = g.add_pool("pool2", x, PoolParams{PoolType::kMax, 3, 2, 0});
  x = g.add_conv("conv3", x, ConvParams{384, 3, 3, 1, 1, 1});
  x = g.add_conv("conv4", x, ConvParams{384, 3, 3, 1, 1, 1});
  x = g.add_conv("conv5", x, ConvParams{256, 3, 3, 1, 1, 1});
  x = g.add_pool("pool5", x, PoolParams{PoolType::kMax, 3, 2, 0});
  g.set_stage("classifier");
  // The 6x6x256 activation collapses into the first FC layer, modelled as a
  // 6x6 "valid" convolution producing a 1x1 map.
  x = g.add_conv("fc6", x, ConvParams{4096, 6, 6, 1, 0, 0});
  x = g.add_fc("fc7", x, 4096);
  g.add_fc("fc8", x, 1000);
  g.validate();
  return g;
}

graph::ComputationGraph build_vgg16() {
  ComputationGraph g("vgg16");
  ValueId x = g.add_input("image", FeatureShape{3, 224, 224});
  const int stage_channels[5] = {64, 128, 256, 512, 512};
  const int stage_convs[5] = {2, 2, 3, 3, 3};
  for (int s = 0; s < 5; ++s) {
    const std::string stage = "conv" + std::to_string(s + 1);
    g.set_stage(stage);
    for (int c = 0; c < stage_convs[s]; ++c) {
      x = g.add_conv(stage + "_" + std::to_string(c + 1), x,
                     ConvParams{stage_channels[s], 3, 3, 1, 1, 1});
    }
    x = g.add_pool("pool" + std::to_string(s + 1), x,
                   PoolParams{PoolType::kMax, 2, 2, 0});
  }
  g.set_stage("classifier");
  x = g.add_conv("fc6", x, ConvParams{4096, 7, 7, 1, 0, 0});
  x = g.add_fc("fc7", x, 4096);
  g.add_fc("fc8", x, 1000);
  g.validate();
  return g;
}

}  // namespace lcmm::models
