#include <stdexcept>

#include "models/models.hpp"

namespace lcmm::models {

graph::ComputationGraph build_by_name(const std::string& name) {
  if (name == "resnet18") return build_resnet(18);
  if (name == "resnet34") return build_resnet(34);
  if (name == "resnet50") return build_resnet(50);
  if (name == "resnet101") return build_resnet(101);
  if (name == "resnet152") return build_resnet(152);
  if (name == "googlenet") return build_googlenet();
  if (name == "inception_v4") return build_inception_v4();
  if (name == "alexnet") return build_alexnet();
  if (name == "vgg16") return build_vgg16();
  if (name == "mobilenet_v1") return build_mobilenet_v1();
  if (name == "squeezenet") return build_squeezenet();
  throw std::invalid_argument("unknown model '" + name + "'");
}

std::vector<std::string> model_names() {
  return {"resnet18",     "resnet34",  "resnet50",     "resnet101",
          "resnet152",    "googlenet",
          "inception_v4", "alexnet",   "vgg16",        "mobilenet_v1",
          "squeezenet"};
}

}  // namespace lcmm::models
