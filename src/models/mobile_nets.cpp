#include <array>

#include "models/models.hpp"

namespace lcmm::models {

using graph::ComputationGraph;
using graph::ConvParams;
using graph::FeatureShape;
using graph::PoolParams;
using graph::PoolType;
using graph::ValueId;

graph::ComputationGraph build_mobilenet_v1() {
  ComputationGraph g("mobilenet_v1");
  g.set_stage("conv1");
  ValueId x = g.add_input("image", FeatureShape{3, 224, 224});
  x = g.add_conv("conv1", x, ConvParams{32, 3, 3, 2, 1, 1});

  // Depthwise-separable blocks: 3x3 depthwise + 1x1 pointwise.
  struct Block {
    int out_channels;
    int stride;
  };
  static constexpr Block kBlocks[] = {
      {64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},  {512, 2}, {512, 1},
      {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1}};
  int in_channels = 32;
  int index = 0;
  for (const Block& b : kBlocks) {
    const std::string stage = "dws" + std::to_string(++index);
    g.set_stage(stage);
    ConvParams dw{in_channels, 3, 3, b.stride, 1, 1};
    dw.groups = in_channels;  // depthwise
    x = g.add_conv(stage + "/dw", x, dw);
    x = g.add_conv(stage + "/pw", x, ConvParams{b.out_channels, 1, 1, 1, 0, 0});
    in_channels = b.out_channels;
  }

  g.set_stage("head");
  x = g.add_pool("global_pool", x, PoolParams{PoolType::kAvg, 7, 1, 0, true});
  g.add_fc("fc1000", x, 1000);
  g.validate();
  return g;
}

namespace {

/// SqueezeNet fire module: squeeze 1x1 then parallel expand 1x1/3x3 concat.
ValueId fire(ComputationGraph& g, const std::string& name, ValueId in,
             int squeeze, int expand) {
  g.set_stage(name);
  const ValueId s = g.add_conv(name + "/squeeze1x1", in,
                               ConvParams{squeeze, 1, 1, 1, 0, 0});
  const ValueId e1 = g.add_conv(name + "/expand1x1", s,
                                ConvParams{expand, 1, 1, 1, 0, 0});
  const ValueId e3 = g.add_conv(name + "/expand3x3", s,
                                ConvParams{expand, 3, 3, 1, 1, 1});
  const std::array<ValueId, 2> parts{e1, e3};
  return g.add_concat(name + "/concat", parts);
}

}  // namespace

graph::ComputationGraph build_squeezenet() {
  // SqueezeNet v1.1 (the 1.1 variant pools earlier, which shrinks compute).
  ComputationGraph g("squeezenet");
  g.set_stage("conv1");
  ValueId x = g.add_input("image", FeatureShape{3, 227, 227});
  x = g.add_conv("conv1", x, ConvParams{64, 3, 3, 2, 0, 0});
  x = g.add_pool("pool1", x, PoolParams{PoolType::kMax, 3, 2, 0});
  x = fire(g, "fire2", x, 16, 64);
  x = fire(g, "fire3", x, 16, 64);
  x = g.add_pool("pool3", x, PoolParams{PoolType::kMax, 3, 2, 0});
  x = fire(g, "fire4", x, 32, 128);
  x = fire(g, "fire5", x, 32, 128);
  x = g.add_pool("pool5", x, PoolParams{PoolType::kMax, 3, 2, 0});
  x = fire(g, "fire6", x, 48, 192);
  x = fire(g, "fire7", x, 48, 192);
  x = fire(g, "fire8", x, 64, 256);
  x = fire(g, "fire9", x, 64, 256);
  g.set_stage("head");
  // Classifier: 1x1 conv to 1000 maps then global average pooling.
  x = g.add_conv("conv10", x, ConvParams{1000, 1, 1, 1, 0, 0});
  g.add_pool("global_pool", x, PoolParams{PoolType::kAvg, 13, 1, 0, true});
  g.validate();
  return g;
}

}  // namespace lcmm::models
