#include <stdexcept>

#include "models/models.hpp"

namespace lcmm::models {

using graph::ComputationGraph;
using graph::ConvParams;
using graph::FeatureShape;
using graph::PoolParams;
using graph::PoolType;
using graph::ValueId;

namespace {

/// One bottleneck residual block: 1x1/s -> 3x3 -> 1x1(4c) with the shortcut
/// add fused into the final 1x1 conv. The first block of each stage uses a
/// projection shortcut (1x1/s conv); later blocks use the identity.
ValueId bottleneck(ComputationGraph& g, const std::string& name, ValueId in,
                   int mid_channels, int stride, bool project) {
  const int out_channels = mid_channels * 4;
  ValueId shortcut = in;
  if (project) {
    shortcut = g.add_conv(name + "_proj",
                          in, ConvParams{out_channels, 1, 1, stride, 0, 0});
  }
  ValueId x = g.add_conv(name + "_1x1a", in,
                         ConvParams{mid_channels, 1, 1, stride, 0, 0});
  x = g.add_conv(name + "_3x3", x, ConvParams{mid_channels, 3, 3, 1, 1, 1});
  return g.add_conv(name + "_1x1b", x, ConvParams{out_channels, 1, 1, 1, 0, 0},
                    /*residual=*/shortcut);
}

/// Basic residual block (ResNet-18/34): two 3x3 convs, shortcut fused into
/// the second.
ValueId basic_block(ComputationGraph& g, const std::string& name, ValueId in,
                    int channels, int stride, bool project) {
  ValueId shortcut = in;
  if (project) {
    shortcut = g.add_conv(name + "_proj", in,
                          ConvParams{channels, 1, 1, stride, 0, 0});
  }
  ValueId x = g.add_conv(name + "_3x3a", in,
                         ConvParams{channels, 3, 3, stride, 1, 1});
  return g.add_conv(name + "_3x3b", x, ConvParams{channels, 3, 3, 1, 1, 1},
                    /*residual=*/shortcut);
}

}  // namespace

graph::ComputationGraph build_resnet(int depth) {
  int blocks[4];
  bool bottlenecks = true;
  switch (depth) {
    case 18: blocks[0] = 2; blocks[1] = 2; blocks[2] = 2; blocks[3] = 2;
             bottlenecks = false; break;
    case 34: blocks[0] = 3; blocks[1] = 4; blocks[2] = 6; blocks[3] = 3;
             bottlenecks = false; break;
    case 50: blocks[0] = 3; blocks[1] = 4; blocks[2] = 6; blocks[3] = 3; break;
    case 101: blocks[0] = 3; blocks[1] = 4; blocks[2] = 23; blocks[3] = 3; break;
    case 152: blocks[0] = 3; blocks[1] = 8; blocks[2] = 36; blocks[3] = 3; break;
    default:
      throw std::invalid_argument("build_resnet: unsupported depth " +
                                  std::to_string(depth));
  }
  ComputationGraph g("resnet" + std::to_string(depth));
  g.set_stage("conv1");
  ValueId x = g.add_input("image", FeatureShape{3, 224, 224});
  x = g.add_conv("conv1", x, ConvParams{64, 7, 7, 2, 3, 3});
  x = g.add_pool("pool1", x, PoolParams{PoolType::kMax, 3, 2, 1});

  const int mids[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    for (int b = 0; b < blocks[stage]; ++b) {
      const std::string name =
          "res" + std::to_string(stage + 2) +
          (blocks[stage] > 8 ? "b" + std::to_string(b)
                             : std::string(1, static_cast<char>('a' + b)));
      g.set_stage(name);
      // Downsampling happens at the first block of stages 3..5.
      const int stride = (stage > 0 && b == 0) ? 2 : 1;
      if (bottlenecks) {
        x = bottleneck(g, name, x, mids[stage], stride, /*project=*/b == 0);
      } else {
        // Basic blocks only project when the shape changes (stage entry
        // with stride or channel growth); conv2_x keeps the identity.
        const bool project = b == 0 && stage > 0;
        x = basic_block(g, name, x, mids[stage], stride, project);
      }
    }
  }

  g.set_stage("head");
  x = g.add_pool("pool5", x, PoolParams{PoolType::kAvg, 7, 1, 0, /*global=*/true});
  g.add_fc("fc1000", x, 1000);
  g.validate();
  return g;
}

}  // namespace lcmm::models
