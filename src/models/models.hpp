// Layer-exact builders for the DNN models evaluated in the paper (§4):
// ResNet-152 (RN), GoogLeNet (GN) and Inception-v4 (IN), plus ResNet-50
// (used by the Table 3 comparison against Cloud-DNN) and two linear
// baselines (AlexNet, VGG-16) for tests and examples.
//
// All builders tag layers with stage labels ("inception_3a", "res4b7", ...)
// so the per-block analyses of Fig. 2(b) and Fig. 8 can group them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace lcmm::models {

/// ResNet v1 with bottleneck blocks. Supported depths: 50, 101, 152.
graph::ComputationGraph build_resnet(int depth);

/// GoogLeNet / Inception-v1 (the 9 inception blocks 3a..5b).
graph::ComputationGraph build_googlenet();

/// Inception-v4 (stem + 4xA + reduction-A + 7xB + reduction-B + 3xC);
/// exactly 14 inception blocks as the paper's design-space analysis uses.
graph::ComputationGraph build_inception_v4();

/// Linear baselines with no branching (the "simple networks" of the
/// paper's introduction).
graph::ComputationGraph build_alexnet();
graph::ComputationGraph build_vgg16();

/// MobileNet-v1 (depthwise-separable convolutions; extremely bandwidth
/// bound on channel-vectorized arrays — a strong LCMM showcase).
graph::ComputationGraph build_mobilenet_v1();

/// SqueezeNet v1.1 (fire modules: squeeze 1x1 + parallel expand concat).
graph::ComputationGraph build_squeezenet();

/// The six-convolution snippet of block inception_c1 that the paper's
/// Fig. 3 walks through: one input value consumed by three branch convs
/// (the f1/f2/f4 tensors that "actually contain the same data"), plus two
/// stacked convs and a concatenation.
graph::ComputationGraph build_inception_c1_snippet();

/// Deterministic random DAG generator (chains, strided downsampling,
/// pooling and inception-style branch/concat blocks), used by the property
/// tests and the random-graph stress bench.
struct RandomGraphOptions {
  int min_layers = 4;
  int max_layers = 13;
  int min_extent = 16;  // input spatial extent range (stepped by 4)
  int max_extent = 44;
};
graph::ComputationGraph random_graph(std::uint64_t seed,
                                     const RandomGraphOptions& options = {});

/// Builds a model by canonical name (see model_names()).
/// Throws std::invalid_argument for unknown names.
graph::ComputationGraph build_by_name(const std::string& name);

/// Names accepted by build_by_name().
std::vector<std::string> model_names();

}  // namespace lcmm::models
