#include <array>

#include "models/models.hpp"

namespace lcmm::models {

using graph::ComputationGraph;
using graph::ConvParams;
using graph::FeatureShape;
using graph::ValueId;

graph::ComputationGraph build_inception_c1_snippet() {
  ComputationGraph g("inception_c1_snippet");
  g.set_stage("inception_c1");
  // The block input: output of reduction-B, 1536 channels at 8x8.
  const ValueId in = g.add_input("block_in", FeatureShape{1536, 8, 8});
  // C1: plain 1x1 branch.
  const ValueId c1 = g.add_conv("C1", in, ConvParams{256, 1, 1, 1, 0, 0});
  // C2 -> C3: 1x1 reduce feeding a 1x3 conv.
  const ValueId c2 = g.add_conv("C2", in, ConvParams{384, 1, 1, 1, 0, 0});
  const ValueId c3 = g.add_conv("C3", c2, ConvParams{256, 1, 3, 1, 0, 1});
  // C4 -> C5 -> C6: 1x1 reduce feeding stacked asymmetric convs.
  const ValueId c4 = g.add_conv("C4", in, ConvParams{384, 1, 1, 1, 0, 0});
  const ValueId c5 = g.add_conv("C5", c4, ConvParams{448, 1, 3, 1, 0, 1});
  const ValueId c6 = g.add_conv("C6", c5, ConvParams{256, 3, 1, 1, 1, 0});
  const std::array<ValueId, 3> parts{c1, c3, c6};
  const ValueId out = g.add_concat("block_out", parts);
  // A consumer for the concatenated value so the output lifespans extend
  // past the block, as they do inside the full network.
  g.add_conv("next", out, ConvParams{256, 1, 1, 1, 0, 0});
  g.validate();
  return g;
}

}  // namespace lcmm::models
