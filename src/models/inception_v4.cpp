#include <array>
#include <string>

#include "models/models.hpp"

namespace lcmm::models {

using graph::ComputationGraph;
using graph::ConvParams;
using graph::FeatureShape;
using graph::PoolParams;
using graph::PoolType;
using graph::ValueId;

namespace {

// Convenience constructors. "Valid" convs/pools have zero padding; "same"
// convs pad to preserve the spatial extent (kernel is odd everywhere).
ConvParams conv_valid(int out, int kh, int kw, int stride = 1) {
  return ConvParams{out, kh, kw, stride, 0, 0};
}
ConvParams conv_same(int out, int kh, int kw) {
  return ConvParams{out, kh, kw, 1, kh / 2, kw / 2};
}
PoolParams max_valid_s2() { return PoolParams{PoolType::kMax, 3, 2, 0}; }
PoolParams avg_same_s1() { return PoolParams{PoolType::kAvg, 3, 1, 1}; }

ValueId stem(ComputationGraph& g, ValueId x) {
  g.set_stage("stem");
  x = g.add_conv("stem/conv1_3x3_s2", x, conv_valid(32, 3, 3, 2));   // 149x149
  x = g.add_conv("stem/conv2_3x3", x, conv_valid(32, 3, 3));         // 147x147
  x = g.add_conv("stem/conv3_3x3", x, conv_same(64, 3, 3));          // 147x147

  const ValueId pool_a = g.add_pool("stem/mixed3a_pool", x, max_valid_s2());
  const ValueId conv_a = g.add_conv("stem/mixed3a_conv", x, conv_valid(96, 3, 3, 2));
  std::array<ValueId, 2> m3{pool_a, conv_a};
  x = g.add_concat("stem/mixed_3a", m3);                              // 160x73x73

  ValueId b1 = g.add_conv("stem/mixed4a_b1_1x1", x, conv_same(64, 1, 1));
  b1 = g.add_conv("stem/mixed4a_b1_3x3", b1, conv_valid(96, 3, 3));   // 71x71
  ValueId b2 = g.add_conv("stem/mixed4a_b2_1x1", x, conv_same(64, 1, 1));
  b2 = g.add_conv("stem/mixed4a_b2_7x1", b2, conv_same(64, 7, 1));
  b2 = g.add_conv("stem/mixed4a_b2_1x7", b2, conv_same(64, 1, 7));
  b2 = g.add_conv("stem/mixed4a_b2_3x3", b2, conv_valid(96, 3, 3));   // 71x71
  std::array<ValueId, 2> m4{b1, b2};
  x = g.add_concat("stem/mixed_4a", m4);                              // 192x71x71

  const ValueId conv_b = g.add_conv("stem/mixed5a_conv", x, conv_valid(192, 3, 3, 2));
  const ValueId pool_b = g.add_pool("stem/mixed5a_pool", x, max_valid_s2());
  std::array<ValueId, 2> m5{conv_b, pool_b};
  return g.add_concat("stem/mixed_5a", m5);                           // 384x35x35
}

ValueId inception_a(ComputationGraph& g, int index, ValueId in) {
  const std::string p = "inception_a" + std::to_string(index);
  g.set_stage(p);
  ValueId b1 = g.add_pool(p + "/pool", in, avg_same_s1());
  b1 = g.add_conv(p + "/pool_proj", b1, conv_same(96, 1, 1));
  const ValueId b2 = g.add_conv(p + "/1x1", in, conv_same(96, 1, 1));
  ValueId b3 = g.add_conv(p + "/3x3_reduce", in, conv_same(64, 1, 1));
  b3 = g.add_conv(p + "/3x3", b3, conv_same(96, 3, 3));
  ValueId b4 = g.add_conv(p + "/d3x3_reduce", in, conv_same(64, 1, 1));
  b4 = g.add_conv(p + "/d3x3_a", b4, conv_same(96, 3, 3));
  b4 = g.add_conv(p + "/d3x3_b", b4, conv_same(96, 3, 3));
  std::array<ValueId, 4> parts{b1, b2, b3, b4};
  return g.add_concat(p + "/output", parts);                          // 384x35x35
}

ValueId reduction_a(ComputationGraph& g, ValueId in) {
  g.set_stage("reduction_a");
  const ValueId b1 = g.add_pool("reduction_a/pool", in, max_valid_s2());
  const ValueId b2 = g.add_conv("reduction_a/3x3", in, conv_valid(384, 3, 3, 2));
  ValueId b3 = g.add_conv("reduction_a/d3x3_reduce", in, conv_same(192, 1, 1));
  b3 = g.add_conv("reduction_a/d3x3_a", b3, conv_same(224, 3, 3));
  b3 = g.add_conv("reduction_a/d3x3_b", b3, conv_valid(256, 3, 3, 2));
  std::array<ValueId, 3> parts{b1, b2, b3};
  return g.add_concat("reduction_a/output", parts);                   // 1024x17x17
}

ValueId inception_b(ComputationGraph& g, int index, ValueId in) {
  const std::string p = "inception_b" + std::to_string(index);
  g.set_stage(p);
  ValueId b1 = g.add_pool(p + "/pool", in, avg_same_s1());
  b1 = g.add_conv(p + "/pool_proj", b1, conv_same(128, 1, 1));
  const ValueId b2 = g.add_conv(p + "/1x1", in, conv_same(384, 1, 1));
  ValueId b3 = g.add_conv(p + "/7x7_reduce", in, conv_same(192, 1, 1));
  b3 = g.add_conv(p + "/1x7", b3, conv_same(224, 1, 7));
  b3 = g.add_conv(p + "/7x1", b3, conv_same(256, 7, 1));
  ValueId b4 = g.add_conv(p + "/d7x7_reduce", in, conv_same(192, 1, 1));
  b4 = g.add_conv(p + "/d7x7_1x7a", b4, conv_same(192, 1, 7));
  b4 = g.add_conv(p + "/d7x7_7x1a", b4, conv_same(224, 7, 1));
  b4 = g.add_conv(p + "/d7x7_1x7b", b4, conv_same(224, 1, 7));
  b4 = g.add_conv(p + "/d7x7_7x1b", b4, conv_same(256, 7, 1));
  std::array<ValueId, 4> parts{b1, b2, b3, b4};
  return g.add_concat(p + "/output", parts);                          // 1024x17x17
}

ValueId reduction_b(ComputationGraph& g, ValueId in) {
  g.set_stage("reduction_b");
  const ValueId b1 = g.add_pool("reduction_b/pool", in, max_valid_s2());
  ValueId b2 = g.add_conv("reduction_b/3x3_reduce", in, conv_same(192, 1, 1));
  b2 = g.add_conv("reduction_b/3x3", b2, conv_valid(192, 3, 3, 2));
  ValueId b3 = g.add_conv("reduction_b/7x7_reduce", in, conv_same(256, 1, 1));
  b3 = g.add_conv("reduction_b/1x7", b3, conv_same(256, 1, 7));
  b3 = g.add_conv("reduction_b/7x1", b3, conv_same(320, 7, 1));
  b3 = g.add_conv("reduction_b/d3x3", b3, conv_valid(320, 3, 3, 2));
  std::array<ValueId, 3> parts{b1, b2, b3};
  return g.add_concat("reduction_b/output", parts);                   // 1536x8x8
}

ValueId inception_c(ComputationGraph& g, int index, ValueId in) {
  const std::string p = "inception_c" + std::to_string(index);
  g.set_stage(p);
  ValueId b1 = g.add_pool(p + "/pool", in, avg_same_s1());
  b1 = g.add_conv(p + "/pool_proj", b1, conv_same(256, 1, 1));
  const ValueId b2 = g.add_conv(p + "/1x1", in, conv_same(256, 1, 1));
  const ValueId b3stem = g.add_conv(p + "/3x3_reduce", in, conv_same(384, 1, 1));
  const ValueId b3a = g.add_conv(p + "/3x3_1x3", b3stem, conv_same(256, 1, 3));
  const ValueId b3b = g.add_conv(p + "/3x3_3x1", b3stem, conv_same(256, 3, 1));
  ValueId b4 = g.add_conv(p + "/d3x3_reduce", in, conv_same(384, 1, 1));
  b4 = g.add_conv(p + "/d3x3_1x3", b4, conv_same(448, 1, 3));
  b4 = g.add_conv(p + "/d3x3_3x1", b4, conv_same(512, 3, 1));
  const ValueId b4a = g.add_conv(p + "/d3x3_out_3x1", b4, conv_same(256, 3, 1));
  const ValueId b4b = g.add_conv(p + "/d3x3_out_1x3", b4, conv_same(256, 1, 3));
  std::array<ValueId, 6> parts{b1, b2, b3a, b3b, b4a, b4b};
  return g.add_concat(p + "/output", parts);                          // 1536x8x8
}

}  // namespace

graph::ComputationGraph build_inception_v4() {
  ComputationGraph g("inception_v4");
  ValueId x = g.add_input("image", FeatureShape{3, 299, 299});
  x = stem(g, x);
  for (int i = 1; i <= 4; ++i) x = inception_a(g, i, x);
  x = reduction_a(g, x);
  for (int i = 1; i <= 7; ++i) x = inception_b(g, i, x);
  x = reduction_b(g, x);
  for (int i = 1; i <= 3; ++i) x = inception_c(g, i, x);
  g.set_stage("head");
  x = g.add_pool("global_pool", x, PoolParams{PoolType::kAvg, 8, 1, 0, /*global=*/true});
  g.add_fc("classifier", x, 1000);
  g.validate();
  return g;
}

}  // namespace lcmm::models
