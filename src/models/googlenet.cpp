#include <array>

#include "models/models.hpp"

namespace lcmm::models {

using graph::ComputationGraph;
using graph::ConvParams;
using graph::FeatureShape;
using graph::PoolParams;
using graph::PoolType;
using graph::ValueId;

namespace {

struct InceptionSpec {
  const char* name;
  int b1;           // 1x1
  int b2r, b2;      // 3x3 reduce, 3x3
  int b3r, b3;      // 5x5 reduce, 5x5
  int b4;           // pool projection 1x1
};

ValueId inception(ComputationGraph& g, const InceptionSpec& s, ValueId in) {
  const std::string p = std::string("inception_") + s.name;
  g.set_stage(p);
  const ValueId branch1 = g.add_conv(p + "/1x1", in, ConvParams{s.b1, 1, 1, 1, 0, 0});
  ValueId branch2 = g.add_conv(p + "/3x3_reduce", in, ConvParams{s.b2r, 1, 1, 1, 0, 0});
  branch2 = g.add_conv(p + "/3x3", branch2, ConvParams{s.b2, 3, 3, 1, 1, 1});
  ValueId branch3 = g.add_conv(p + "/5x5_reduce", in, ConvParams{s.b3r, 1, 1, 1, 0, 0});
  branch3 = g.add_conv(p + "/5x5", branch3, ConvParams{s.b3, 5, 5, 1, 2, 2});
  ValueId branch4 =
      g.add_pool(p + "/pool", in, PoolParams{PoolType::kMax, 3, 1, 1, false, true});
  branch4 = g.add_conv(p + "/pool_proj", branch4, ConvParams{s.b4, 1, 1, 1, 0, 0});
  const std::array<ValueId, 4> parts{branch1, branch2, branch3, branch4};
  return g.add_concat(p + "/output", parts);
}

}  // namespace

graph::ComputationGraph build_googlenet() {
  ComputationGraph g("googlenet");
  g.set_stage("conv1");
  ValueId x = g.add_input("image", FeatureShape{3, 224, 224});
  x = g.add_conv("conv1/7x7_s2", x, ConvParams{64, 7, 7, 2, 3, 3});
  x = g.add_pool("pool1/3x3_s2", x, PoolParams{PoolType::kMax, 3, 2, 0, false, true});
  g.set_stage("conv2");
  x = g.add_conv("conv2/3x3_reduce", x, ConvParams{64, 1, 1, 1, 0, 0});
  x = g.add_conv("conv2/3x3", x, ConvParams{192, 3, 3, 1, 1, 1});
  x = g.add_pool("pool2/3x3_s2", x, PoolParams{PoolType::kMax, 3, 2, 0, false, true});

  static constexpr InceptionSpec kSpecs[] = {
      {"3a", 64, 96, 128, 16, 32, 32},    {"3b", 128, 128, 192, 32, 96, 64},
      {"4a", 192, 96, 208, 16, 48, 64},   {"4b", 160, 112, 224, 24, 64, 64},
      {"4c", 128, 128, 256, 24, 64, 64},  {"4d", 112, 144, 288, 32, 64, 64},
      {"4e", 256, 160, 320, 32, 128, 128},{"5a", 256, 160, 320, 32, 128, 128},
      {"5b", 384, 192, 384, 48, 128, 128}};

  for (const InceptionSpec& s : kSpecs) {
    x = inception(g, s, x);
    // Grid reductions after 3b and 4e.
    if (s.name == std::string("3b") || s.name == std::string("4e")) {
      x = g.add_pool(std::string("pool_after_") + s.name, x,
                     PoolParams{PoolType::kMax, 3, 2, 0, false, true});
    }
  }

  g.set_stage("head");
  x = g.add_pool("pool5", x, PoolParams{PoolType::kAvg, 7, 1, 0, /*global=*/true});
  g.add_fc("loss3/classifier", x, 1000);
  g.validate();
  return g;
}

}  // namespace lcmm::models
