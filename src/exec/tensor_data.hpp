// Concrete tensor data for the functional execution layer.
//
// The performance model never touches values, but the tiling/halo/offset
// arithmetic it relies on had better be functionally correct. exec/ runs
// the graph on real data twice — a plain reference interpreter and an
// executor that follows the accelerator's tile schedule — and the two must
// agree EXACTLY. Integer arithmetic keeps equality exact regardless of
// accumulation order (int64 accumulators never overflow for the value
// ranges the synthesizer emits).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace lcmm::exec {

/// CHW-ordered integer feature map.
class Tensor3i {
 public:
  Tensor3i() = default;
  explicit Tensor3i(graph::FeatureShape shape)
      : shape_(shape), data_(static_cast<std::size_t>(shape.elems()), 0) {}

  const graph::FeatureShape& shape() const { return shape_; }
  std::int64_t& at(int c, int h, int w) {
    return data_[index(c, h, w)];
  }
  std::int64_t at(int c, int h, int w) const { return data_[index(c, h, w)]; }
  /// Zero-padded read: out-of-bounds coordinates return 0.
  std::int64_t at_padded(int c, int h, int w) const {
    if (h < 0 || w < 0 || h >= shape_.height || w >= shape_.width) return 0;
    return data_[index(c, h, w)];
  }
  const std::vector<std::int64_t>& raw() const { return data_; }
  std::vector<std::int64_t>& raw() { return data_; }

  bool operator==(const Tensor3i&) const = default;

 private:
  std::size_t index(int c, int h, int w) const {
    return (static_cast<std::size_t>(c) * shape_.height + h) * shape_.width + w;
  }
  graph::FeatureShape shape_;
  std::vector<std::int64_t> data_;
};

/// Per-layer weights: [M][C/groups][Kh][Kw], flattened.
struct LayerWeights {
  std::vector<std::int64_t> data;
  int out_channels = 0;
  int group_channels = 0;
  int kh = 0;
  int kw = 0;

  std::int64_t at(int m, int c, int i, int j) const {
    return data[((static_cast<std::size_t>(m) * group_channels + c) * kh + i) *
                    kw + j];
  }
};

/// Deterministic synthetic inputs/weights in [-8, 7] from a seed, so both
/// executors consume identical data.
Tensor3i synthesize_input(graph::FeatureShape shape, std::uint64_t seed);
LayerWeights synthesize_weights(const graph::ComputationGraph& graph,
                                graph::LayerId layer, std::uint64_t seed);

}  // namespace lcmm::exec
