// Tile-schedule executor: runs the graph on concrete data following the
// accelerator's loop nest — m-tiles of `rows` output channels, th x tw
// spatial tiles, tc-deep channel tiles — materializing every input tile
// (with its halo, clipped at image borders) into an explicit tile buffer
// before computing from it.
//
// The point: compute reads ONLY the materialized tile buffer. If the halo
// arithmetic under-fetches (the same arithmetic the traffic model bills
// DRAM for), the executor throws instead of silently reading the source
// tensor — so exact equality with the reference interpreter proves the
// tiling geometry is functionally correct.
#pragma once

#include "exec/reference.hpp"
#include "hw/perf_model.hpp"

namespace lcmm::exec {

/// Executes the whole graph via the tile schedule of `design` (conv layers;
/// pooling uses the reference path). Same synthesis seed semantics as
/// reference_execute. Throws std::logic_error on halo under-fetch.
ValueMap tiled_execute(const graph::ComputationGraph& graph,
                       const hw::AcceleratorDesign& design,
                       std::uint64_t seed);

}  // namespace lcmm::exec
