#include "exec/tiled.hpp"

#include <algorithm>
#include <stdexcept>

namespace lcmm::exec {

namespace {

/// A materialized input tile: clipped channel planes over the halo extent.
/// Reads outside the fetched region are padding if outside the image,
/// and a hard error if inside it (halo under-fetch).
class InputTile {
 public:
  InputTile(const Tensor3i& src, int c0, int c1, int r0, int r1, int w0, int w1)
      : src_(src), c0_(c0), r0_(r0), w0_(w0),
        channels_(c1 - c0), rows_(r1 - r0), cols_(w1 - w0),
        data_(static_cast<std::size_t>(std::max(0, channels_)) *
                  std::max(0, rows_) * std::max(0, cols_),
              0) {
    for (int c = 0; c < channels_; ++c) {
      for (int r = 0; r < rows_; ++r) {
        for (int w = 0; w < cols_; ++w) {
          data_[index(c, r, w)] = src.at(c0_ + c, r0_ + r, w0_ + w);
        }
      }
    }
  }

  /// Absolute-coordinate read.
  std::int64_t read(int c, int h, int w) const {
    if (h < 0 || w < 0 || h >= src_.shape().height || w >= src_.shape().width) {
      return 0;  // on-chip generated padding
    }
    if (c < c0_ || c >= c0_ + channels_ || h < r0_ || h >= r0_ + rows_ ||
        w < w0_ || w >= w0_ + cols_) {
      throw std::logic_error("tiled_execute: halo under-fetch at c=" +
                             std::to_string(c) + " h=" + std::to_string(h) +
                             " w=" + std::to_string(w));
    }
    return data_[index(c - c0_, h - r0_, w - w0_)];
  }

 private:
  std::size_t index(int c, int r, int w) const {
    return (static_cast<std::size_t>(c) * rows_ + r) * cols_ + w;
  }
  const Tensor3i& src_;
  int c0_, r0_, w0_;
  int channels_, rows_, cols_;
  std::vector<std::int64_t> data_;
};

void tiled_conv(const graph::ComputationGraph& graph, graph::LayerId id,
                const hw::AcceleratorDesign& design, const Tensor3i& input,
                const Tensor3i* residual, const LayerWeights& weights,
                Tensor3i& out) {
  const graph::Layer& l = graph.layer(id);
  const graph::ConvParams& p = l.conv;
  const graph::FeatureShape own = graph.own_output_shape(id);
  const graph::FeatureShape& in = input.shape();
  const int offset = l.output_channel_offset;
  const int rows = design.array.rows;
  const int tc = design.tile.tc;
  const int th = design.tile.th;
  const int tw = design.tile.tw;
  const int group_channels = in.channels / p.groups;
  const int m_per_group = p.out_channels / p.groups;

  for (int m0 = 0; m0 < own.channels; m0 += rows) {
    const int m_t = std::min(rows, own.channels - m0);
    for (int h0 = 0; h0 < own.height; h0 += th) {
      const int th_t = std::min(th, own.height - h0);
      const int in_r0 = std::max(0, h0 * p.stride - p.pad_h);
      const int in_r1 = std::min(in.height, (h0 + th_t - 1) * p.stride -
                                                p.pad_h + p.kernel_h);
      for (int w0 = 0; w0 < own.width; w0 += tw) {
        const int tw_t = std::min(tw, own.width - w0);
        const int in_w0 = std::max(0, w0 * p.stride - p.pad_w);
        const int in_w1 = std::min(in.width, (w0 + tw_t - 1) * p.stride -
                                                 p.pad_w + p.kernel_w);
        // Output-tile accumulators persist across the c-tile loop.
        std::vector<std::int64_t> acc(
            static_cast<std::size_t>(m_t) * th_t * tw_t, 0);
        const auto acc_at = [&](int m, int r, int w) -> std::int64_t& {
          return acc[(static_cast<std::size_t>(m) * th_t + r) * tw_t + w];
        };
        for (int c0 = 0; c0 < group_channels; c0 += tc) {
          const int c_t = std::min(tc, group_channels - c0);
          // Fetch the covered groups' channel slices for this c-tile: the
          // m-tile spans groups [g_lo, g_hi].
          const int g_lo = m0 / m_per_group;
          const int g_hi = (m0 + m_t - 1) / m_per_group;
          std::vector<InputTile> group_tiles;
          group_tiles.reserve(static_cast<std::size_t>(g_hi - g_lo + 1));
          for (int g = g_lo; g <= g_hi; ++g) {
            group_tiles.emplace_back(input, g * group_channels + c0,
                                     g * group_channels + c0 + c_t, in_r0,
                                     in_r1, in_w0, in_w1);
          }
          // Compute this c-tile's contribution from the tile buffers only.
          for (int m = 0; m < m_t; ++m) {
            const int gm = m0 + m;
            const int group = gm / m_per_group;
            const InputTile& tile = group_tiles[static_cast<std::size_t>(
                group - g_lo)];
            for (int oh = 0; oh < th_t; ++oh) {
              for (int ow = 0; ow < tw_t; ++ow) {
                std::int64_t sum = 0;
                for (int c = 0; c < c_t; ++c) {
                  const int ic = group * group_channels + c0 + c;
                  for (int i = 0; i < p.kernel_h; ++i) {
                    for (int j = 0; j < p.kernel_w; ++j) {
                      const int ih = (h0 + oh) * p.stride - p.pad_h + i;
                      const int iw = (w0 + ow) * p.stride - p.pad_w + j;
                      sum += tile.read(ic, ih, iw) *
                             weights.at(gm, c0 + c, i, j);
                    }
                  }
                }
                acc_at(m, oh, ow) += sum;
              }
            }
          }
        }
        // Write-out: fused residual add, then store the slice.
        for (int m = 0; m < m_t; ++m) {
          for (int oh = 0; oh < th_t; ++oh) {
            for (int ow = 0; ow < tw_t; ++ow) {
              std::int64_t v = acc_at(m, oh, ow);
              if (residual != nullptr) {
                v += residual->at(m0 + m, h0 + oh, w0 + ow);
              }
              out.at(offset + m0 + m, h0 + oh, w0 + ow) = v;
            }
          }
        }
      }
    }
  }
}

}  // namespace

ValueMap tiled_execute(const graph::ComputationGraph& graph,
                       const hw::AcceleratorDesign& design,
                       std::uint64_t seed) {
  if (!design.array.valid() || !design.tile.valid()) {
    throw std::invalid_argument("tiled_execute: invalid design");
  }
  ValueMap values;
  for (graph::ValueId vid : graph.live_values()) {
    const graph::Value& v = graph.value(vid);
    if (v.is_graph_input()) {
      values.emplace(vid, synthesize_input(v.shape, seed + vid));
    }
  }
  for (graph::LayerId id : graph.topo_order()) {
    const graph::Layer& l = graph.layer(id);
    auto& out = values.try_emplace(l.output,
                                   Tensor3i(graph.value(l.output).shape))
                    .first->second;
    const Tensor3i& input = values.at(l.input);
    const Tensor3i* residual =
        l.has_residual() ? &values.at(l.residual) : nullptr;
    const LayerWeights weights = synthesize_weights(graph, id, seed);
    if (l.is_conv()) {
      tiled_conv(graph, id, design, input, residual, weights, out);
    } else {
      reference_layer(graph, id, input, residual, weights, out);
    }
  }
  return values;
}

}  // namespace lcmm::exec
