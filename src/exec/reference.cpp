#include "exec/reference.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace lcmm::exec {

void reference_layer(const graph::ComputationGraph& graph,
                     graph::LayerId id, const Tensor3i& input,
                     const Tensor3i* residual, const LayerWeights& weights,
                     Tensor3i& out) {
  const graph::Layer& l = graph.layer(id);
  const graph::FeatureShape own = graph.own_output_shape(id);
  const int offset = l.output_channel_offset;

  if (l.kind == graph::LayerKind::kPool) {
    const graph::PoolParams& p = l.pool;
    const int kernel_h = p.global ? input.shape().height : p.kernel;
    const int kernel_w = p.global ? input.shape().width : p.kernel;
    const int stride = p.global ? 1 : p.stride;
    const int pad = p.global ? 0 : p.pad;
    for (int c = 0; c < own.channels; ++c) {
      for (int oh = 0; oh < own.height; ++oh) {
        for (int ow = 0; ow < own.width; ++ow) {
          std::int64_t acc = p.type == graph::PoolType::kMax
                                 ? std::numeric_limits<std::int64_t>::min()
                                 : 0;
          for (int i = 0; i < kernel_h; ++i) {
            for (int j = 0; j < kernel_w; ++j) {
              const int ih = oh * stride - pad + i;
              const int iw = ow * stride - pad + j;
              // Max pooling ignores padding; sum pooling treats it as 0.
              if (p.type == graph::PoolType::kMax) {
                if (ih < 0 || iw < 0 || ih >= input.shape().height ||
                    iw >= input.shape().width) {
                  continue;
                }
                acc = std::max(acc, input.at(c, ih, iw));
              } else {
                acc += input.at_padded(c, ih, iw);
              }
            }
          }
          out.at(offset + c, oh, ow) = acc;
        }
      }
    }
    return;
  }

  const graph::ConvParams& p = l.conv;
  const int group_channels = input.shape().channels / p.groups;
  const int m_per_group = p.out_channels / p.groups;
  for (int m = 0; m < own.channels; ++m) {
    const int group = m / m_per_group;
    for (int oh = 0; oh < own.height; ++oh) {
      for (int ow = 0; ow < own.width; ++ow) {
        std::int64_t acc = 0;
        for (int c = 0; c < group_channels; ++c) {
          const int ic = group * group_channels + c;
          for (int i = 0; i < p.kernel_h; ++i) {
            for (int j = 0; j < p.kernel_w; ++j) {
              const int ih = oh * p.stride - p.pad_h + i;
              const int iw = ow * p.stride - p.pad_w + j;
              acc += input.at_padded(ic, ih, iw) * weights.at(m, c, i, j);
            }
          }
        }
        if (residual != nullptr) acc += residual->at(m, oh, ow);
        out.at(offset + m, oh, ow) = acc;
      }
    }
  }
}

ValueMap reference_execute(const graph::ComputationGraph& graph,
                           std::uint64_t seed) {
  ValueMap values;
  // Materialize graph inputs.
  for (graph::ValueId vid : graph.live_values()) {
    const graph::Value& v = graph.value(vid);
    if (v.is_graph_input()) {
      values.emplace(vid, synthesize_input(v.shape, seed + vid));
    }
  }
  for (graph::LayerId id : graph.topo_order()) {
    const graph::Layer& l = graph.layer(id);
    auto& out = values.try_emplace(l.output,
                                   Tensor3i(graph.value(l.output).shape))
                    .first->second;
    const Tensor3i& input = values.at(l.input);
    const Tensor3i* residual =
        l.has_residual() ? &values.at(l.residual) : nullptr;
    const LayerWeights weights = synthesize_weights(graph, id, seed);
    reference_layer(graph, id, input, residual, weights, out);
  }
  return values;
}

}  // namespace lcmm::exec
