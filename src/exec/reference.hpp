// Reference interpreter: executes a computation graph on concrete integer
// tensors with straightforward nested loops — the golden semantics the
// tile-schedule executor (exec/tiled.hpp) must match exactly.
#pragma once

#include <map>

#include "exec/tensor_data.hpp"

namespace lcmm::exec {

/// Values produced by an execution, keyed by ValueId (graph inputs
/// included). Concat values hold all their slices.
using ValueMap = std::map<graph::ValueId, Tensor3i>;

/// Executes the whole graph. Inputs and weights are synthesized
/// deterministically from `seed`. Pooling: max, or *sum* for average
/// pooling (integer semantics; both executors agree by construction).
ValueMap reference_execute(const graph::ComputationGraph& graph,
                           std::uint64_t seed);

/// Executes one layer given its (already materialized) input value and
/// weights, writing its slice into `out` at the layer's channel offset.
void reference_layer(const graph::ComputationGraph& graph,
                     graph::LayerId layer, const Tensor3i& input,
                     const Tensor3i* residual, const LayerWeights& weights,
                     Tensor3i& out);

}  // namespace lcmm::exec
