#include "exec/tensor_data.hpp"

#include "util/rng.hpp"

namespace lcmm::exec {

Tensor3i synthesize_input(graph::FeatureShape shape, std::uint64_t seed) {
  Tensor3i t(shape);
  util::Rng rng(seed ^ 0x1F2E3D4C5B6A7988ULL);
  for (std::int64_t& v : t.raw()) {
    v = rng.next_int(-8, 7);
  }
  return t;
}

LayerWeights synthesize_weights(const graph::ComputationGraph& graph,
                                graph::LayerId layer, std::uint64_t seed) {
  const graph::Layer& l = graph.layer(layer);
  LayerWeights w;
  if (!l.is_conv()) return w;
  w.out_channels = l.conv.out_channels;
  w.group_channels = graph.input_shape(layer).channels / l.conv.groups;
  w.kh = l.conv.kernel_h;
  w.kw = l.conv.kernel_w;
  w.data.resize(static_cast<std::size_t>(w.out_channels) * w.group_channels *
                w.kh * w.kw);
  util::Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(layer) + 1)));
  for (std::int64_t& v : w.data) {
    v = rng.next_int(-8, 7);
  }
  return w;
}

}  // namespace lcmm::exec
