// Systolic-array accelerator description, following the output-stationary
// architecture of Wei et al., DAC'17 [18] — the accelerator the paper
// combines LCMM with.
//
// The PE array has three unroll dimensions:
//   rows  — output channels (an output-channel tile is exactly `rows` wide),
//   cols  — output pixels (linearized within a spatial tile),
//   simd  — input channels (vectorized MACs inside each PE).
// One MAC per DSP for fixed point, 5 DSPs per MAC for fp32.
#pragma once

#include <cstdint>
#include <string>

#include "hw/precision.hpp"

namespace lcmm::hw {

struct SystolicArrayConfig {
  int rows = 0;
  int cols = 0;
  int simd = 0;
  /// DSP packing factor: a DSP48E2 can perform two int8 MACs that share a
  /// weight (two adjacent output pixels), doubling pixel throughput at the
  /// same DSP cost. Only valid at 8-bit; 1 everywhere else.
  int pixel_pack = 1;

  std::int64_t macs_per_cycle() const {
    return static_cast<std::int64_t>(rows) * cols * simd * pixel_pack;
  }
  /// Output pixels consumed per cycle (the pixel-loop unroll width).
  int effective_cols() const { return cols * pixel_pack; }
  int dsp_cost(Precision p) const {
    // Packed MACs share DSPs, so the cost ignores pixel_pack.
    return static_cast<int>(static_cast<std::int64_t>(rows) * cols * simd *
                            dsps_per_mac(p));
  }
  /// Peak arithmetic throughput in ops/s (2 ops per MAC).
  double peak_ops_per_sec(double freq_mhz) const {
    return 2.0 * static_cast<double>(macs_per_cycle()) * freq_mhz * 1e6;
  }
  bool valid() const {
    return rows > 0 && cols > 0 && simd > 0 &&
           (pixel_pack == 1 || pixel_pack == 2);
  }
  std::string to_string() const {
    return std::to_string(rows) + "x" + std::to_string(cols) + "x" +
           std::to_string(simd) + (pixel_pack > 1 ? "p2" : "");
  }
  bool operator==(const SystolicArrayConfig&) const = default;
};

}  // namespace lcmm::hw
