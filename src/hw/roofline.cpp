#include "hw/roofline.hpp"

#include <algorithm>

namespace lcmm::hw {

RooflineSummary characterize_roofline(const PerfModel& model,
                                      double bw_threshold_bytes_per_sec) {
  RooflineSummary summary;
  summary.peak_ops_per_sec = model.design().peak_ops_per_sec();
  summary.device_peak_ops_per_sec =
      2.0 * model.design().device.dsp_total /
      dsps_per_mac(model.design().precision) * 200e6;
  summary.stream_bw_peak = model.ddr().stream_peak_bytes_per_sec();
  summary.bw_threshold = bw_threshold_bytes_per_sec;

  for (const graph::Layer& layer : model.graph().layers()) {
    if (!layer.is_conv()) continue;  // the paper characterizes conv layers
    const LayerTiming& t = model.timing(layer.id);
    RooflinePoint pt;
    pt.layer = layer.id;
    pt.name = layer.name;
    const double ops = 2.0 * static_cast<double>(t.nominal_macs);
    const double bytes = t.if_bytes + t.res_bytes + t.wt_bytes + t.of_bytes;
    pt.intensity_ops_per_byte = bytes > 0 ? ops / bytes : 0.0;
    pt.attainable_ops_per_sec = ops / t.umm_latency();
    pt.memory_bound = t.memory_bound();
    // Required bandwidth is quoted against the ideal compute time at the
    // DEVICE peak (the paper's "layers need 70 GB/s" framing), not the
    // padded cycle count of the concrete design.
    const double ideal_compute_s = ops / summary.device_peak_ops_per_sec;
    if (ideal_compute_s > 0) {
      pt.required_stream_bw =
          std::max({t.if_bytes + t.res_bytes, t.wt_bytes, t.of_bytes}) /
          ideal_compute_s;
      pt.required_total_bw = bytes / ideal_compute_s;
    }
    if (pt.memory_bound) {
      ++summary.num_memory_bound;
      if (pt.required_total_bw > bw_threshold_bytes_per_sec) {
        ++summary.num_above_threshold;
      }
    }
    summary.points.push_back(std::move(pt));
  }
  return summary;
}

}  // namespace lcmm::hw
