// FPGA device resource descriptions. The paper evaluates on a Xilinx VU9P;
// a smaller ZU9EG is provided for tests that exercise tight budgets.
#pragma once

#include <cstdint>
#include <string>

#include "hw/precision.hpp"

namespace lcmm::hw {

struct FpgaDevice {
  std::string name;

  int dsp_total = 0;
  int bram36_total = 0;   // 36 Kbit block RAMs
  int uram_total = 0;     // 288 Kbit UltraRAMs
  std::int64_t logic_luts_total = 0;

  int ddr_banks = 0;
  double ddr_peak_gbps_per_bank = 0.0;  // GB/s, theoretical

  static constexpr std::int64_t kBram36Bytes = 36 * 1024 / 8;   // 4.5 KiB
  static constexpr std::int64_t kUramBytes = 288 * 1024 / 8;    // 36 KiB

  std::int64_t bram_bytes_total() const { return bram36_total * kBram36Bytes; }
  std::int64_t uram_bytes_total() const { return uram_total * kUramBytes; }
  std::int64_t sram_bytes_total() const {
    return bram_bytes_total() + uram_bytes_total();
  }
  double ddr_peak_gbps_total() const {
    return ddr_banks * ddr_peak_gbps_per_bank;
  }

  /// Achievable clock for a design at the given precision, in MHz. The
  /// values reproduce the paper's synthesis outcomes (Tab. 1): fixed point
  /// closes at 190 MHz, fp32 at 160-180 MHz, and heavy URAM usage (the LCMM
  /// designs) costs ~10 MHz of routing slack.
  double clock_mhz(Precision p, bool heavy_uram_use) const;

  /// Xilinx Virtex UltraScale+ VU9P (the paper's platform).
  static FpgaDevice vu9p();
  /// Xilinx Zynq UltraScale+ ZU9EG (small device for stress tests).
  static FpgaDevice zu9eg();
  /// Xilinx Alveo U250 (bigger cloud card, same DDR4 generation).
  static FpgaDevice u250();
};

}  // namespace lcmm::hw
