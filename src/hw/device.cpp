#include "hw/device.hpp"

namespace lcmm::hw {

double FpgaDevice::clock_mhz(Precision p, bool heavy_uram_use) const {
  double base = 190.0;
  if (p == Precision::kFp32) base = 170.0;
  if (heavy_uram_use) base -= 10.0;
  return base;
}

FpgaDevice FpgaDevice::vu9p() {
  FpgaDevice d;
  d.name = "xcvu9p";
  d.dsp_total = 6840;
  d.bram36_total = 2160;
  d.uram_total = 960;
  d.logic_luts_total = 1182240;
  d.ddr_banks = 4;
  d.ddr_peak_gbps_per_bank = 19.2;
  return d;
}

FpgaDevice FpgaDevice::u250() {
  FpgaDevice d;
  d.name = "xcu250";
  d.dsp_total = 12288;
  d.bram36_total = 2688;
  d.uram_total = 1280;
  d.logic_luts_total = 1728000;
  d.ddr_banks = 4;
  d.ddr_peak_gbps_per_bank = 19.2;
  return d;
}

FpgaDevice FpgaDevice::zu9eg() {
  FpgaDevice d;
  d.name = "xczu9eg";
  d.dsp_total = 2520;
  d.bram36_total = 912;
  d.uram_total = 0;
  d.logic_luts_total = 274080;
  d.ddr_banks = 1;
  d.ddr_peak_gbps_per_bank = 19.2;
  return d;
}

}  // namespace lcmm::hw
