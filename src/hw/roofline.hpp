// Roofline characterization (Williams et al. [19]) of a network on an
// accelerator design, reproducing the analysis behind the paper's Fig. 2(a):
// per-layer operation intensity vs attainable performance, with the
// memory-bound layer census (82 layers / 58% for Inception-v4) and the
// required-bandwidth tail ("over 60% of them even need 70 GB/s").
#pragma once

#include <string>
#include <vector>

#include "hw/perf_model.hpp"

namespace lcmm::hw {

struct RooflinePoint {
  graph::LayerId layer = graph::kInvalidLayer;
  std::string name;
  /// Ops per byte of total off-chip traffic under uniform management.
  double intensity_ops_per_byte = 0.0;
  /// Ops/s the layer actually attains under Eq. 1 (UMM).
  double attainable_ops_per_sec = 0.0;
  /// Bandwidth (bytes/s) the most demanding stream would need for the layer
  /// to run at the device's ideal compute latency.
  double required_stream_bw = 0.0;
  /// Aggregate DRAM bandwidth (all three streams) the layer would need to
  /// run at the ideal compute latency — the paper's "layers need 70 GB/s"
  /// framing.
  double required_total_bw = 0.0;
  bool memory_bound = false;
};

struct RooflineSummary {
  std::vector<RooflinePoint> points;  // conv layers only, like the paper
  double peak_ops_per_sec = 0.0;
  /// Device-level peak (every DSP at 200 MHz — the paper's 2.7 Tops for
  /// the VU9P at fixed point); the required-bandwidth figures are quoted
  /// against this roof, as in §2.2.
  double device_peak_ops_per_sec = 0.0;
  double stream_bw_peak = 0.0;  // theoretical per-stream bytes/s
  int num_memory_bound = 0;
  /// Memory-bound layers needing more than `bw_threshold` on some stream.
  int num_above_threshold = 0;
  double bw_threshold = 70e9;

  double memory_bound_fraction() const {
    return points.empty() ? 0.0
                          : static_cast<double>(num_memory_bound) / points.size();
  }
};

RooflineSummary characterize_roofline(const PerfModel& model,
                                      double bw_threshold_bytes_per_sec = 70e9);

}  // namespace lcmm::hw
