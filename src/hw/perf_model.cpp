#include "hw/perf_model.hpp"

#include <algorithm>
#include <stdexcept>
#include "resil/error.hpp"

namespace lcmm::hw {

std::string to_string(LoopOrder order) {
  switch (order) {
    case LoopOrder::kOutputStationary: return "output-stationary";
    case LoopOrder::kWeightStationary: return "weight-stationary";
    case LoopOrder::kInputStationary: return "input-stationary";
  }
  return "?";
}

namespace {
std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

/// Throughput of the standalone pooling unit, elements/cycle. Pooling does
/// not occupy the systolic array; a modest comparator tree suffices because
/// pooling layers are bandwidth-dominated anyway.
constexpr int kPoolLanes = 64;
}  // namespace

double LayerTiming::max_transfer() const {
  return std::max({if_s + res_s, wt_s, of_s});
}

double LayerTiming::umm_latency() const {
  return std::max(compute_s, max_transfer());
}

PerfModel::PerfModel(const graph::ComputationGraph& graph,
                     AcceleratorDesign design)
    : graph_(&graph), design_(std::move(design)),
      ddr_(design_.device, design_.ddr_options) {
  if (!design_.array.valid() || !design_.tile.valid() || design_.freq_mhz <= 0) {
    throw resil::OptionError(resil::Code::kBadArgument, "hw.perf_model",
                             "PerfModel: incomplete accelerator design");
  }
  if (design_.array.pixel_pack > 1 && design_.precision != Precision::kInt8) {
    throw resil::OptionError(
        resil::Code::kBadArgument, "hw.perf_model",
        "PerfModel: DSP pixel packing requires 8-bit precision");
  }
  if (design_.batch < 1) {
    throw resil::OptionError(resil::Code::kBadArgument, "hw.perf_model",
                             "PerfModel: batch must be >= 1");
  }
  timings_.reserve(graph.num_layers());
  for (const graph::Layer& layer : graph.layers()) {
    timings_.push_back(compute_layer_timing(layer.id));
  }
}

const LayerTiming& PerfModel::timing(graph::LayerId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= timings_.size()) {
    throw std::out_of_range("PerfModel::timing: bad layer id");
  }
  return timings_[static_cast<std::size_t>(id)];
}

LayerTiming PerfModel::compute_layer_timing(graph::LayerId id) const {
  const graph::Layer& layer = graph_->layer(id);
  const graph::FeatureShape& in = graph_->input_shape(id);
  const graph::FeatureShape& out = graph_->own_output_shape(id);
  const SystolicArrayConfig& array = design_.array;
  const TileConfig& tile = design_.tile;
  const int bpe = bytes_per_elem(design_.precision);
  const double cycle_s = 1.0 / (design_.freq_mhz * 1e6);

  LayerTiming t;
  t.nominal_macs = graph_->layer_macs(id) * design_.batch;

  LayerTileGeometry geom = layer_tile_geometry(*graph_, id, array, tile);

  // ---- compute ------------------------------------------------------------
  if (layer.is_conv()) {
    const std::int64_t kk =
        static_cast<std::int64_t>(layer.conv.kernel_h) * layer.conv.kernel_w;
    // Reduction steps: the per-group input channels are swept tile by tile
    // with exact boundary extents, rounded up to the SIMD width inside each
    // tile. Depthwise convolutions (group_channels == 1) leave most SIMD
    // lanes idle — the well-known inefficiency of channel-vectorized
    // arrays on MobileNet-style layers.
    std::int64_t red_steps = 0;
    for (int c0 = 0; c0 < geom.group_channels; c0 += tile.tc) {
      const std::int64_t c_t = std::min(tile.tc, geom.group_channels - c0);
      red_steps += ceil_div(c_t * kk, array.simd);
    }
    // Spatial sweep: boundary tiles process their true extents (sequential
    // loop bounds are variable in the template); only the pixel-group
    // granularity `cols` rounds up, and idle PE rows on the last
    // output-channel tile are paid in full (output-stationary array).
    std::int64_t px_steps = 0;
    for (int h0 = 0; h0 < out.height; h0 += tile.th) {
      const std::int64_t th_t = std::min(tile.th, out.height - h0);
      for (int w0 = 0; w0 < out.width; w0 += tile.tw) {
        const std::int64_t tw_t = std::min(tile.tw, out.width - w0);
        px_steps += ceil_div(th_t * tw_t, array.effective_cols());
      }
    }
    t.cycles = static_cast<std::int64_t>(geom.n_m) * px_steps * red_steps;
    // The batch loop sits inside the weight reuse: compute repeats per
    // image while each weight tile stays resident.
    t.cycles *= design_.batch;
    // Pipeline fill/drain per tile invocation.
    t.cycles += geom.total_tiles() * (array.rows + array.cols + array.simd);
  } else {
    const graph::PoolParams& p = layer.pool;
    const std::int64_t window =
        p.global ? static_cast<std::int64_t>(in.height) * in.width
                 : static_cast<std::int64_t>(p.kernel) * p.kernel;
    t.cycles = ceil_div(out.elems() * window, kPoolLanes) * design_.batch;
  }
  t.compute_s = static_cast<double>(t.cycles) * cycle_s;

  // ---- off-chip traffic (uniform management) -------------------------------
  const int in_tile_cols =
      std::min((tile.tw - 1) * (layer.is_conv() ? layer.conv.stride : 1) +
                   (layer.is_conv() ? layer.conv.kernel_w : 1),
               in.width);
  const double if_burst =
      static_cast<double>(std::min(tile.tc, in.channels)) * in_tile_cols * bpe;

  // Fused residual stream: one extra read of the output-sized tensor on the
  // input-feature interface during write-out.
  if (layer.has_residual()) {
    t.res_bytes = static_cast<double>(out.elems()) * bpe * design_.batch;
    const double res_burst = static_cast<double>(array.rows) * tile.tw * bpe;
    t.res_s = ddr_.transfer_seconds(t.res_bytes, res_burst);
  }

  // Output features: written exactly once per image (accumulation stays
  // on chip).
  t.of_bytes = static_cast<double>(out.elems()) * bpe * design_.batch;
  const double of_burst =
      static_cast<double>(std::min(array.rows, out.channels)) * tile.tw * bpe;
  t.of_s = ddr_.transfer_seconds(t.of_bytes, of_burst);

  if (!layer.is_conv()) {
    // Pooling sweeps its input exactly once per image.
    t.if_bytes = static_cast<double>(in.channels) * geom.fetched_rows *
                 geom.fetched_cols * bpe * design_.batch;
    t.if_s = ddr_.transfer_seconds(t.if_bytes, if_burst);
    return t;
  }

  // Convolution: pick the fastest feasible loop order for this layer. The
  // baseline template only has output-stationary; stationary variants need
  // the design's extra resident buffer.
  const double wt_burst = static_cast<double>(array.rows) *
                          std::min(tile.tc, geom.group_channels) *
                          layer.conv.kernel_h * layer.conv.kernel_w * bpe;
  const double weights_once =
      static_cast<double>(graph_->layer_weight_elems(id)) * bpe;
  // Input bytes when re-fetched per m-tile vs streamed once (halo only),
  // per image in the batch.
  const double if_per_mtile = static_cast<double>(geom.n_m) *
                              geom.channels_per_mtile * geom.fetched_rows *
                              geom.fetched_cols * bpe * design_.batch;
  const double if_once = static_cast<double>(in.channels) *
                         geom.fetched_rows * geom.fetched_cols * bpe *
                         design_.batch;

  const std::int64_t kk =
      static_cast<std::int64_t>(layer.conv.kernel_h) * layer.conv.kernel_w;
  const std::int64_t ws_buffer = 2 * static_cast<std::int64_t>(array.rows) *
                                 geom.group_channels * kk * bpe;
  const int in_tile_rows =
      std::min((tile.th - 1) * layer.conv.stride + layer.conv.kernel_h,
               in.height);
  const std::int64_t is_buffer = 2 * static_cast<std::int64_t>(in.channels) *
                                 in_tile_rows * in_tile_cols * bpe;

  struct Candidate {
    LoopOrder order;
    double if_bytes;
    double wt_bytes;
    bool feasible;
  };
  const Candidate candidates[] = {
      {LoopOrder::kOutputStationary, if_per_mtile,
       static_cast<double>(geom.spatial_tiles()) * weights_once, true},
      {LoopOrder::kWeightStationary, if_per_mtile, weights_once,
       ws_buffer <= design_.stationary_buffer_bytes},
      {LoopOrder::kInputStationary, if_once,
       static_cast<double>(geom.spatial_tiles()) * weights_once,
       is_buffer <= design_.stationary_buffer_bytes},
  };
  bool first = true;
  for (const Candidate& c : candidates) {
    if (!c.feasible) continue;
    const double if_s = ddr_.transfer_seconds(c.if_bytes, if_burst);
    const double wt_s = ddr_.transfer_seconds(c.wt_bytes, wt_burst);
    const double latency =
        std::max({t.compute_s, if_s + t.res_s, wt_s, t.of_s});
    const double current =
        std::max({t.compute_s, t.if_s + t.res_s, t.wt_s, t.of_s});
    if (first || latency < current) {
      t.if_bytes = c.if_bytes;
      t.if_s = if_s;
      t.wt_bytes = c.wt_bytes;
      t.wt_s = wt_s;
      t.order = c.order;
      first = false;
    }
  }
  return t;
}

double PerfModel::umm_total_latency() const {
  double total = 0.0;
  for (const LayerTiming& t : timings_) total += t.umm_latency();
  return total;
}

double PerfModel::total_nominal_ops() const {
  return 2.0 * static_cast<double>(graph_->total_macs()) * design_.batch;
}

double PerfModel::ops_per_sec(double latency_s) const {
  if (latency_s <= 0.0) {
    throw resil::OptionError(resil::Code::kBadArgument, "hw.perf_model",
                             "ops_per_sec: latency <= 0");
  }
  return total_nominal_ops() / latency_s;
}

int PerfModel::num_memory_bound_layers() const {
  int n = 0;
  for (const LayerTiming& t : timings_) n += t.memory_bound() ? 1 : 0;
  return n;
}

}  // namespace lcmm::hw
