#include "hw/dse.hpp"

#include <cmath>
#include <stdexcept>

#include "par/parallel_for.hpp"
#include "resil/error.hpp"
#include "resil/fault.hpp"
#include "util/logging.hpp"

namespace lcmm::hw {

Dse::Dse(FpgaDevice device, Precision precision, DseOptions options)
    : device_(std::move(device)), precision_(precision), options_(options) {
  if (options_.dsp_budget_fraction <= 0 || options_.dsp_budget_fraction > 1 ||
      options_.tile_bram_fraction <= 0 || options_.tile_bram_fraction > 1 ||
      options_.jobs < 0) {
    throw resil::OptionError(resil::Code::kBadOptions, "dse.options",
                             "Dse: bad options");
  }
}

int Dse::dsp_budget() const {
  return static_cast<int>(device_.dsp_total * options_.dsp_budget_fraction);
}

std::vector<SystolicArrayConfig> Dse::array_candidates() const {
  // The menus follow [18]: power-of-two-ish row/simd counts and column
  // counts that divide common feature-map widths well. Row depth stops at
  // 32 — the output-stationary template accumulates partial sums down each
  // row, and deeper rows blow up the adder/banking depth (the published
  // designs use modest output-channel unroll).
  static constexpr int kRows[] = {8, 16, 32};
  static constexpr int kCols[] = {8, 11, 14, 16, 22, 32};
  static constexpr int kSimd[] = {4, 8, 16, 32};
  const int budget = dsp_budget();
  std::vector<int> packs = {1};
  if (options_.allow_int8_packing && precision_ == Precision::kInt8) {
    packs.push_back(2);
  }
  // One generator builds both menus: the fallback used to rebuild configs
  // from scratch without the pack dimension, silently costing int8 on
  // small devices its dual-packed candidates.
  const auto enumerate = [&](bool prune_dominated) {
    std::vector<SystolicArrayConfig> out;
    for (int pack : packs) {
      for (int r : kRows) {
        for (int c : kCols) {
          for (int s : kSimd) {
            const SystolicArrayConfig cfg{r, c, s, pack};
            const int cost = cfg.dsp_cost(precision_);
            if (cost > budget) continue;
            // Discard configs below half budget: they are strictly dominated
            // by a larger legal sibling and only slow the search down.
            if (prune_dominated && cost * 2 <= budget) continue;
            out.push_back(cfg);
          }
        }
      }
    }
    return out;
  };
  std::vector<SystolicArrayConfig> out = enumerate(/*prune_dominated=*/true);
  if (out.empty()) {
    // Tiny devices / fp32: accept anything that fits.
    out = enumerate(/*prune_dominated=*/false);
  }
  return out;
}

std::vector<TileConfig> Dse::tile_candidates(
    const graph::ComputationGraph& graph,
    const SystolicArrayConfig& array) const {
  static constexpr int kTc[] = {16, 32, 64, 128};
  static constexpr int kSpatial[] = {4, 7, 8, 14, 16, 17, 28};
  const std::int64_t bram_budget = static_cast<std::int64_t>(
      options_.tile_bram_fraction * device_.bram_bytes_total());
  std::vector<TileConfig> out;
  for (int tc : kTc) {
    if (tc < array.simd) continue;  // SIMD lanes must be fed within a tile
    for (int s : kSpatial) {
      const TileConfig tile{tc, s, s};
      if (tile_buffer_bytes(graph, array, tile, precision_).total() <= bram_budget) {
        out.push_back(tile);
      }
    }
  }
  return out;
}

DseResult Dse::explore(const graph::ComputationGraph& graph,
                       const Objective& objective) const {
  resil::fault::hit("dse.explore");
  const double freq = device_.clock_mhz(precision_, options_.heavy_uram_use);
  // Flatten the menu first; the candidate's position in this vector is the
  // "menu index" the tie-break below refers to, and it equals the order
  // the old serial loop visited candidates in.
  std::vector<AcceleratorDesign> menu;
  for (const SystolicArrayConfig& array : array_candidates()) {
    for (const TileConfig& tile : tile_candidates(graph, array)) {
      AcceleratorDesign design;
      design.device = device_;
      design.precision = precision_;
      design.array = array;
      design.tile = tile;
      design.freq_mhz = freq;
      menu.push_back(design);
    }
  }
  if (menu.empty()) {
    throw resil::CompileError(
        resil::Code::kNoFeasibleDesign, "dse.explore",
        "no feasible design within the device budget", graph.name());
  }

  // Candidates are independent, so evaluate them on the worker pool; each
  // latency lands in its own slot, making the vector scheduling-invariant.
  const std::vector<double> latencies =
      par::parallel_map(menu.size(), options_.jobs, [&](std::size_t i) {
        return objective ? objective(menu[i])
                         : PerfModel(graph, menu[i]).umm_total_latency();
      });

  // Deterministic argmin. Ties on latency break on DSP cost, then on menu
  // index — never on evaluation order — so serial and parallel runs pick
  // the same design bit for bit.
  std::size_t best = 0;
  int best_cost = menu[0].array.dsp_cost(precision_);
  std::int64_t ties_broken = 0;
  for (std::size_t i = 1; i < menu.size(); ++i) {
    // A NaN latency compares false both ways and would otherwise be
    // treated as an exact tie; reject non-finite candidates outright.
    if (!std::isfinite(latencies[i])) continue;
    const int cost = menu[i].array.dsp_cost(precision_);
    if (!std::isfinite(latencies[best])) {
      // Only possible when candidate #0 was non-finite: the first finite
      // latency unconditionally takes over.
      best = i;
      best_cost = cost;
      continue;
    }
    if (latencies[i] > latencies[best]) continue;
    if (latencies[i] < latencies[best]) {
      best = i;
      best_cost = cost;
    } else if (cost < best_cost) {
      // Equal latency: prefer the cheaper array; equal cost keeps the
      // earlier menu index (the first-seen candidate).
      LCMM_DEBUG() << "DSE(" << graph.name() << "): latency tie at "
                   << latencies[i] * 1e3 << " ms broken on DSP cost ("
                   << cost << " < " << best_cost << ") for candidate #" << i;
      best = i;
      best_cost = cost;
      ++ties_broken;
    }
  }
  if (ties_broken > 0) {
    LCMM_INFO() << "DSE(" << graph.name() << "): " << ties_broken
                << " latency tie(s) broken on (DSP cost, menu index)";
  }

  DseResult result;
  result.design = menu[best];
  result.objective_latency_s = latencies[best];
  LCMM_INFO() << "DSE(" << graph.name() << ", " << to_string(precision_)
              << "): array " << result.design.array.to_string() << " tile "
              << result.design.tile.to_string() << " -> "
              << result.objective_latency_s * 1e3 << " ms ("
              << menu.size() << " candidates)";
  return result;
}

}  // namespace lcmm::hw
