#include "hw/dse.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace lcmm::hw {

Dse::Dse(FpgaDevice device, Precision precision, DseOptions options)
    : device_(std::move(device)), precision_(precision), options_(options) {
  if (options_.dsp_budget_fraction <= 0 || options_.dsp_budget_fraction > 1 ||
      options_.tile_bram_fraction <= 0 || options_.tile_bram_fraction > 1) {
    throw std::invalid_argument("Dse: bad options");
  }
}

int Dse::dsp_budget() const {
  return static_cast<int>(device_.dsp_total * options_.dsp_budget_fraction);
}

std::vector<SystolicArrayConfig> Dse::array_candidates() const {
  // The menus follow [18]: power-of-two-ish row/simd counts and column
  // counts that divide common feature-map widths well. Row depth stops at
  // 32 — the output-stationary template accumulates partial sums down each
  // row, and deeper rows blow up the adder/banking depth (the published
  // designs use modest output-channel unroll).
  static constexpr int kRows[] = {8, 16, 32};
  static constexpr int kCols[] = {8, 11, 14, 16, 22, 32};
  static constexpr int kSimd[] = {4, 8, 16, 32};
  const int budget = dsp_budget();
  std::vector<int> packs = {1};
  if (options_.allow_int8_packing && precision_ == Precision::kInt8) {
    packs.push_back(2);
  }
  std::vector<SystolicArrayConfig> out;
  for (int pack : packs) {
    for (int r : kRows) {
      for (int c : kCols) {
        for (int s : kSimd) {
          const SystolicArrayConfig cfg{r, c, s, pack};
          const int cost = cfg.dsp_cost(precision_);
          // Discard configs below half budget: they are strictly dominated
          // by a larger legal sibling and only slow the search down.
          if (cost <= budget && cost * 2 > budget) out.push_back(cfg);
        }
      }
    }
  }
  if (out.empty()) {
    // Tiny devices / fp32: accept anything that fits.
    for (int r : kRows) {
      for (int c : kCols) {
        for (int s : kSimd) {
          const SystolicArrayConfig cfg{r, c, s};
          if (cfg.dsp_cost(precision_) <= budget) out.push_back(cfg);
        }
      }
    }
  }
  return out;
}

std::vector<TileConfig> Dse::tile_candidates(
    const graph::ComputationGraph& graph,
    const SystolicArrayConfig& array) const {
  static constexpr int kTc[] = {16, 32, 64, 128};
  static constexpr int kSpatial[] = {4, 7, 8, 14, 16, 17, 28};
  const std::int64_t bram_budget = static_cast<std::int64_t>(
      options_.tile_bram_fraction * device_.bram_bytes_total());
  std::vector<TileConfig> out;
  for (int tc : kTc) {
    if (tc < array.simd) continue;  // SIMD lanes must be fed within a tile
    for (int s : kSpatial) {
      const TileConfig tile{tc, s, s};
      if (tile_buffer_bytes(graph, array, tile, precision_).total() <= bram_budget) {
        out.push_back(tile);
      }
    }
  }
  return out;
}

DseResult Dse::explore(const graph::ComputationGraph& graph,
                       const Objective& objective) const {
  const double freq = device_.clock_mhz(precision_, options_.heavy_uram_use);
  DseResult best;
  bool found = false;
  for (const SystolicArrayConfig& array : array_candidates()) {
    for (const TileConfig& tile : tile_candidates(graph, array)) {
      AcceleratorDesign design;
      design.device = device_;
      design.precision = precision_;
      design.array = array;
      design.tile = tile;
      design.freq_mhz = freq;
      double latency;
      if (objective) {
        latency = objective(design);
      } else {
        latency = PerfModel(graph, design).umm_total_latency();
      }
      if (!found || latency < best.objective_latency_s) {
        best.design = design;
        best.objective_latency_s = latency;
        found = true;
      }
    }
  }
  if (!found) {
    throw std::runtime_error("Dse::explore: no feasible design for graph '" +
                             graph.name() + "'");
  }
  LCMM_INFO() << "DSE(" << graph.name() << ", " << to_string(precision_)
              << "): array " << best.design.array.to_string() << " tile "
              << best.design.tile.to_string() << " -> "
              << best.objective_latency_s * 1e3 << " ms";
  return best;
}

}  // namespace lcmm::hw
