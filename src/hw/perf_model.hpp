// Analytical per-layer performance model of the systolic-array accelerator,
// implementing the paper's Eq. 1 latency semantics:
//
//   lat(i) = max( lat_c(i),  lat_d(i) for every tensor d still off-chip )
//
// Compute and the three DRAM streams (input features — which also carry a
// fused residual read — weights, and output features) run concurrently via
// double buffering, so a layer's latency is the maximum of the four terms.
// LCMM's whole premise is removing transfer terms from this max by giving
// tensors persistent on-chip buffers.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "hw/device.hpp"
#include "hw/systolic.hpp"
#include "hw/tiling.hpp"
#include "mem/ddr.hpp"

namespace lcmm::hw {

/// Loop order of the outer (DRAM-streaming) loops. The [18] template is
/// output stationary; the stationary variants trade a larger resident
/// buffer for eliminating one reload factor:
///   kOutputStationary: if re-fetched per m-tile, wt per spatial tile.
///   kWeightStationary: one m-tile's FULL weights stay resident -> weights
///                      stream exactly once (needs rows*C/g*K*K on chip).
///   kInputStationary:  one spatial tile's FULL input depth stays resident
///                      -> inputs stream once (needs C*tile halo on chip).
enum class LoopOrder : std::uint8_t {
  kOutputStationary,
  kWeightStationary,
  kInputStationary,
};

std::string to_string(LoopOrder order);

/// A fully specified accelerator design point (the DSE's output).
struct AcceleratorDesign {
  FpgaDevice device;
  Precision precision = Precision::kInt8;
  SystolicArrayConfig array;
  TileConfig tile;
  double freq_mhz = 0.0;
  mem::DdrModelOptions ddr_options;

  /// Extra on-chip buffer (bytes, double-buffered total) available for the
  /// stationary loop orders. 0 pins every layer to kOutputStationary (the
  /// paper's baseline template); > 0 lets the model pick the fastest
  /// FEASIBLE order per layer.
  std::int64_t stationary_buffer_bytes = 0;

  /// Images processed per accelerator invocation. Weights stream once per
  /// batch per tile (the batch loop sits inside the weight reuse), so
  /// larger batches dilute the weight bandwidth pressure; activations
  /// scale linearly. The paper evaluates batch 1 (latency focus).
  int batch = 1;

  double peak_ops_per_sec() const { return array.peak_ops_per_sec(freq_mhz); }
};

/// Per-layer timing and traffic under uniform (all-off-chip) management.
struct LayerTiming {
  double compute_s = 0.0;  // lat_c
  double if_s = 0.0;       // main input-feature stream transfer time
  double res_s = 0.0;      // fused residual stream (shares the if interface)
  double wt_s = 0.0;       // weight stream
  double of_s = 0.0;       // output-feature stream

  double if_bytes = 0.0;
  double res_bytes = 0.0;
  double wt_bytes = 0.0;
  double of_bytes = 0.0;

  std::int64_t cycles = 0;          // compute cycles incl. padding waste
  std::int64_t nominal_macs = 0;    // algorithmic MACs
  /// Outer loop order this layer runs under (chosen per layer when the
  /// design allows stationary buffers).
  LoopOrder order = LoopOrder::kOutputStationary;

  /// Eq. 1 with everything off-chip.
  double umm_latency() const;
  /// Largest off-chip transfer term.
  double max_transfer() const;
  bool memory_bound() const { return max_transfer() > compute_s; }
};

class PerfModel {
 public:
  PerfModel(const graph::ComputationGraph& graph, AcceleratorDesign design);

  const AcceleratorDesign& design() const { return design_; }
  const graph::ComputationGraph& graph() const { return *graph_; }
  const mem::DdrModel& ddr() const { return ddr_; }

  const LayerTiming& timing(graph::LayerId id) const;

  /// Sum of Eq. 1 latencies over all layers (the UMM baseline).
  double umm_total_latency() const;
  /// 2 * algorithmic MACs of the whole network.
  double total_nominal_ops() const;
  /// Achieved throughput in ops/s for a given end-to-end latency.
  double ops_per_sec(double latency_s) const;
  /// Number of layers whose UMM latency is transfer-dominated.
  int num_memory_bound_layers() const;

 private:
  LayerTiming compute_layer_timing(graph::LayerId id) const;

  const graph::ComputationGraph* graph_;
  AcceleratorDesign design_;
  mem::DdrModel ddr_;
  std::vector<LayerTiming> timings_;
};

}  // namespace lcmm::hw
