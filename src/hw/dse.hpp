// Design-space exploration for the accelerator template (PE array shape +
// uniform tile configuration), standing in for the DSE frameworks
// [12, 18, 22] that the paper's Fig. 4 places upstream of LCMM.
//
// The DSE enumerates array/tile candidates under a DSP budget and a BRAM
// budget for the double-buffered tile buffers, and minimizes a latency
// objective. The default objective is the UMM latency (every tensor
// off-chip); the LCMM driver re-runs the DSE with an allocation-aware
// objective, which is how "smaller tile sizes improve computation
// efficiency once the bandwidth bottleneck is gone" (§4.1) emerges.
#pragma once

#include <functional>
#include <vector>

#include "hw/perf_model.hpp"

namespace lcmm::hw {

struct DseOptions {
  /// Fraction of device DSPs available to the PE array (Tab. 1 uses 83%
  /// for ResNet/GoogLeNet and 75% for Inception-v4).
  double dsp_budget_fraction = 0.83;
  /// Fraction of device BRAM available to the tile buffers. Uniform designs
  /// keep tile buffers small (Tab. 2 reports 8-12% BRAM for UMM).
  double tile_bram_fraction = 0.15;
  /// Whether the design will rely on URAM tensor buffers (costs clock).
  bool heavy_uram_use = false;
  /// Allow int8 DSP pixel packing (2 MACs/DSP) in the candidate space.
  /// Off by default: the paper's baseline [18] does not pack (its quoted
  /// 2.7 Tops peak is one MAC per DSP).
  bool allow_int8_packing = false;
  /// Workers for candidate evaluation (0 = par::default_jobs()). The
  /// result is worker-count independent: explore() reduces with an
  /// explicit (latency, DSP cost, menu index) tie-break.
  int jobs = 0;
};

struct DseResult {
  AcceleratorDesign design;
  double objective_latency_s = 0.0;
};

class Dse {
 public:
  Dse(FpgaDevice device, Precision precision, DseOptions options = {});

  /// Latency objective: maps a complete design to estimated seconds.
  using Objective = std::function<double(const AcceleratorDesign&)>;

  /// Explores the candidate space for `graph`. With no objective, minimizes
  /// the UMM total latency. Throws std::runtime_error if no candidate fits.
  /// Candidates are evaluated on DseOptions::jobs workers; latency ties
  /// break on DSP cost, then menu index, so the winner does not depend on
  /// evaluation order (serial and parallel runs agree bitwise).
  DseResult explore(const graph::ComputationGraph& graph,
                    const Objective& objective = nullptr) const;

  /// PE-array shapes within the DSP budget.
  std::vector<SystolicArrayConfig> array_candidates() const;
  /// Tile configurations legal for `array` on `graph` (BRAM-feasible).
  std::vector<TileConfig> tile_candidates(const graph::ComputationGraph& graph,
                                          const SystolicArrayConfig& array) const;

  const DseOptions& options() const { return options_; }
  int dsp_budget() const;

 private:
  FpgaDevice device_;
  Precision precision_;
  DseOptions options_;
};

}  // namespace lcmm::hw
