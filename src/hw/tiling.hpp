// Loop-tiling configuration for the two-level tiled dataflow of Fig. 1.
//
// The outer loops stream tiles between DRAM and the on-chip tile buffers:
//   for m-tile (rows output channels at a time — the array is
//                output-stationary, so the m-tile equals the PE row count):
//     for (h, w) spatial tile of th x tw output pixels:
//       for c-tile of tc input channels:                      (accumulate)
//         load if-tile, load wt-tile  ->  compute
//       store of-tile
//
// This nest fixes the off-chip traffic of uniform memory management:
//   input features are re-loaded once per m-tile (nM trips, plus halo),
//   weights are re-loaded once per spatial tile (nH*nW trips),
//   output features are stored exactly once.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "hw/precision.hpp"
#include "hw/systolic.hpp"

namespace lcmm::hw {

struct TileConfig {
  int tc = 0;  // input-channel tile (multiple of simd)
  int th = 0;  // output rows per spatial tile
  int tw = 0;  // output cols per spatial tile

  bool valid() const { return tc > 0 && th > 0 && tw > 0; }
  std::string to_string() const {
    return "tc" + std::to_string(tc) + "_th" + std::to_string(th) + "_tw" +
           std::to_string(tw);
  }
  bool operator==(const TileConfig&) const = default;
};

/// Double-buffered on-chip tile buffer requirements, in bytes, sized for the
/// worst layer of a network (the uniform part of the memory hierarchy).
struct TileBufferBytes {
  std::int64_t input = 0;
  std::int64_t weight = 0;
  std::int64_t output = 0;
  std::int64_t total() const { return input + weight + output; }
};

/// Computes the (double-buffered) tile buffer sizes the given network needs
/// under `tile` with array `array` at precision `p`.
TileBufferBytes tile_buffer_bytes(const graph::ComputationGraph& graph,
                                  const SystolicArrayConfig& array,
                                  const TileConfig& tile, Precision p);

/// Per-layer tile geometry used by both the performance model and the
/// traffic model.
struct LayerTileGeometry {
  int n_m = 1;        // output-channel tiles (trip count for input features)
  int n_c = 1;        // input-channel tiles (within one group)
  int n_h = 1;        // spatial tiles, vertical
  int n_w = 1;        // spatial tiles, horizontal
  /// Input channels each m-tile must fetch: the whole input for dense
  /// convolution, only the covered groups' channels for grouped/depthwise.
  int channels_per_mtile = 0;
  /// Reduction channels per output (in_channels / groups).
  int group_channels = 0;
  /// Total input-feature rows/cols actually fetched across spatial tiles
  /// (counts halo overlap, clipped to the real input extent).
  std::int64_t fetched_rows = 0;
  std::int64_t fetched_cols = 0;

  std::int64_t spatial_tiles() const {
    return static_cast<std::int64_t>(n_h) * n_w;
  }
  std::int64_t total_tiles() const {
    return static_cast<std::int64_t>(n_m) * n_c * spatial_tiles();
  }
};

LayerTileGeometry layer_tile_geometry(const graph::ComputationGraph& graph,
                                      graph::LayerId id,
                                      const SystolicArrayConfig& array,
                                      const TileConfig& tile);

}  // namespace lcmm::hw
