// Arithmetic precisions evaluated in the paper (§4: 8/16-bit fixed point and
// 32-bit floating point) and their FPGA implementation costs.
#pragma once

#include <cstdint>
#include <string>

namespace lcmm::hw {

enum class Precision : std::uint8_t { kInt8, kInt16, kFp32 };

/// Bytes per tensor element.
int bytes_per_elem(Precision p);

/// DSP slices per multiply-accumulate. On Xilinx UltraScale+ a fixed-point
/// MAC maps to one DSP48E2; an fp32 MAC needs 5 (paper §4.1).
int dsps_per_mac(Precision p);

/// Accumulator width in bytes (partial sums are kept wider than the data).
int accumulator_bytes(Precision p);

std::string to_string(Precision p);

inline constexpr Precision kAllPrecisions[] = {Precision::kInt8, Precision::kInt16,
                                               Precision::kFp32};

}  // namespace lcmm::hw
