#include "hw/precision.hpp"

namespace lcmm::hw {

int bytes_per_elem(Precision p) {
  switch (p) {
    case Precision::kInt8: return 1;
    case Precision::kInt16: return 2;
    case Precision::kFp32: return 4;
  }
  return 0;
}

int dsps_per_mac(Precision p) {
  switch (p) {
    case Precision::kInt8: return 1;
    case Precision::kInt16: return 1;
    case Precision::kFp32: return 5;
  }
  return 0;
}

int accumulator_bytes(Precision p) {
  switch (p) {
    case Precision::kInt8: return 4;   // 32-bit accumulation of int8 products
    case Precision::kInt16: return 4;  // 32/48-bit DSP accumulator, 4B stored
    case Precision::kFp32: return 4;
  }
  return 0;
}

std::string to_string(Precision p) {
  switch (p) {
    case Precision::kInt8: return "8-bit";
    case Precision::kInt16: return "16-bit";
    case Precision::kFp32: return "32-bit";
  }
  return "?";
}

}  // namespace lcmm::hw
