#include "hw/tiling.hpp"

#include <algorithm>
#include <stdexcept>
#include "resil/error.hpp"

namespace lcmm::hw {

namespace {
std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

/// Kernel extent and stride of a layer along one axis (pool layers behave
/// like convs with square windows for tiling purposes).
struct AxisParams {
  int kernel;
  int stride;
};

AxisParams h_params(const graph::Layer& l) {
  if (l.is_conv()) return {l.conv.kernel_h, l.conv.stride};
  return {l.pool.global ? 1 : l.pool.kernel, l.pool.global ? 1 : l.pool.stride};
}
AxisParams w_params(const graph::Layer& l) {
  if (l.is_conv()) return {l.conv.kernel_w, l.conv.stride};
  return {l.pool.global ? 1 : l.pool.kernel, l.pool.global ? 1 : l.pool.stride};
}

/// Sum over tiles of the fetched input extent along one axis, clipped to
/// the real input range (padding is generated on-chip and never fetched).
std::int64_t fetched_extent(int out_extent, int tile, const AxisParams& ax,
                            int in_extent, int pad) {
  std::int64_t total = 0;
  for (int o = 0; o < out_extent; o += tile) {
    const int span = std::min(tile, out_extent - o);
    const int in_first = std::max(0, o * ax.stride - pad);
    const int in_last =
        std::min(in_extent - 1, (o + span - 1) * ax.stride - pad + ax.kernel - 1);
    total += std::max(0, in_last - in_first + 1);
  }
  return total;
}

int h_pad(const graph::Layer& l) {
  return l.is_conv() ? l.conv.pad_h : (l.pool.global ? 0 : l.pool.pad);
}
int w_pad(const graph::Layer& l) {
  return l.is_conv() ? l.conv.pad_w : (l.pool.global ? 0 : l.pool.pad);
}
}  // namespace

LayerTileGeometry layer_tile_geometry(const graph::ComputationGraph& graph,
                                      graph::LayerId id,
                                      const SystolicArrayConfig& array,
                                      const TileConfig& tile) {
  if (!array.valid() || !tile.valid()) {
    throw resil::OptionError(resil::Code::kBadArgument, "hw.tiling",
                             "layer_tile_geometry: invalid config");
  }
  const graph::Layer& layer = graph.layer(id);
  const graph::FeatureShape& in = graph.input_shape(id);
  const graph::FeatureShape& out = graph.own_output_shape(id);

  LayerTileGeometry g;
  const int groups = layer.is_conv() ? layer.conv.groups : 1;
  g.group_channels = in.channels / groups;
  // Output-stationary array: the m-tile IS the PE row count.
  g.n_m = static_cast<int>(ceil_div(out.channels, array.rows));
  g.n_c = static_cast<int>(ceil_div(g.group_channels, tile.tc));
  // Channels an m-tile touches: its covered groups' slices only.
  const int m_per_group = std::max(1, out.channels / groups);
  const int groups_per_mtile = std::min<int>(
      groups, static_cast<int>(ceil_div(std::min(array.rows, out.channels),
                                        m_per_group)));
  g.channels_per_mtile =
      std::min(in.channels, g.group_channels * groups_per_mtile);
  g.n_h = static_cast<int>(ceil_div(out.height, tile.th));
  g.n_w = static_cast<int>(ceil_div(out.width, tile.tw));
  g.fetched_rows = fetched_extent(out.height, tile.th, h_params(layer),
                                  in.height, h_pad(layer));
  g.fetched_cols = fetched_extent(out.width, tile.tw, w_params(layer),
                                  in.width, w_pad(layer));
  return g;
}

TileBufferBytes tile_buffer_bytes(const graph::ComputationGraph& graph,
                                  const SystolicArrayConfig& array,
                                  const TileConfig& tile, Precision p) {
  const int bpe = bytes_per_elem(p);
  TileBufferBytes out;
  for (const graph::Layer& layer : graph.layers()) {
    const graph::FeatureShape& in = graph.input_shape(layer.id);
    const AxisParams ah = h_params(layer);
    const AxisParams aw = w_params(layer);
    const int in_th = std::min((tile.th - 1) * ah.stride + ah.kernel, in.height);
    const int in_tw = std::min((tile.tw - 1) * aw.stride + aw.kernel, in.width);
    const int c = std::min(tile.tc, in.channels);
    const std::int64_t if_tile = static_cast<std::int64_t>(c) * in_th * in_tw * bpe;
    std::int64_t wt_tile = 0;
    if (layer.is_conv()) {
      const int cg = std::min(tile.tc, in.channels / layer.conv.groups);
      wt_tile = static_cast<std::int64_t>(array.rows) * cg * layer.conv.kernel_h *
                layer.conv.kernel_w * bpe;
    }
    const std::int64_t of_tile = static_cast<std::int64_t>(array.rows) * tile.th *
                                 tile.tw * accumulator_bytes(p);
    out.input = std::max(out.input, if_tile);
    out.weight = std::max(out.weight, wt_tile);
    out.output = std::max(out.output, of_tile);
  }
  // Double buffering: ping-pong pairs on all three tile buffers (Fig. 1).
  out.input *= 2;
  out.weight *= 2;
  out.output *= 2;
  return out;
}

}  // namespace lcmm::hw
