// lcmm::par — fixed-size thread pool and deterministic parallel loops.
//
// The framework sits inside design-space sweeps compiling many graphs, so
// the evaluation loops (DSE candidates, batch compilation, bench sweeps)
// fan out over this subsystem. Determinism is the design constraint:
// whatever the worker count, results, telemetry order and error selection
// are bitwise identical to a serial run (see parallel_for.hpp for the
// contract and docs/parallelism.md for the full thread-safety story).
#pragma once

#include "par/jobs.hpp"          // IWYU pragma: export
#include "par/parallel_for.hpp"  // IWYU pragma: export
#include "par/thread_pool.hpp"   // IWYU pragma: export
