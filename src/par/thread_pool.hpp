// Fixed-size worker pool backing the lcmm::par primitives.
//
// The pool owns plain std::threads that drain a FIFO task queue. Nesting
// parallel constructs cannot deadlock: parallel_for's calling thread
// always participates in its own work, and while it waits for submitted
// helpers it help-drains the queue (try_run_one) instead of blocking — so
// a pool thread whose task fans out again keeps the pool making progress
// (see parallel_for.hpp for the determinism contract).
//
// A process-global pool (ThreadPool::global()) is created lazily and grown
// on demand up to the largest worker count any parallel_for has asked for;
// once spawned, threads live until process exit.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lcmm::par {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 0).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (parallel_for captures
  /// exceptions before they reach the pool).
  void submit(std::function<void()> task);

  /// Pops and runs one queued task on the calling thread; returns false
  /// when the queue is empty. Threads waiting for their own fan-out call
  /// this in a loop ("help-draining"), which is what makes nested
  /// parallel sections deadlock-free even when every pool thread is busy.
  bool try_run_one();

  /// Grows the pool to at least `num_threads` workers.
  void ensure_threads(int num_threads);

  int num_threads() const;

  /// The shared process-wide pool. Starts empty; parallel_for grows it to
  /// the worker counts it needs.
  static ThreadPool& global();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
};

}  // namespace lcmm::par
