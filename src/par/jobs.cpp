#include "par/jobs.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>

namespace lcmm::par {

namespace {

int env_jobs() {
  // Read once at startup; LCMM_JOBS is a launch-time knob, not a runtime one.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): called before any worker exists.
  const char* env = std::getenv("LCMM_JOBS");
  if (env == nullptr) return 0;
  try {
    std::size_t pos = 0;
    const int v = std::stoi(env, &pos);
    if (pos == std::string(env).size() && v > 0) return v;
  } catch (const std::exception&) {
  }
  return 0;
}

std::atomic<int>& default_jobs_slot() {
  static std::atomic<int> slot{env_jobs() > 0 ? env_jobs() : 1};
  return slot;
}

}  // namespace

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int default_jobs() { return default_jobs_slot().load(std::memory_order_relaxed); }

void set_default_jobs(int jobs) {
  default_jobs_slot().store(jobs < 1 ? 1 : jobs, std::memory_order_relaxed);
}

int jobs_from_env_or(int fallback) {
  const int env = env_jobs();
  return env > 0 ? env : (fallback < 1 ? 1 : fallback);
}

int effective_jobs(int jobs) {
  if (jobs == 0) return default_jobs();
  return jobs < 1 ? 1 : jobs;
}

}  // namespace lcmm::par
