// Worker-count policy for the lcmm::par subsystem.
//
// The library stays serial unless somebody asks for workers: the process
// default starts at 1 (or the LCMM_JOBS environment variable when set), the
// tools raise it from --jobs, and the bench sweeps raise it to the machine
// width. Every parallel entry point takes a `jobs` argument where 0 means
// "use the process default", so call sites never hard-code a width.
#pragma once

namespace lcmm::par {

/// Number of hardware threads, clamped to at least 1 (the standard allows
/// std::thread::hardware_concurrency() to return 0).
int hardware_jobs();

/// Process-wide default worker count used when a `jobs` argument is 0.
/// Initially LCMM_JOBS when the environment variable is set to a positive
/// integer, else 1 (serial).
int default_jobs();
void set_default_jobs(int jobs);

/// LCMM_JOBS when set to a positive integer, else `fallback`. Benches use
/// this so CI can sweep worker counts without per-bench flags.
int jobs_from_env_or(int fallback);

/// Resolves a caller-supplied `jobs` argument: 0 -> default_jobs(),
/// anything else clamped to at least 1.
int effective_jobs(int jobs);

}  // namespace lcmm::par
