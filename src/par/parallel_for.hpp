// Deterministic data-parallel primitives over the shared thread pool.
//
// parallel_for(n, jobs, body) runs body(0..n-1) on min(jobs, n) workers.
// The calling thread always participates, and while waiting for its
// helpers it executes other queued pool tasks (help-draining), so nested
// parallel sections cannot deadlock on pool starvation. The contract that
// makes parallel runs indistinguishable from serial ones:
//
//  * Results: parallel_map writes each result into its own index slot, so
//    the output vector is independent of scheduling.
//  * Telemetry: when the calling thread has an obs::CompileStats sink
//    installed, each index runs against a fresh per-task sink (the sink
//    pointer is thread-local) and the children are merged back into the
//    caller's registry in index order after the loop — the span/counter/
//    decision sequence is byte-identical to a serial run; only wall-clock
//    fields differ.
//  * Errors: if bodies throw, the exception for the lowest failing index
//    is rethrown after all workers finish, independent of scheduling.
//
// With jobs == 1 (or n <= 1) the body runs inline on the calling thread
// against the caller's own sink — exactly the pre-parallelism code path.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "par/jobs.hpp"

namespace lcmm::par {

/// Runs body(i) for i in [0, n) on up to `jobs` workers (0 = default_jobs()).
void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& body);

/// parallel_for that collects fn(i) into a vector in index order. The
/// result type must be default-constructible and movable.
template <typename Fn>
auto parallel_map(std::size_t n, int jobs, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>> {
  using Result = std::decay_t<decltype(fn(std::size_t{}))>;
  static_assert(!std::is_same_v<Result, bool>,
                "parallel_map<bool> would race on vector<bool> bit-packing; "
                "map to char or int instead");
  std::vector<Result> out(n);
  parallel_for(n, jobs, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace lcmm::par
