#include "par/parallel_for.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

#include "obs/stats.hpp"
#include "par/thread_pool.hpp"
#include "resil/fault.hpp"

namespace lcmm::par {

namespace {

/// Everything a worker records about one index, merged deterministically
/// by the calling thread after the loop.
struct TaskState {
  std::unique_ptr<obs::CompileStats> stats;
  double start_offset_s = 0.0;  ///< Task epoch relative to the parent sink.
  std::exception_ptr error;
};

}  // namespace

void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& body) {
  const std::size_t worker_budget = static_cast<std::size_t>(effective_jobs(jobs));
  const std::size_t workers = worker_budget < n ? worker_budget : n;
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      // Same injection point as the parallel path, so LCMM_FAULT=par.task
      // behaves identically for --jobs 1 and --jobs N.
      resil::fault::hit("par.task");
      body(i);
    }
    return;
  }

  obs::CompileStats* const parent = obs::current();
  // Workers join the caller's fault budget the same way they adopt its
  // stats sink: the per-operation hit counter rides into every task.
  resil::fault::State* const fault_state = resil::fault::current_state();
  std::vector<TaskState> tasks(n);
  std::atomic<std::size_t> next{0};

  const auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      TaskState& task = tasks[i];
      obs::CompileStats* sink = nullptr;
      if (parent != nullptr) {
        task.start_offset_s = parent->elapsed_s();
        task.stats = std::make_unique<obs::CompileStats>();
        sink = task.stats.get();
      }
      obs::CompileStats* const previous = obs::set_current(sink);
      const resil::fault::StateGuard fault_guard(fault_state);
      try {
        resil::fault::hit("par.task");
        body(i);
      } catch (...) {
        task.error = std::current_exception();
      }
      obs::set_current(previous);
    }
  };

  // The calling thread is worker 0; the pool supplies the rest.
  ThreadPool& pool = ThreadPool::global();
  pool.ensure_threads(static_cast<int>(workers) - 1);
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t pending = workers - 1;
  for (std::size_t w = 1; w < workers; ++w) {
    pool.submit([&] {
      drain();
      // Notify under the lock: once the waiter observes pending == 0 it
      // returns and destroys the stack-local cv/mutex, so an unlocked
      // notify could race with their destruction.
      std::lock_guard<std::mutex> lock(done_mutex);
      --pending;
      done_cv.notify_one();
    });
  }
  drain();
  // Wait for the helpers, help-draining the queue instead of blocking:
  // when this loop runs inside a pool task (nested parallel_for), every
  // pool thread may be a blocked caller just like us, and the only way
  // our queued helpers ever run is if waiting threads execute them. Once
  // the queue is empty our remaining helpers are running (or done) on
  // other threads and will signal done_cv, so plain waiting is safe.
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    while (pending > 0) {
      lock.unlock();
      const bool ran = pool.try_run_one();
      lock.lock();
      if (!ran) done_cv.wait(lock, [&] { return pending == 0; });
    }
  }

  // Deterministic epilogue: telemetry merges and the error choice depend
  // only on index order, never on which worker ran what.
  if (parent != nullptr) {
    for (const TaskState& task : tasks) {
      if (task.stats) parent->merge_child(*task.stats, task.start_offset_s);
    }
  }
  for (const TaskState& task : tasks) {
    if (task.error) std::rethrow_exception(task.error);
  }
}

}  // namespace lcmm::par
