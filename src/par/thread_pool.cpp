#include "par/thread_pool.hpp"

#include <utility>

namespace lcmm::par {

ThreadPool::ThreadPool(int num_threads) { ensure_threads(num_threads); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::ensure_threads(int num_threads) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (static_cast<int>(threads_.size()) < num_threads) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

int ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(threads_.size());
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(0);
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace lcmm::par
