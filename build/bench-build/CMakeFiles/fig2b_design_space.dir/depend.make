# Empty dependencies file for fig2b_design_space.
# This may be replaced when dependencies are built.
