file(REMOVE_RECURSE
  "../bench/fig2b_design_space"
  "../bench/fig2b_design_space.pdb"
  "CMakeFiles/fig2b_design_space.dir/fig2b_design_space.cpp.o"
  "CMakeFiles/fig2b_design_space.dir/fig2b_design_space.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
