file(REMOVE_RECURSE
  "../bench/table1_main"
  "../bench/table1_main.pdb"
  "CMakeFiles/table1_main.dir/table1_main.cpp.o"
  "CMakeFiles/table1_main.dir/table1_main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
