file(REMOVE_RECURSE
  "../bench/ablation_passes"
  "../bench/ablation_passes.pdb"
  "CMakeFiles/ablation_passes.dir/ablation_passes.cpp.o"
  "CMakeFiles/ablation_passes.dir/ablation_passes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
