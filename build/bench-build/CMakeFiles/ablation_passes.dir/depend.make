# Empty dependencies file for ablation_passes.
# This may be replaced when dependencies are built.
