file(REMOVE_RECURSE
  "../bench/perf_algorithms"
  "../bench/perf_algorithms.pdb"
  "CMakeFiles/perf_algorithms.dir/perf_algorithms.cpp.o"
  "CMakeFiles/perf_algorithms.dir/perf_algorithms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
