file(REMOVE_RECURSE
  "../bench/fig2a_roofline"
  "../bench/fig2a_roofline.pdb"
  "CMakeFiles/fig2a_roofline.dir/fig2a_roofline.cpp.o"
  "CMakeFiles/fig2a_roofline.dir/fig2a_roofline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
