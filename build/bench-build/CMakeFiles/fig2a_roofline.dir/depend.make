# Empty dependencies file for fig2a_roofline.
# This may be replaced when dependencies are built.
