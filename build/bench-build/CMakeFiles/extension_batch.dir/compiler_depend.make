# Empty compiler generated dependencies file for extension_batch.
# This may be replaced when dependencies are built.
