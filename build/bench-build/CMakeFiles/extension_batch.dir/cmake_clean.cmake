file(REMOVE_RECURSE
  "../bench/extension_batch"
  "../bench/extension_batch.pdb"
  "CMakeFiles/extension_batch.dir/extension_batch.cpp.o"
  "CMakeFiles/extension_batch.dir/extension_batch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
