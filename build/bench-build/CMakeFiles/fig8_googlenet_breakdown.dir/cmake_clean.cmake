file(REMOVE_RECURSE
  "../bench/fig8_googlenet_breakdown"
  "../bench/fig8_googlenet_breakdown.pdb"
  "CMakeFiles/fig8_googlenet_breakdown.dir/fig8_googlenet_breakdown.cpp.o"
  "CMakeFiles/fig8_googlenet_breakdown.dir/fig8_googlenet_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_googlenet_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
