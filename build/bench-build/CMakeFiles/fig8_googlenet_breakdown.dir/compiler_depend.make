# Empty compiler generated dependencies file for fig8_googlenet_breakdown.
# This may be replaced when dependencies are built.
