# Empty dependencies file for extension_pipeline.
# This may be replaced when dependencies are built.
