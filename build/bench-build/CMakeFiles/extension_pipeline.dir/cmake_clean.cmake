file(REMOVE_RECURSE
  "../bench/extension_pipeline"
  "../bench/extension_pipeline.pdb"
  "CMakeFiles/extension_pipeline.dir/extension_pipeline.cpp.o"
  "CMakeFiles/extension_pipeline.dir/extension_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
