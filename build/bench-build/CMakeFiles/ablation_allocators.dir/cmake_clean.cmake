file(REMOVE_RECURSE
  "../bench/ablation_allocators"
  "../bench/ablation_allocators.pdb"
  "CMakeFiles/ablation_allocators.dir/ablation_allocators.cpp.o"
  "CMakeFiles/ablation_allocators.dir/ablation_allocators.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_allocators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
