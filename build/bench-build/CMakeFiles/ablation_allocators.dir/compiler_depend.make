# Empty compiler generated dependencies file for ablation_allocators.
# This may be replaced when dependencies are built.
