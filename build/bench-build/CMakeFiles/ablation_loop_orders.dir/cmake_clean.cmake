file(REMOVE_RECURSE
  "../bench/ablation_loop_orders"
  "../bench/ablation_loop_orders.pdb"
  "CMakeFiles/ablation_loop_orders.dir/ablation_loop_orders.cpp.o"
  "CMakeFiles/ablation_loop_orders.dir/ablation_loop_orders.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loop_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
