# Empty compiler generated dependencies file for ablation_loop_orders.
# This may be replaced when dependencies are built.
