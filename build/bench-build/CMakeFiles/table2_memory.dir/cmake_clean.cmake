file(REMOVE_RECURSE
  "../bench/table2_memory"
  "../bench/table2_memory.pdb"
  "CMakeFiles/table2_memory.dir/table2_memory.cpp.o"
  "CMakeFiles/table2_memory.dir/table2_memory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
