file(REMOVE_RECURSE
  "../bench/validation_tile_sim"
  "../bench/validation_tile_sim.pdb"
  "CMakeFiles/validation_tile_sim.dir/validation_tile_sim.cpp.o"
  "CMakeFiles/validation_tile_sim.dir/validation_tile_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_tile_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
