# Empty dependencies file for validation_tile_sim.
# This may be replaced when dependencies are built.
