# Empty compiler generated dependencies file for fig3_footprint.
# This may be replaced when dependencies are built.
