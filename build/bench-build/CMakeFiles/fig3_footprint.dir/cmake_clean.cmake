file(REMOVE_RECURSE
  "../bench/fig3_footprint"
  "../bench/fig3_footprint.pdb"
  "CMakeFiles/fig3_footprint.dir/fig3_footprint.cpp.o"
  "CMakeFiles/fig3_footprint.dir/fig3_footprint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
