file(REMOVE_RECURSE
  "../bench/stress_random_graphs"
  "../bench/stress_random_graphs.pdb"
  "CMakeFiles/stress_random_graphs.dir/stress_random_graphs.cpp.o"
  "CMakeFiles/stress_random_graphs.dir/stress_random_graphs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_random_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
