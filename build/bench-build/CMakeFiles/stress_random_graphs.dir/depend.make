# Empty dependencies file for stress_random_graphs.
# This may be replaced when dependencies are built.
