file(REMOVE_RECURSE
  "../bench/ablation_packing"
  "../bench/ablation_packing.pdb"
  "CMakeFiles/ablation_packing.dir/ablation_packing.cpp.o"
  "CMakeFiles/ablation_packing.dir/ablation_packing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
