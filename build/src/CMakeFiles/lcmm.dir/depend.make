# Empty dependencies file for lcmm.
# This may be replaced when dependencies are built.
