file(REMOVE_RECURSE
  "liblcmm.a"
)
