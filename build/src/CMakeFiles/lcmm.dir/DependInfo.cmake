
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/options.cpp" "src/CMakeFiles/lcmm.dir/cli/options.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/cli/options.cpp.o.d"
  "/root/repo/src/core/coloring.cpp" "src/CMakeFiles/lcmm.dir/core/coloring.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/core/coloring.cpp.o.d"
  "/root/repo/src/core/dnnk.cpp" "src/CMakeFiles/lcmm.dir/core/dnnk.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/core/dnnk.cpp.o.d"
  "/root/repo/src/core/entity.cpp" "src/CMakeFiles/lcmm.dir/core/entity.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/core/entity.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/CMakeFiles/lcmm.dir/core/export.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/core/export.cpp.o.d"
  "/root/repo/src/core/interference.cpp" "src/CMakeFiles/lcmm.dir/core/interference.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/core/interference.cpp.o.d"
  "/root/repo/src/core/latency_tables.cpp" "src/CMakeFiles/lcmm.dir/core/latency_tables.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/core/latency_tables.cpp.o.d"
  "/root/repo/src/core/lcmm.cpp" "src/CMakeFiles/lcmm.dir/core/lcmm.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/core/lcmm.cpp.o.d"
  "/root/repo/src/core/liveness.cpp" "src/CMakeFiles/lcmm.dir/core/liveness.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/core/liveness.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/lcmm.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/prefetch.cpp" "src/CMakeFiles/lcmm.dir/core/prefetch.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/core/prefetch.cpp.o.d"
  "/root/repo/src/core/splitting.cpp" "src/CMakeFiles/lcmm.dir/core/splitting.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/core/splitting.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/CMakeFiles/lcmm.dir/core/validate.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/core/validate.cpp.o.d"
  "/root/repo/src/core/virtual_buffer.cpp" "src/CMakeFiles/lcmm.dir/core/virtual_buffer.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/core/virtual_buffer.cpp.o.d"
  "/root/repo/src/exec/reference.cpp" "src/CMakeFiles/lcmm.dir/exec/reference.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/exec/reference.cpp.o.d"
  "/root/repo/src/exec/tensor_data.cpp" "src/CMakeFiles/lcmm.dir/exec/tensor_data.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/exec/tensor_data.cpp.o.d"
  "/root/repo/src/exec/tiled.cpp" "src/CMakeFiles/lcmm.dir/exec/tiled.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/exec/tiled.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/CMakeFiles/lcmm.dir/graph/dot.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/graph/dot.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/lcmm.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/layer.cpp" "src/CMakeFiles/lcmm.dir/graph/layer.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/graph/layer.cpp.o.d"
  "/root/repo/src/graph/tensor.cpp" "src/CMakeFiles/lcmm.dir/graph/tensor.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/graph/tensor.cpp.o.d"
  "/root/repo/src/hw/device.cpp" "src/CMakeFiles/lcmm.dir/hw/device.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/hw/device.cpp.o.d"
  "/root/repo/src/hw/dse.cpp" "src/CMakeFiles/lcmm.dir/hw/dse.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/hw/dse.cpp.o.d"
  "/root/repo/src/hw/perf_model.cpp" "src/CMakeFiles/lcmm.dir/hw/perf_model.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/hw/perf_model.cpp.o.d"
  "/root/repo/src/hw/precision.cpp" "src/CMakeFiles/lcmm.dir/hw/precision.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/hw/precision.cpp.o.d"
  "/root/repo/src/hw/roofline.cpp" "src/CMakeFiles/lcmm.dir/hw/roofline.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/hw/roofline.cpp.o.d"
  "/root/repo/src/hw/tiling.cpp" "src/CMakeFiles/lcmm.dir/hw/tiling.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/hw/tiling.cpp.o.d"
  "/root/repo/src/io/text_format.cpp" "src/CMakeFiles/lcmm.dir/io/text_format.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/io/text_format.cpp.o.d"
  "/root/repo/src/mem/ddr.cpp" "src/CMakeFiles/lcmm.dir/mem/ddr.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/mem/ddr.cpp.o.d"
  "/root/repo/src/mem/sram.cpp" "src/CMakeFiles/lcmm.dir/mem/sram.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/mem/sram.cpp.o.d"
  "/root/repo/src/models/googlenet.cpp" "src/CMakeFiles/lcmm.dir/models/googlenet.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/models/googlenet.cpp.o.d"
  "/root/repo/src/models/inception_v4.cpp" "src/CMakeFiles/lcmm.dir/models/inception_v4.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/models/inception_v4.cpp.o.d"
  "/root/repo/src/models/linear_nets.cpp" "src/CMakeFiles/lcmm.dir/models/linear_nets.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/models/linear_nets.cpp.o.d"
  "/root/repo/src/models/mobile_nets.cpp" "src/CMakeFiles/lcmm.dir/models/mobile_nets.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/models/mobile_nets.cpp.o.d"
  "/root/repo/src/models/random.cpp" "src/CMakeFiles/lcmm.dir/models/random.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/models/random.cpp.o.d"
  "/root/repo/src/models/registry.cpp" "src/CMakeFiles/lcmm.dir/models/registry.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/models/registry.cpp.o.d"
  "/root/repo/src/models/resnet.cpp" "src/CMakeFiles/lcmm.dir/models/resnet.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/models/resnet.cpp.o.d"
  "/root/repo/src/models/snippets.cpp" "src/CMakeFiles/lcmm.dir/models/snippets.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/models/snippets.cpp.o.d"
  "/root/repo/src/sim/chrome_trace.cpp" "src/CMakeFiles/lcmm.dir/sim/chrome_trace.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/sim/chrome_trace.cpp.o.d"
  "/root/repo/src/sim/energy.cpp" "src/CMakeFiles/lcmm.dir/sim/energy.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/sim/energy.cpp.o.d"
  "/root/repo/src/sim/memory_trace.cpp" "src/CMakeFiles/lcmm.dir/sim/memory_trace.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/sim/memory_trace.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/CMakeFiles/lcmm.dir/sim/report.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/sim/report.cpp.o.d"
  "/root/repo/src/sim/tile_sim.cpp" "src/CMakeFiles/lcmm.dir/sim/tile_sim.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/sim/tile_sim.cpp.o.d"
  "/root/repo/src/sim/timeline.cpp" "src/CMakeFiles/lcmm.dir/sim/timeline.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/sim/timeline.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/CMakeFiles/lcmm.dir/util/json.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/util/json.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/lcmm.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/lcmm.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/lcmm.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/lcmm.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
