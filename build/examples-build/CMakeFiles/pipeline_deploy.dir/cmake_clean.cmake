file(REMOVE_RECURSE
  "../examples/pipeline_deploy"
  "../examples/pipeline_deploy.pdb"
  "CMakeFiles/pipeline_deploy.dir/pipeline_deploy.cpp.o"
  "CMakeFiles/pipeline_deploy.dir/pipeline_deploy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
