# Empty compiler generated dependencies file for pipeline_deploy.
# This may be replaced when dependencies are built.
