# Empty dependencies file for inception_block.
# This may be replaced when dependencies are built.
