file(REMOVE_RECURSE
  "../examples/inception_block"
  "../examples/inception_block.pdb"
  "CMakeFiles/inception_block.dir/inception_block.cpp.o"
  "CMakeFiles/inception_block.dir/inception_block.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inception_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
