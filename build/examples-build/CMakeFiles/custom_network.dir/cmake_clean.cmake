file(REMOVE_RECURSE
  "../examples/custom_network"
  "../examples/custom_network.pdb"
  "CMakeFiles/custom_network.dir/custom_network.cpp.o"
  "CMakeFiles/custom_network.dir/custom_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
