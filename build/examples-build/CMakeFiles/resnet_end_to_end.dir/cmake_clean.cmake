file(REMOVE_RECURSE
  "../examples/resnet_end_to_end"
  "../examples/resnet_end_to_end.pdb"
  "CMakeFiles/resnet_end_to_end.dir/resnet_end_to_end.cpp.o"
  "CMakeFiles/resnet_end_to_end.dir/resnet_end_to_end.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
