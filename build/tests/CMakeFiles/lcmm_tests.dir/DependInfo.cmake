
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_calibration.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_calibration.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_coloring.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_coloring.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_coloring.cpp.o.d"
  "/root/repo/tests/test_dnnk.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_dnnk.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_dnnk.cpp.o.d"
  "/root/repo/tests/test_exec.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_exec.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_exec.cpp.o.d"
  "/root/repo/tests/test_export.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_export.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_export.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_grouped_models.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_grouped_models.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_grouped_models.cpp.o.d"
  "/root/repo/tests/test_hw.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_hw.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_hw.cpp.o.d"
  "/root/repo/tests/test_interference.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_interference.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_interference.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_lcmm.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_lcmm.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_lcmm.cpp.o.d"
  "/root/repo/tests/test_liveness.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_liveness.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_liveness.cpp.o.d"
  "/root/repo/tests/test_loop_orders.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_loop_orders.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_loop_orders.cpp.o.d"
  "/root/repo/tests/test_mem.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_mem.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_mem.cpp.o.d"
  "/root/repo/tests/test_models.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_models.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_models.cpp.o.d"
  "/root/repo/tests/test_perf_model.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_perf_model.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_perf_model.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_prefetch.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_prefetch.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_prefetch.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_splitting.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_splitting.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_splitting.cpp.o.d"
  "/root/repo/tests/test_tile_sim.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_tile_sim.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_tile_sim.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_validate.cpp" "tests/CMakeFiles/lcmm_tests.dir/test_validate.cpp.o" "gcc" "tests/CMakeFiles/lcmm_tests.dir/test_validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcmm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
