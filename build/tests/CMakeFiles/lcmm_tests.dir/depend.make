# Empty dependencies file for lcmm_tests.
# This may be replaced when dependencies are built.
