# Empty compiler generated dependencies file for lcmm_compile.
# This may be replaced when dependencies are built.
