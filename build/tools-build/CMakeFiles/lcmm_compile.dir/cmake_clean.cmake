file(REMOVE_RECURSE
  "../tools/lcmm_compile"
  "../tools/lcmm_compile.pdb"
  "CMakeFiles/lcmm_compile.dir/lcmm_compile.cpp.o"
  "CMakeFiles/lcmm_compile.dir/lcmm_compile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcmm_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
