# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli.help "/root/repo/build/tools/lcmm_compile" "--help")
set_tests_properties(cli.help PROPERTIES  PASS_REGULAR_EXPRESSION "usage: lcmm_compile" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.compile_pair "/root/repo/build/tools/lcmm_compile" "--model" "squeezenet" "--precision" "8")
set_tests_properties(cli.compile_pair PROPERTIES  PASS_REGULAR_EXPRESSION "speedup \\(UMM / LCMM\\)" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.json "/root/repo/build/tools/lcmm_compile" "--model" "squeezenet" "--design" "lcmm" "--format" "json")
set_tests_properties(cli.json PROPERTIES  PASS_REGULAR_EXPRESSION "\"latency_ms\"" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.csv "/root/repo/build/tools/lcmm_compile" "--model" "squeezenet" "--design" "umm" "--format" "csv")
set_tests_properties(cli.csv PROPERTIES  PASS_REGULAR_EXPRESSION "network,precision,design" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.emit_graph "/root/repo/build/tools/lcmm_compile" "--model" "alexnet" "--emit-graph")
set_tests_properties(cli.emit_graph PROPERTIES  PASS_REGULAR_EXPRESSION "graph alexnet" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.dot "/root/repo/build/tools/lcmm_compile" "--model" "alexnet" "--dot")
set_tests_properties(cli.dot PROPERTIES  PASS_REGULAR_EXPRESSION "digraph" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;30;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.trace "/root/repo/build/tools/lcmm_compile" "--model" "squeezenet" "--design" "lcmm" "--trace")
set_tests_properties(cli.trace PROPERTIES  PASS_REGULAR_EXPRESSION "vbuf" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;34;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.bad_option "/root/repo/build/tools/lcmm_compile" "--frobnicate")
set_tests_properties(cli.bad_option PROPERTIES  PASS_REGULAR_EXPRESSION "error: unknown option" WILL_FAIL "FALSE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;38;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.bad_model "/root/repo/build/tools/lcmm_compile" "--model" "lenet")
set_tests_properties(cli.bad_model PROPERTIES  PASS_REGULAR_EXPRESSION "unknown model" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;43;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.validate "/root/repo/build/tools/lcmm_compile" "--model" "squeezenet" "--precision" "8" "--validate")
set_tests_properties(cli.validate PROPERTIES  PASS_REGULAR_EXPRESSION "plan validation: ok" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;47;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.graph_file "/root/repo/build/tools/lcmm_compile" "--graph" "/root/repo/tools/../examples/graphs/tiny_detector.lcmm" "--precision" "8")
set_tests_properties(cli.graph_file PROPERTIES  PASS_REGULAR_EXPRESSION "tiny_detector" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;52;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.graph_file_depthwise "/root/repo/build/tools/lcmm_compile" "--graph" "/root/repo/tools/../examples/graphs/depthwise_block.lcmm" "--precision" "16" "--validate")
set_tests_properties(cli.graph_file_depthwise PROPERTIES  PASS_REGULAR_EXPRESSION "plan validation: ok" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;59;add_test;/root/repo/tools/CMakeLists.txt;0;")
