// lcmm_compile: the command-line front end of the LCMM framework.
//
//   lcmm_compile --model googlenet --precision 16
//   lcmm_compile --graph mynet.lcmm --design lcmm --format json
//   lcmm_compile --model resnet152 --roofline --trace
//   lcmm_compile --model googlenet --stats-json s.json --compile-trace t.json
#include <iostream>
#include <memory>

#include "check/check.hpp"
#include "check/emit.hpp"
#include "cli/options.hpp"
#include "core/validate.hpp"
#include "driver/batch.hpp"
#include "graph/dot.hpp"
#include "hw/roofline.hpp"
#include "io/text_format.hpp"
#include "models/models.hpp"
#include "obs/obs.hpp"
#include "par/jobs.hpp"
#include "resil/fault.hpp"
#include "sim/chrome_trace.hpp"
#include "sim/memory_trace.hpp"
#include "sim/report.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace {

using namespace lcmm;

void print_text_report(const sim::DesignReport& r) {
  util::Table t({"field", "value"});
  t.add_row({"network", r.network});
  t.add_row({"precision", hw::to_string(r.precision)});
  t.add_row({"design", r.is_umm ? "UMM" : "LCMM"});
  if (!r.degrade_reason.empty()) {
    t.add_row({"ladder rung", r.rung + " (" + r.degrade_reason + ")"});
  }
  t.add_row({"latency", util::fmt_fixed(r.latency_ms, 3) + " ms"});
  t.add_row({"throughput", util::fmt_fixed(r.tops, 3) + " Tops"});
  t.add_row({"clock", util::fmt_fixed(r.freq_mhz, 0) + " MHz"});
  t.add_row({"DSP / CLB / SRAM", util::fmt_pct(r.dsp_util) + "% / " +
                                     util::fmt_pct(r.clb_util) + "% / " +
                                     util::fmt_pct(r.sram_util) + "%"});
  t.add_row({"BRAM / URAM", util::fmt_pct(r.bram_util) + "% / " +
                                util::fmt_pct(r.uram_util) + "%"});
  if (!r.is_umm) {
    t.add_row({"POL", util::fmt_pct(r.pol) + "%"});
    t.add_row({"tensor buffers", std::to_string(r.num_on_chip_buffers) + " (" +
                                     util::fmt_mebibytes(static_cast<double>(
                                         r.tensor_buffer_bytes)) +
                                     ")"});
    t.add_row({"prefetch stalls", util::fmt_fixed(r.total_stall_ms, 3) + " ms"});
  }
  std::cout << t;
}

void print_csv_report(const sim::DesignReport& r, bool header) {
  if (header) {
    std::cout << "network,precision,design,latency_ms,tops,freq_mhz,dsp,clb,"
                 "sram,bram,uram,pol,stall_ms,buffers\n";
  }
  std::cout << r.network << ',' << hw::to_string(r.precision) << ','
            << (r.is_umm ? "UMM" : "LCMM") << ','
            << util::fmt_fixed(r.latency_ms, 4) << ','
            << util::fmt_fixed(r.tops, 4) << ','
            << util::fmt_fixed(r.freq_mhz, 0) << ','
            << util::fmt_fixed(r.dsp_util, 3) << ','
            << util::fmt_fixed(r.clb_util, 3) << ','
            << util::fmt_fixed(r.sram_util, 3) << ','
            << util::fmt_fixed(r.bram_util, 3) << ','
            << util::fmt_fixed(r.uram_util, 3) << ','
            << util::fmt_fixed(r.pol, 3) << ','
            << util::fmt_fixed(r.total_stall_ms, 4) << ','
            << r.num_on_chip_buffers << "\n";
}

int run(const cli::Options& opt) {
  if (opt.verbose) util::set_log_level(util::LogLevel::kDebug);
  par::set_default_jobs(opt.jobs > 0
                            ? opt.jobs
                            : par::jobs_from_env_or(par::hardware_jobs()));

  // Compiler telemetry is collected only when requested: without a session
  // the instrumentation macros cost one pointer load per site.
  const bool collect_stats =
      !opt.stats_json_path.empty() || !opt.compile_trace_path.empty();
  std::unique_ptr<obs::StatsSession> stats_session;
  if (collect_stats) stats_session = std::make_unique<obs::StatsSession>();

  graph::ComputationGraph graph =
      opt.model.empty() ? io::load_graph_file(opt.graph_file)
                        : models::build_by_name(opt.model);

  if (opt.emit_dot) {
    std::cout << graph::to_dot(graph);
    return 0;
  }
  if (opt.emit_graph) {
    std::cout << io::serialize_graph(graph);
    return 0;
  }

  const hw::FpgaDevice device = cli::resolve_device(opt.device);

  // Each requested design is one batch job, so `--design both` compiles
  // UMM and LCMM concurrently (and the DSE inside each fans out further).
  std::vector<driver::BatchJob> jobs;
  if (opt.design != cli::DesignChoice::kLcmm) {
    jobs.push_back({graph, device, opt.precision, opt.lcmm,
                    /*want_umm=*/true, /*want_lcmm=*/false,
                    graph.name() + "/umm", opt.job_timeout_s,
                    opt.job_attempts});
  }
  if (opt.design != cli::DesignChoice::kUmm) {
    jobs.push_back({graph, device, opt.precision, opt.lcmm,
                    /*want_umm=*/false, /*want_lcmm=*/true,
                    graph.name() + "/lcmm", opt.job_timeout_s,
                    opt.job_attempts});
  }
  const std::vector<driver::BatchOutcome> outcomes = driver::compile_many(jobs);

  struct Compiled {
    core::AllocationPlan plan;
    sim::SimResult sim;
  };
  // A failed job is reported and skipped, never fatal to the sweep: the
  // tool prints what compiled and exits 3 (partial failure) at the end.
  std::vector<Compiled> runs;
  std::size_t failed_jobs = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    driver::BatchOutcome outcome = outcomes[i];
    if (!outcome.ok()) {
      ++failed_jobs;
      std::cerr << "error: job '" << outcome.label << "' failed ("
                << resil::code_id(outcome.error_info.code);
      if (!outcome.error_info.pass.empty()) {
        std::cerr << " in " << outcome.error_info.pass;
      }
      if (outcome.attempts > 1) {
        std::cerr << ", " << outcome.attempts << " attempts";
      }
      std::cerr << "): " << outcome.error << "\n";
      continue;
    }
    Compiled c;
    if (jobs[i].want_umm) {
      c.plan = std::move(outcome.umm_plan);
      c.sim = std::move(outcome.umm_sim);
    } else {
      c.plan = std::move(outcome.lcmm_plan);
      c.sim = std::move(outcome.lcmm_sim);
    }
    runs.push_back(std::move(c));
  }
  if (runs.empty()) {
    std::cerr << "error: every job failed\n";
    return 1;
  }

  if (opt.emit_roofline) {
    hw::PerfModel model(graph, runs.front().plan.design);
    const auto summary = characterize_roofline(model);
    std::cout << "memory-bound conv layers: " << summary.num_memory_bound
              << " / " << summary.points.size() << "\n";
  }

  if (opt.format == cli::OutputFormat::kJson) {
    util::Json out = util::Json::array();
    for (const Compiled& c : runs) {
      out.push(plan_to_json(graph, c.plan, c.sim));
    }
    std::cout << out.dump() << "\n";
  } else {
    bool first = true;
    for (const Compiled& c : runs) {
      const sim::DesignReport r = make_report(graph, c.plan, c.sim);
      if (opt.format == cli::OutputFormat::kCsv) {
        print_csv_report(r, first);
      } else {
        if (!first) std::cout << "\n";
        print_text_report(r);
      }
      first = false;
    }
    if (opt.format == cli::OutputFormat::kText && failed_jobs == 0 &&
        runs.size() == 2) {
      std::cout << "\nspeedup (UMM / LCMM): "
                << util::fmt_fixed(runs[0].sim.total_s / runs[1].sim.total_s, 2)
                << "x\n";
    }
  }

  if (opt.emit_trace) {
    const Compiled& c = runs.back();
    const sim::MemoryTrace trace = build_memory_trace(graph, c.plan, c.sim);
    std::cout << "\n" << trace.ascii_gantt();
  }
  if (!opt.chrome_trace_path.empty()) {
    write_chrome_trace(graph, runs.back().sim, opt.chrome_trace_path);
    std::cerr << "wrote " << opt.chrome_trace_path << "\n";
  }
  if (!opt.stats_json_path.empty()) {
    obs::write_stats_json(stats_session->stats(), opt.stats_json_path);
    std::cerr << "wrote " << opt.stats_json_path << "\n";
  }
  if (!opt.compile_trace_path.empty()) {
    obs::write_compile_trace(stats_session->stats(), opt.compile_trace_path);
    std::cerr << "wrote " << opt.compile_trace_path << "\n";
  }
  if (opt.validate) {
    bool ok = true;
    for (const Compiled& c : runs) {
      for (const std::string& issue : core::validate_plan(graph, c.plan)) {
        std::cerr << "plan violation: " << issue << "\n";
        ok = false;
      }
    }
    if (!ok) return 1;
    std::cerr << "plan validation: ok\n";
  }
  if (opt.check) {
    const check::CheckOptions check_options =
        check::CheckOptions::from(opt.lcmm, opt.check_strict);
    bool failed = false;
    for (const Compiled& c : runs) {
      const check::CheckReport report =
          check::run_checks(graph, c.plan, check_options);
      check::RunLabel label{graph.name(), c.plan.is_umm ? "umm" : "lcmm",
                            hw::to_string(opt.precision)};
      std::cerr << to_text(report, label);
      failed |= report.fails(opt.check_strict);
    }
    if (failed) return 1;
  }
  return failed_jobs > 0 ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    const cli::Options opt = cli::parse_cli(args);
    if (opt.show_help) {
      std::cout << cli::usage();
      return 0;
    }
    if (opt.list_fault_sites) {
      for (const char* site : resil::fault::sites()) {
        std::cout << site << "\n";
      }
      return 0;
    }
    return run(opt);
  } catch (const cli::CliError& e) {
    std::cerr << "error: " << e.what() << "\n\n" << cli::usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
