// lcmm_check: standalone front end of the lcmm::check plan verifier.
//
// Compiles a network (UMM and/or LCMM), runs every registered analysis
// pass over the resulting plans, and reports typed diagnostics:
//
//   lcmm_check --model googlenet
//   lcmm_check --model resnet152 --design lcmm --precision 8 --strict
//   lcmm_check --model inception_v4 --format sarif --output check.sarif
//   lcmm_check --list-rules
//
// Exit codes: 0 clean, 1 diagnostics gate failed, 2 usage error.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/emit.hpp"
#include "cli/options.hpp"
#include "driver/batch.hpp"
#include "io/text_format.hpp"
#include "models/models.hpp"
#include "par/jobs.hpp"
#include "resil/error.hpp"
#include "util/table.hpp"

namespace {

using namespace lcmm;

enum class CheckFormat { kText, kJson, kSarif };

struct CheckCliOptions {
  std::string model;
  std::string graph_file;
  hw::Precision precision = hw::Precision::kInt16;
  std::string device = "vu9p";
  cli::DesignChoice design = cli::DesignChoice::kBoth;
  CheckFormat format = CheckFormat::kText;
  std::string output_path;
  bool strict = false;
  bool list_rules = false;
  bool show_help = false;
  /// Worker threads (0 = auto: LCMM_JOBS or hardware concurrency).
  int jobs = 0;
  core::LcmmOptions lcmm;
};

std::string usage() {
  return "lcmm_check — static verification of LCMM allocation plans\n\n"
         "usage: lcmm_check (--model NAME | --graph FILE.lcmm) [options]\n\n"
         "  --design umm|lcmm|both   which designs to compile and check\n"
         "  --precision 8|16|32      data precision (default 16)\n"
         "  --device vu9p|zu9eg|u250 FPGA device (default vu9p)\n"
         "  --allocator dnnk|greedy|exact\n"
         "  --capacity-fraction F    fraction of free SRAM handed to DNNK\n"
         "  --strict                 warnings fail the check too, and compilation\n"
         "                           fails hard instead of degrading (resil)\n"
         "  --jobs N                 worker threads (default: LCMM_JOBS or the\n"
         "                           hardware concurrency); reports are\n"
         "                           identical for every N\n"
         "  --format text|json|sarif report format (default text)\n"
         "  --output PATH            write the report to PATH (default stdout)\n"
         "  --list-rules             print the diagnostic rule table and exit\n"
         "\nExit codes: 0 clean, 1 diagnostics reported, 2 usage error,\n"
         "3 partial compile failure (some jobs failed; survivors checked).\n";
}

bool consume_value(const std::vector<std::string>& args, std::size_t& i,
                   const std::string& flag, std::string& out) {
  if (args[i] == flag) {
    if (i + 1 >= args.size()) throw cli::CliError(flag + " needs a value");
    out = args[++i];
    return true;
  }
  const std::string prefix = flag + "=";
  if (args[i].rfind(prefix, 0) == 0) {
    out = args[i].substr(prefix.size());
    return true;
  }
  return false;
}

CheckCliOptions parse(const std::vector<std::string>& args) {
  CheckCliOptions opt;
  std::string value;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      opt.show_help = true;
    } else if (arg == "--strict") {
      // Strict gates the diagnostics AND disables the resil degradation
      // ladder, matching lcmm_compile --strict.
      opt.strict = true;
      opt.lcmm.strict = true;
    } else if (arg == "--list-rules") {
      opt.list_rules = true;
    } else if (consume_value(args, i, "--model", value)) {
      opt.model = value;
    } else if (consume_value(args, i, "--graph", value)) {
      opt.graph_file = value;
    } else if (consume_value(args, i, "--device", value)) {
      cli::resolve_device(value);  // validate eagerly
      opt.device = value;
    } else if (consume_value(args, i, "--precision", value)) {
      if (value == "8") {
        opt.precision = hw::Precision::kInt8;
      } else if (value == "16") {
        opt.precision = hw::Precision::kInt16;
      } else if (value == "32") {
        opt.precision = hw::Precision::kFp32;
      } else {
        throw cli::CliError("--precision must be 8, 16 or 32");
      }
    } else if (consume_value(args, i, "--design", value)) {
      if (value == "umm") {
        opt.design = cli::DesignChoice::kUmm;
      } else if (value == "lcmm") {
        opt.design = cli::DesignChoice::kLcmm;
      } else if (value == "both") {
        opt.design = cli::DesignChoice::kBoth;
      } else {
        throw cli::CliError("--design must be umm, lcmm or both");
      }
    } else if (consume_value(args, i, "--format", value)) {
      if (value == "text") {
        opt.format = CheckFormat::kText;
      } else if (value == "json") {
        opt.format = CheckFormat::kJson;
      } else if (value == "sarif") {
        opt.format = CheckFormat::kSarif;
      } else {
        throw cli::CliError("--format must be text, json or sarif");
      }
    } else if (consume_value(args, i, "--output", value)) {
      opt.output_path = value;
    } else if (consume_value(args, i, "--allocator", value)) {
      if (value == "dnnk") {
        opt.lcmm.allocator = core::AllocatorKind::kDnnk;
      } else if (value == "greedy") {
        opt.lcmm.allocator = core::AllocatorKind::kGreedy;
      } else if (value == "exact") {
        opt.lcmm.allocator = core::AllocatorKind::kExact;
      } else {
        throw cli::CliError("--allocator must be dnnk, greedy or exact");
      }
    } else if (consume_value(args, i, "--jobs", value)) {
      try {
        std::size_t pos = 0;
        opt.jobs = std::stoi(value, &pos);
        if (pos != value.size() || opt.jobs < 1) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        throw cli::CliError("--jobs: expected an integer >= 1, got '" + value +
                            "'");
      }
    } else if (consume_value(args, i, "--capacity-fraction", value)) {
      try {
        opt.lcmm.sram_capacity_fraction = std::stod(value);
      } catch (const std::exception&) {
        throw cli::CliError("--capacity-fraction: bad number '" + value + "'");
      }
    } else {
      throw cli::CliError("unknown option '" + arg + "' (see --help)");
    }
  }
  if (opt.show_help || opt.list_rules) return opt;
  if (opt.model.empty() == opt.graph_file.empty()) {
    throw cli::CliError("exactly one of --model or --graph is required");
  }
  return opt;
}

int list_rules() {
  util::Table t({"code", "severity", "rule", "paper", "summary"});
  for (check::Code code : check::all_codes()) {
    t.add_row({check::code_id(code),
               to_string(check::default_severity(code)),
               check::code_name(code), check::code_paper_section(code),
               check::code_summary(code)});
  }
  std::cout << t;
  return 0;
}

int run(const CheckCliOptions& opt) {
  par::set_default_jobs(opt.jobs > 0
                            ? opt.jobs
                            : par::jobs_from_env_or(par::hardware_jobs()));

  graph::ComputationGraph graph =
      opt.model.empty() ? io::load_graph_file(opt.graph_file)
                        : models::build_by_name(opt.model);
  const hw::FpgaDevice device = cli::resolve_device(opt.device);
  const check::CheckOptions check_options =
      check::CheckOptions::from(opt.lcmm, opt.strict);

  // Compile the requested designs concurrently through the batch driver.
  // The LCMM outcome comes back post-refinement, which is the plan the
  // simulator would actually consume — the same plan lcmm_compile ships.
  std::vector<driver::BatchJob> jobs;
  if (opt.design != cli::DesignChoice::kLcmm) {
    jobs.push_back({graph, device, opt.precision, opt.lcmm,
                    /*want_umm=*/true, /*want_lcmm=*/false,
                    graph.name() + "/umm"});
  }
  if (opt.design != cli::DesignChoice::kUmm) {
    jobs.push_back({graph, device, opt.precision, opt.lcmm,
                    /*want_umm=*/false, /*want_lcmm=*/true,
                    graph.name() + "/lcmm"});
  }
  std::vector<driver::BatchOutcome> outcomes = driver::compile_many(jobs);

  // Failed jobs are reported and skipped; the sweep's surviving plans are
  // still checked, and the exit code distinguishes partial failure (3).
  std::vector<check::CheckedPlan> checked;
  std::size_t failed_jobs = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    driver::BatchOutcome& outcome = outcomes[i];
    if (!outcome.ok()) {
      ++failed_jobs;
      std::cerr << "error: job '" << outcome.label << "' failed ("
                << resil::code_id(outcome.error_info.code) << "): "
                << outcome.error << "\n";
      continue;
    }
    const bool umm = jobs[i].want_umm;
    check::CheckedPlan run;
    run.label = {graph.name(), umm ? "umm" : "lcmm",
                 hw::to_string(opt.precision)};
    run.report = check::run_checks(
        graph, umm ? outcome.umm_plan : outcome.lcmm_plan, check_options);
    checked.push_back(std::move(run));
  }

  std::ostream* out = &std::cout;
  std::ofstream file;
  if (!opt.output_path.empty()) {
    file.open(opt.output_path);
    if (!file) {
      std::cerr << "error: cannot write " << opt.output_path << "\n";
      return 1;
    }
    out = &file;
  }

  switch (opt.format) {
    case CheckFormat::kText:
      for (const check::CheckedPlan& run : checked) {
        *out << to_text(run.report, run.label);
      }
      break;
    case CheckFormat::kJson: {
      util::Json doc = util::Json::array();
      for (const check::CheckedPlan& run : checked) {
        doc.push(to_json(run.report, run.label));
      }
      *out << doc.dump() << "\n";
      break;
    }
    case CheckFormat::kSarif:
      *out << to_sarif(checked).dump() << "\n";
      break;
  }

  bool failed = false;
  for (const check::CheckedPlan& run : checked) {
    failed |= run.report.fails(opt.strict);
  }
  if (failed && opt.format != CheckFormat::kText) {
    // Make the gate visible even when the report went to a file.
    std::cerr << "lcmm_check: diagnostics reported (see output)\n";
  }
  if (failed) return 1;
  if (!jobs.empty() && failed_jobs == jobs.size()) {
    std::cerr << "error: every job failed\n";
    return 1;
  }
  return failed_jobs > 0 ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    const CheckCliOptions opt = parse(args);
    if (opt.show_help) {
      std::cout << usage();
      return 0;
    }
    if (opt.list_rules) return list_rules();
    return run(opt);
  } catch (const cli::CliError& e) {
    std::cerr << "error: " << e.what() << "\n\n" << usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
