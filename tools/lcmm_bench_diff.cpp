// lcmm_bench_diff: the perf-regression gate's comparator. Takes a
// recorded baseline bench run and a fresh one (both lcmm-bench-v1 JSON,
// as written by any bench binary's --json=<path>), applies a per-metric
// tolerance spec, and prints a delta table:
//
//   lcmm_bench_diff bench/baselines/table1_main.json fresh/table1_main.json
//   lcmm_bench_diff base.json cur.json --tolerance bench/baselines/tolerances.spec
//   lcmm_bench_diff base.json cur.json --format markdown --output delta.md
//
// Exit codes: 0 gate passed (improvements and within-tolerance deltas
// only), 1 gate failed (a regression, or a baseline metric that
// disappeared), 2 usage or I/O error. Wall-clock metrics are reported
// but never gate unless --include-wall (shared CI runners make wall
// time untrustworthy; see docs/benchmarking.md).
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench.hpp"
#include "bench/diff.hpp"

namespace {

using namespace lcmm;

enum class Format { kText, kMarkdown };

struct CliOptions {
  std::string baseline_path;
  std::string current_path;
  std::string tolerance_path;
  std::string output_path;
  Format format = Format::kText;
  bench::DiffOptions diff;
  bool show_help = false;
};

std::string usage() {
  return "lcmm_bench_diff — compare two lcmm-bench-v1 runs for the CI gate\n\n"
         "usage: lcmm_bench_diff BASELINE.json CURRENT.json [options]\n\n"
         "  --tolerance FILE    per-metric tolerance spec (glob patterns on\n"
         "                      \"suite/metric{dims}\", last match wins);\n"
         "                      default: 2% relative on every metric\n"
         "  --format text|markdown\n"
         "  --output FILE       write the table to FILE instead of stdout\n"
         "  --include-wall      gate wall-clock metrics too (local tuning\n"
         "                      only; never in CI)\n"
         "  --allow-missing     a baseline metric absent from the current\n"
         "                      run does not fail the gate\n"
         "  --help\n\n"
         "exit: 0 gate passed, 1 regression/missing metric, 2 usage or I/O\n";
}

bool parse_args(int argc, char** argv, CliOptions& opt, std::string& error) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        error = std::string("missing value for ") + flag;
        return {};
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      opt.show_help = true;
      return true;
    } else if (arg == "--tolerance") {
      opt.tolerance_path = value("--tolerance");
    } else if (arg == "--output") {
      opt.output_path = value("--output");
    } else if (arg == "--format") {
      const std::string v = value("--format");
      if (v == "text") {
        opt.format = Format::kText;
      } else if (v == "markdown") {
        opt.format = Format::kMarkdown;
      } else if (error.empty()) {
        error = "unknown format '" + v + "' (want text|markdown)";
      }
    } else if (arg == "--include-wall") {
      opt.diff.include_wall = true;
    } else if (arg == "--allow-missing") {
      opt.diff.fail_on_missing = false;
    } else if (!arg.empty() && arg[0] == '-') {
      error = "unknown option '" + arg + "'";
    } else {
      positional.push_back(arg);
    }
    if (!error.empty()) return false;
  }
  if (positional.size() != 2) {
    error = "expected exactly two run files (baseline, current), got " +
            std::to_string(positional.size());
    return false;
  }
  opt.baseline_path = positional[0];
  opt.current_path = positional[1];
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  std::string error;
  if (!parse_args(argc, argv, opt, error)) {
    std::cerr << "error: " << error << "\n\n" << usage();
    return 2;
  }
  if (opt.show_help) {
    std::cout << usage();
    return 0;
  }

  try {
    const bench::BenchRun baseline = bench::BenchRun::load(opt.baseline_path);
    const bench::BenchRun current = bench::BenchRun::load(opt.current_path);
    const bench::ToleranceSpec spec =
        opt.tolerance_path.empty()
            ? bench::ToleranceSpec{}
            : bench::ToleranceSpec::load(opt.tolerance_path);

    const bench::DiffResult result =
        bench::diff_runs(baseline, current, spec, opt.diff);
    const std::string rendered = opt.format == Format::kMarkdown
                                     ? bench::render_markdown(result)
                                     : bench::render_text(result);
    if (opt.output_path.empty()) {
      std::cout << rendered;
    } else {
      std::ofstream out(opt.output_path);
      if (!out) {
        std::cerr << "error: cannot write " << opt.output_path << "\n";
        return 2;
      }
      out << rendered;
      // Keep the verdict visible in the CI log even when the table goes
      // to an artifact file.
      std::cout << "suite " << result.suite << ": "
                << (result.gate_failed ? "GATE FAILED" : "gate passed") << " ("
                << result.regressions << " regressions, " << result.missing
                << " missing, " << result.improvements << " improvements)\n";
    }
    return result.gate_failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
